"""Source-address spoofing strategies (Section 1).

A SYN flood only pins the victim's backlog if the spoofed source is
*unreachable*: a live host receiving the victim's SYN/ACK would answer
with a RST and release the half-open entry, foiling the attack.  Real
tools therefore draw sources from unallocated/unroutable space or from
randomly generated addresses.

Strategies provided:

* :class:`RandomBogonSpoofer` — each SYN gets a fresh address from
  reserved (never-routable) space; the common TFN-style behaviour;
* :class:`FixedAddressSpoofer` — one invalid address reused for the
  whole flood (trivially filterable, kept as the naive baseline);
* :class:`SubnetRandomSpoofer` — random addresses inside a chosen
  prefix, modelling tools that spoof "plausible" space;
* :class:`RandomUniformSpoofer` — uniform over the whole IPv4 space,
  occasionally hitting live hosts (a fraction ``reachable_fraction`` of
  them draw RSTs, weakening the attack — the tcpsim victim model uses
  this).

Spoofers never forge the *MAC* address: the flooding host's NIC stamps
its own, which is the invariant SYN-dog's localization step exploits
(Section 4.2.3).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from ..packet.addresses import (
    IPv4Address,
    IPv4Network,
    is_bogon,
    random_spoofed_address,
)

__all__ = [
    "Spoofer",
    "RandomBogonSpoofer",
    "FixedAddressSpoofer",
    "SubnetRandomSpoofer",
    "RandomUniformSpoofer",
]


class Spoofer(abc.ABC):
    """Generates the forged source address for each flood SYN."""

    @abc.abstractmethod
    def next_address(self, rng: random.Random) -> IPv4Address:
        """The spoofed source for the next SYN."""

    def reachable_probability(self) -> float:
        """Probability a generated source is actually a live, reachable
        host (and would therefore RST the victim's SYN/ACK)."""
        return 0.0


class RandomBogonSpoofer(Spoofer):
    """A fresh never-routable address per SYN — maximally effective and
    maximally anonymous."""

    def next_address(self, rng: random.Random) -> IPv4Address:
        return random_spoofed_address(rng)


@dataclass
class FixedAddressSpoofer(Spoofer):
    """One fixed invalid source for the whole flood."""

    address: IPv4Address

    def __post_init__(self) -> None:
        if not is_bogon(self.address):
            raise ValueError(
                f"{self.address} is routable; a fixed spoofed source must be "
                "invalid or the victim's SYN/ACKs will draw RSTs"
            )

    def next_address(self, rng: random.Random) -> IPv4Address:
        return self.address


@dataclass
class SubnetRandomSpoofer(Spoofer):
    """Random hosts inside one prefix (e.g. a competitor's block)."""

    network: IPv4Network
    live_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.live_fraction <= 1.0:
            raise ValueError(
                f"live fraction must lie in [0,1]: {self.live_fraction}"
            )

    def next_address(self, rng: random.Random) -> IPv4Address:
        return self.network.random_host(rng)

    def reachable_probability(self) -> float:
        return self.live_fraction


@dataclass
class RandomUniformSpoofer(Spoofer):
    """Uniform over all of IPv4.

    ``reachable_fraction`` is the density of live hosts in the address
    space (a few percent circa 2000); those SYN/ACKs get RST'd, so this
    strategy wastes part of the flood — the trade-off the tcpsim victim
    experiments can quantify.
    """

    reachable_fraction: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 <= self.reachable_fraction <= 1.0:
            raise ValueError(
                f"reachable fraction must lie in [0,1]: {self.reachable_fraction}"
            )

    def next_address(self, rng: random.Random) -> IPv4Address:
        return IPv4Address(rng.getrandbits(32))

    def reachable_probability(self) -> float:
        return self.reachable_fraction
