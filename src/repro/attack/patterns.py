"""Temporal flooding-rate patterns.

The paper argues (Section 4.2) that because CUSUM integrates the
cumulative volume, "the flooding traffic pattern or its transient
behavior (bursty or not) does not affect the detection sensitivity",
and then runs all experiments at a constant rate "without loss of
generality".  We implement the full pattern family so an ablation bench
can *verify* that claim: every pattern here can be configured to emit
the same total volume, and detection delay should then match.

A pattern is a deterministic rate function r(t) over attack-local time,
exposing its exact integral so count-level mixing is unbiased even for
partial observation periods.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

__all__ = [
    "RatePattern",
    "ConstantRate",
    "SquareWaveRate",
    "RampRate",
    "PulseTrainRate",
]


class RatePattern(abc.ABC):
    """A deterministic flooding-rate profile r(t) ≥ 0."""

    @abc.abstractmethod
    def rate_at(self, t: float) -> float:
        """Instantaneous rate (packets/second) at attack-local time t."""

    @abc.abstractmethod
    def integral(self, t0: float, t1: float) -> float:
        """Exact ∫ r(t) dt over [t0, t1); the expected packet count."""

    def mean_rate(self, duration: float) -> float:
        """Average rate over an attack of the given duration."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        return self.integral(0.0, duration) / duration


@dataclass(frozen=True)
class ConstantRate(RatePattern):
    """The paper's experimental default: r(t) = rate."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate cannot be negative: {self.rate}")

    def rate_at(self, t: float) -> float:
        return self.rate

    def integral(self, t0: float, t1: float) -> float:
        return self.rate * max(0.0, t1 - t0)


@dataclass(frozen=True)
class SquareWaveRate(RatePattern):
    """ON/OFF bursting: ``high`` rate for ``on_time`` seconds, silent for
    ``off_time``, repeating.  Mean rate = high · on/(on+off)."""

    high: float
    on_time: float
    off_time: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.high < 0:
            raise ValueError(f"rate cannot be negative: {self.high}")
        if self.on_time <= 0 or self.off_time < 0:
            raise ValueError("on_time must be positive, off_time non-negative")

    @property
    def cycle(self) -> float:
        return self.on_time + self.off_time

    def rate_at(self, t: float) -> float:
        position = (t + self.phase) % self.cycle
        return self.high if position < self.on_time else 0.0

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        # Integrate ON-time overlap cycle by cycle, in closed form for
        # whole cycles plus edge handling for the partial ones.
        def on_seconds_up_to(t: float) -> float:
            shifted = t + self.phase
            full_cycles = math.floor(shifted / self.cycle)
            remainder = shifted - full_cycles * self.cycle
            return full_cycles * self.on_time + min(remainder, self.on_time)

        return self.high * (on_seconds_up_to(t1) - on_seconds_up_to(t0))


@dataclass(frozen=True)
class RampRate(RatePattern):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``ramp_time``,
    constant at ``end_rate`` after.  Models attacks that spin slaves up
    gradually to stay under rate thresholds."""

    start_rate: float
    end_rate: float
    ramp_time: float

    def __post_init__(self) -> None:
        if self.start_rate < 0 or self.end_rate < 0:
            raise ValueError("rates cannot be negative")
        if self.ramp_time <= 0:
            raise ValueError(f"ramp time must be positive: {self.ramp_time}")

    def rate_at(self, t: float) -> float:
        if t >= self.ramp_time:
            return self.end_rate
        if t < 0:
            return self.start_rate
        fraction = t / self.ramp_time
        return self.start_rate + fraction * (self.end_rate - self.start_rate)

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0

        def antiderivative(t: float) -> float:
            clamped = min(max(t, 0.0), self.ramp_time)
            slope = (self.end_rate - self.start_rate) / self.ramp_time
            ramp_part = self.start_rate * clamped + slope * clamped ** 2 / 2.0
            flat_part = self.end_rate * max(0.0, t - self.ramp_time)
            return ramp_part + flat_part

        return antiderivative(t1) - antiderivative(t0)


@dataclass(frozen=True)
class PulseTrainRate(RatePattern):
    """Short intense pulses: ``pulse_rate`` for ``pulse_width`` seconds
    every ``interval`` seconds.  The stealthiest shape against per-period
    threshold detectors — and, per the paper's claim, no harder for
    CUSUM at equal volume."""

    pulse_rate: float
    pulse_width: float
    interval: float

    def __post_init__(self) -> None:
        if self.pulse_rate < 0:
            raise ValueError(f"rate cannot be negative: {self.pulse_rate}")
        if self.pulse_width <= 0 or self.interval <= 0:
            raise ValueError("pulse width and interval must be positive")
        if self.pulse_width > self.interval:
            raise ValueError("pulse width cannot exceed the interval")

    def rate_at(self, t: float) -> float:
        return self.pulse_rate if (t % self.interval) < self.pulse_width else 0.0

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0

        def on_seconds_up_to(t: float) -> float:
            full = math.floor(t / self.interval)
            remainder = t - full * self.interval
            return full * self.pulse_width + min(remainder, self.pulse_width)

        return self.pulse_rate * (on_seconds_up_to(t1) - on_seconds_up_to(t0))
