"""DDoS coordination: master → slaves → victim (Section 4.2).

Models the architecture of the TFN / TFN2K / Trinity / Shaft family:
"the master sends control packets to the previously-compromised slaves,
instructing them to target at a given victim.  The slaves then generate
and send high-volume streams of flooding messages to the victim, but
with fake or randomized source addresses."

The paper's evaluation assumption is encoded in
:meth:`DDoSCampaign.evenly_distributed`: the aggregate rate V needed to
bring the victim down is split evenly across ``num_stub_networks`` stub
networks with exactly one slave each, so the per-SYN-dog visible rate
is f_i = V / A — the quantity swept in Tables 2 and 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..packet.addresses import IPv4Address, MACAddress
from .flooder import FloodSource
from .patterns import ConstantRate, RatePattern
from .spoofing import RandomBogonSpoofer, Spoofer

__all__ = ["Slave", "DDoSCampaign", "MIN_UNPROTECTED_RATE", "MIN_PROTECTED_RATE"]

#: Minimum flooding rate to overwhelm an unprotected server (SYN/s) [8].
MIN_UNPROTECTED_RATE = 500.0

#: Minimum rate to disable a server behind a specialized anti-SYN-flood
#: firewall (SYN/s) [8] — the paper's V in the Section 4.2.3 coverage
#: argument.
MIN_PROTECTED_RATE = 14000.0

#: Typical attack duration observed in the Internet (Section 4.2) [18].
TYPICAL_ATTACK_DURATION = 600.0


@dataclass(frozen=True)
class Slave:
    """One compromised host: which stub network it sits in, and its
    flooding source."""

    stub_network_id: int
    source: FloodSource


@dataclass
class DDoSCampaign:
    """A coordinated multi-source SYN flooding campaign.

    ``slaves`` maps every flooding source to its stub network; the
    campaign-level accessors answer the questions the evaluation asks:
    the rate any single SYN-dog sees, and the aggregate rate the victim
    absorbs.
    """

    victim: IPv4Address
    slaves: List[Slave] = field(default_factory=list)
    duration: float = TYPICAL_ATTACK_DURATION

    @classmethod
    def evenly_distributed(
        cls,
        victim: IPv4Address,
        aggregate_rate: float,
        num_stub_networks: int,
        duration: float = TYPICAL_ATTACK_DURATION,
        spoofer_factory=RandomBogonSpoofer,
        victim_port: int = 80,
    ) -> "DDoSCampaign":
        """The paper's experimental configuration: the aggregate flood is
        split evenly, one slave per stub network, so each SYN-dog sees
        f_i = aggregate_rate / num_stub_networks."""
        if aggregate_rate <= 0:
            raise ValueError(f"aggregate rate must be positive: {aggregate_rate}")
        if num_stub_networks <= 0:
            raise ValueError(
                f"need at least one stub network: {num_stub_networks}"
            )
        per_source = aggregate_rate / num_stub_networks
        slaves = [
            Slave(
                stub_network_id=network_id,
                source=FloodSource(
                    pattern=ConstantRate(per_source),
                    victim=victim,
                    victim_port=victim_port,
                    spoofer=spoofer_factory(),
                    mac=MACAddress((0x02 << 40) | (0xDD << 32) | network_id),
                ),
            )
            for network_id in range(num_stub_networks)
        ]
        return cls(victim=victim, slaves=slaves, duration=duration)

    @property
    def num_sources(self) -> int:
        return len(self.slaves)

    @property
    def aggregate_rate(self) -> float:
        """Total SYN/s arriving at the victim."""
        return sum(
            slave.source.mean_rate(self.duration) for slave in self.slaves
        )

    def per_network_rate(self, stub_network_id: int) -> float:
        """f_i: the flooding rate visible to the SYN-dog of one stub
        network (the sum over its local slaves)."""
        return sum(
            slave.source.mean_rate(self.duration)
            for slave in self.slaves
            if slave.stub_network_id == stub_network_id
        )

    def sources_in_network(self, stub_network_id: int) -> List[FloodSource]:
        return [
            slave.source
            for slave in self.slaves
            if slave.stub_network_id == stub_network_id
        ]

    def total_packets(self) -> float:
        """Expected SYN volume of the whole campaign — e.g. the paper's
        300,000-packet example for a 10-minute, 500 SYN/s flood."""
        return sum(
            slave.source.expected_packets(0.0, self.duration)
            for slave in self.slaves
        )

    def is_sufficient(self, protected: bool = False) -> bool:
        """Does the aggregate rate clear the published denial threshold
        [8] for an (un)protected victim?"""
        threshold = MIN_PROTECTED_RATE if protected else MIN_UNPROTECTED_RATE
        return self.aggregate_rate >= threshold
