"""Attack substrate: SYN flooding sources, temporal patterns, source
spoofing, and TFN-style DDoS campaign coordination (Section 4.2)."""

from .ddos import (
    MIN_PROTECTED_RATE,
    MIN_UNPROTECTED_RATE,
    TYPICAL_ATTACK_DURATION,
    DDoSCampaign,
    Slave,
)
from .flooder import FloodSource
from .patterns import (
    ConstantRate,
    PulseTrainRate,
    RampRate,
    RatePattern,
    SquareWaveRate,
)
from .spoofing import (
    FixedAddressSpoofer,
    RandomBogonSpoofer,
    RandomUniformSpoofer,
    Spoofer,
    SubnetRandomSpoofer,
)

__all__ = [
    "MIN_PROTECTED_RATE",
    "MIN_UNPROTECTED_RATE",
    "TYPICAL_ATTACK_DURATION",
    "DDoSCampaign",
    "Slave",
    "FloodSource",
    "ConstantRate",
    "PulseTrainRate",
    "RampRate",
    "RatePattern",
    "SquareWaveRate",
    "FixedAddressSpoofer",
    "RandomBogonSpoofer",
    "RandomUniformSpoofer",
    "Spoofer",
    "SubnetRandomSpoofer",
]
