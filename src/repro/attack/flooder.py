"""SYN flooding sources.

A :class:`FloodSource` is one compromised host ("slave") inside a stub
network, emitting spoofed SYNs toward a victim according to a
:class:`~repro.attack.patterns.RatePattern` and a
:class:`~repro.attack.spoofing.Spoofer`.  It exposes:

* ``expected_packets(t0, t1)`` — exact expected SYN volume over an
  attack-local interval (what count-level mixing consumes);
* ``generate_packets(rng, duration)`` — the actual spoofed packet
  stream, with the flooder's real MAC on every frame (what the
  packet-level mixer, the router simulation, and the localization step
  consume).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.packet import Packet, make_syn
from .patterns import ConstantRate, RatePattern
from .spoofing import RandomBogonSpoofer, Spoofer

__all__ = ["FloodSource"]

_DEFAULT_VICTIM = IPv4Address.parse("198.51.100.80")


@dataclass
class FloodSource:
    """One SYN flooding slave.

    Parameters
    ----------
    pattern:
        Temporal rate profile; pass a float as shorthand for
        :class:`ConstantRate` (the paper's experimental setting).
    victim:
        Target address; the flood is aimed at one listening port.
    spoofer:
        Source-address forging strategy.
    mac:
        The slave NIC's hardware address — *not* forged, and therefore
        the key the localization step recovers.
    """

    pattern: Union[RatePattern, float]
    victim: IPv4Address = _DEFAULT_VICTIM
    victim_port: int = 80
    spoofer: Spoofer = field(default_factory=RandomBogonSpoofer)
    mac: MACAddress = MACAddress.parse("02:bd:00:00:00:01")

    def __post_init__(self) -> None:
        if isinstance(self.pattern, (int, float)):
            self.pattern = ConstantRate(float(self.pattern))
        if not 0 <= self.victim_port <= 0xFFFF:
            raise ValueError(f"victim port out of range: {self.victim_port}")

    # ------------------------------------------------------------------
    # Count-level interface
    # ------------------------------------------------------------------
    def expected_packets(self, t0: float, t1: float) -> float:
        """Expected SYN count over attack-local [t0, t1)."""
        return self.pattern.integral(t0, t1)

    def mean_rate(self, duration: float) -> float:
        return self.pattern.mean_rate(duration)

    # ------------------------------------------------------------------
    # Packet-level interface
    # ------------------------------------------------------------------
    def generate_packets(
        self, rng: random.Random, duration: float
    ) -> List[Packet]:
        """Emit the spoofed SYN stream over attack-local [0, duration).

        Within each one-second slot the (possibly fractional) expected
        volume is Bernoulli-rounded and the packets are scattered
        uniformly — accurate for every pattern without needing
        per-pattern inversion sampling.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        packets: List[Packet] = []
        slot = 0.0
        while slot < duration:
            slot_end = min(slot + 1.0, duration)
            expected = self.pattern.integral(slot, slot_end)
            count = int(expected)
            if rng.random() < expected - count:
                count += 1
            for _ in range(count):
                timestamp = slot + rng.random() * (slot_end - slot)
                packets.append(self._spoofed_syn(rng, timestamp))
            slot = slot_end
        packets.sort(key=lambda packet: packet.timestamp)
        return packets

    def _spoofed_syn(self, rng: random.Random, timestamp: float) -> Packet:
        return make_syn(
            timestamp=timestamp,
            src=self.spoofer.next_address(rng),
            dst=self.victim,
            src_port=rng.randrange(1024, 65536),
            dst_port=self.victim_port,
            seq=rng.getrandbits(32),
            src_mac=self.mac,
        )
