"""Command-line interface.

The operational surface a network operator (or a curious reader) would
actually touch::

    repro-syndog generate --site auckland --seed 7 --out trace.csv
    repro-syndog attack   --counts trace.csv --rate 5 --start 360 --out mixed.csv
    repro-syndog detect   --counts mixed.csv
    repro-syndog detect   --pcap-out out.pcap --pcap-in in.pcap
    repro-syndog observe  --trace mixed.csv --metrics-out metrics.prom \
                          --events-out events.jsonl --serve 9100 --alerts
    repro-syndog report   events.jsonl --format markdown --profile
    repro-syndog profile  --mode cost-model --flame-out prof.folded
    repro-syndog query    'max_over_time(syndog_cusum[5m])' --events events.jsonl
    repro-syndog alerts   --events events.jsonl --json
    repro-syndog chaos    --seed 42 --schedule lossy-crash --out report.json
    repro-syndog soak     --sim-days 2 --workers 2 --out soak.json
    repro-syndog respond  --seed 7 --rate 200 --out respond.json \
                          --timeline-out timeline.json --events-out ev.jsonl
    repro-syndog respond  --replay ev.jsonl --timeline-out replayed.json
    repro-syndog campaign --networks 1000 --workers 4 --json campaign.json
    repro-syndog sensitivity --site auckland --workers 4
    repro-syndog table    2
    repro-syndog figure   5
    repro-syndog theory   --k-bar 1922

Every subcommand is importable (``from repro.cli import main``) and
returns a process exit code, so the whole surface is unit-testable
without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager, nullcontext
from typing import Iterator, List, Optional, Sequence

from .attack.flooder import FloodSource
from .core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from .core.syndog import SynDog
from .experiments.report import render_series, render_table
from .trace.events import CountTrace
from .trace.io import load_count_trace, save_count_trace
from .trace.mixer import AttackWindow, mix_flood_into_counts
from .trace.profiles import SITE_PROFILES, get_profile
from .trace.synthetic import generate_count_trace, generate_packet_trace

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_ALARM = 2  # detect: a flooding source was found
EXIT_DEGRADED = 3  # chaos: degradation exceeded the allowed envelope
EXIT_USAGE = 64


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-syndog",
        description="SYN-dog: sniff SYN flooding sources (ICDCS 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------ generate
    generate = sub.add_parser(
        "generate", help="synthesize background traffic for a site profile"
    )
    generate.add_argument(
        "--site", choices=sorted(SITE_PROFILES), default="auckland"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--duration", type=float, default=None,
        help="seconds (default: the site's Table 1 duration)",
    )
    generate.add_argument(
        "--format", choices=("counts", "pcap"), default="counts",
        help="counts: per-period CSV; pcap: two capture files (.out/.in)",
    )
    generate.add_argument("--out", required=True, help="output path (or prefix for pcap)")

    # -------------------------------------------------------------- attack
    attack = sub.add_parser(
        "attack", help="mix a SYN flood into a count trace"
    )
    attack.add_argument("--counts", required=True, help="background count-trace CSV")
    attack.add_argument("--rate", type=float, required=True, help="flood SYN/s")
    attack.add_argument("--start", type=float, default=360.0, help="attack start (s)")
    attack.add_argument(
        "--duration", type=float, default=600.0, help="attack duration (s)"
    )
    attack.add_argument("--out", required=True)

    # -------------------------------------------------------------- detect
    detect = sub.add_parser("detect", help="run SYN-dog over a trace")
    source = detect.add_mutually_exclusive_group(required=True)
    source.add_argument("--counts", help="count-trace CSV")
    source.add_argument("--pcap-out", help="pcap of the outbound interface")
    detect.add_argument(
        "--pcap-in", help="pcap of the inbound interface (with --pcap-out)"
    )
    detect.add_argument("--drift", type=float, default=DEFAULT_PARAMETERS.drift,
                        help="a (default 0.35)")
    detect.add_argument("--threshold", type=float,
                        default=DEFAULT_PARAMETERS.threshold, help="N (default 1.05)")
    detect.add_argument("--period", type=float,
                        default=DEFAULT_PARAMETERS.observation_period,
                        help="t0 seconds (default 20; counts input keeps its own)")
    detect.add_argument("--quiet", action="store_true",
                        help="suppress the per-period series")
    detect.add_argument("--report", action="store_true",
                        help="on alarm, print the forensic attack report "
                             "(onset, end, rate estimates)")
    detect.add_argument("--json", metavar="PATH",
                        help="also write the full per-period detection "
                             "record as JSON")
    detect.add_argument("--metrics-out", metavar="PATH",
                        help="write pipeline metrics in Prometheus "
                             "text-exposition format")
    detect.add_argument("--serve", type=int, metavar="PORT",
                        help="serve live telemetry (/metrics /healthz "
                             "/events) on PORT for the run's duration "
                             "(0 picks a free port)")
    detect.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="pcap input: columnar batched pipeline "
                             "(default); --no-fastpath keeps the "
                             "per-packet object pipeline, the "
                             "differential oracle — results are "
                             "byte-identical either way")

    # ------------------------------------------------------------- observe
    observe = sub.add_parser(
        "observe",
        help="run detection with the full observability layer enabled: "
             "Prometheus metrics, JSONL events, span profile",
    )
    obs_source = observe.add_mutually_exclusive_group(required=True)
    obs_source.add_argument("--trace", help="count-trace CSV")
    obs_source.add_argument("--pcap-out", help="pcap of the outbound interface")
    observe.add_argument(
        "--pcap-in", help="pcap of the inbound interface (with --pcap-out)"
    )
    observe.add_argument("--drift", type=float,
                         default=DEFAULT_PARAMETERS.drift, help="a (default 0.35)")
    observe.add_argument("--threshold", type=float,
                         default=DEFAULT_PARAMETERS.threshold,
                         help="N (default 1.05)")
    observe.add_argument("--period", type=float,
                         default=DEFAULT_PARAMETERS.observation_period,
                         help="t0 seconds (default 20; counts input keeps "
                              "its own)")
    observe.add_argument("--metrics-out", metavar="PATH",
                         help="Prometheus text-exposition output file")
    observe.add_argument("--events-out", metavar="PATH",
                         help="JSONL event stream output file "
                              "(one event per observation period)")
    observe.add_argument("--serve", type=int, metavar="PORT",
                         help="serve live telemetry (/metrics /healthz "
                              "/events /query /alerts) on PORT for the "
                              "run's duration (0 picks a free port)")
    observe.add_argument("--hold", type=float, default=None,
                         metavar="SECONDS",
                         help="with --serve: keep the server up this "
                              "long after the run so scrapers can query "
                              "the finished history")
    observe.add_argument("--alerts", action="store_true",
                         help="arm the builtin alert rules for live "
                              "per-period evaluation")
    observe.add_argument("--rules", metavar="JSON",
                         help="alert rules file (implies --alerts)")
    observe.add_argument("--trace-out", metavar="PATH",
                         help="write the span profile as Chrome "
                              "trace-event JSON (chrome://tracing, "
                              "Perfetto)")
    observe.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="pcap input: columnar batched pipeline "
                              "(default); --no-fastpath keeps the "
                              "per-packet object oracle")

    # --------------------------------------------------------------- query
    query = sub.add_parser(
        "query",
        help="evaluate a PromQL-lite expression over recorded telemetry "
             "(offline events JSONL or a live telemetry server)",
    )
    query.add_argument("expr", metavar="EXPR",
                       help="e.g. 'max_over_time(syndog_cusum[5m])' or "
                            'syndog_x_n{agent="syn-dog"}')
    query_source = query.add_mutually_exclusive_group(required=True)
    query_source.add_argument("--events", metavar="JSONL",
                              help="events JSONL from observe "
                                   "--events-out")
    query_source.add_argument("--url", metavar="URL",
                              help="base URL of a live telemetry server "
                                   "(observe --serve)")
    query.add_argument("--at", type=float, default=None, metavar="T",
                       help="evaluation time in trace seconds "
                            "(default: newest sample)")
    query.add_argument("--json", action="store_true",
                       help="print the raw result document as JSON")

    # -------------------------------------------------------------- alerts
    alerts = sub.add_parser(
        "alerts",
        help="evaluate alert rules over recorded telemetry and print "
             "the lifecycle history (exit 2 when any rule fired)",
    )
    alerts_source = alerts.add_mutually_exclusive_group(required=True)
    alerts_source.add_argument("--events", metavar="JSONL",
                               help="events JSONL from observe "
                                    "--events-out (deterministic replay)")
    alerts_source.add_argument("--url", metavar="URL",
                               help="base URL of a live telemetry server "
                                    "(live alert state)")
    alerts.add_argument("--rules", metavar="JSON",
                        help="alert rules file (default: the builtin "
                             "watch-the-watchers rules)")
    alerts.add_argument("--threshold", type=float,
                        default=DEFAULT_PARAMETERS.threshold,
                        help="CUSUM threshold N the builtin "
                             "near-threshold rule watermarks against "
                             "(default 1.05)")
    alerts.add_argument("--json", action="store_true",
                        help="print the full alerts document as JSON")

    # --------------------------------------------------------------- fleet
    fleet = sub.add_parser(
        "fleet",
        help="fleet telemetry rollup: population counters, quantile "
             "digests over detector state and top-K suspect tables "
             "(O(K) however large the fleet; exit 2 when any agent "
             "is alarming)",
    )
    fleet_source = fleet.add_mutually_exclusive_group(required=True)
    fleet_source.add_argument("--url", metavar="URL",
                              help="base URL of a live telemetry server "
                                   "(GET /fleet)")
    fleet_source.add_argument("--events", metavar="JSONL",
                              help="events JSONL from observe "
                                   "--events-out (offline rebuild)")
    fleet_source.add_argument("--synthetic", type=int, metavar="N",
                              help="roll up an N-agent deterministic "
                                   "synthetic fleet (benchmarks, CI "
                                   "byte-identity checks)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="synthetic fleet seed (default 0)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="shard the synthetic rollup across worker "
                            "processes; the merged document is "
                            "byte-identical at any count (default 1)")
    fleet.add_argument("--k", type=int, default=8,
                       help="suspect-table size K (default 8)")
    fleet.add_argument("--serve", type=int, metavar="PORT",
                       help="with --synthetic: serve the fleet on a "
                            "live telemetry server (/fleet, /healthz)")
    fleet.add_argument("--hold", type=float, default=None, metavar="SECONDS",
                       help="keep the --serve server up this long")
    fleet.add_argument("--json", action="store_true",
                       help="print the rollup document as JSON")

    # -------------------------------------------------------------- report
    report = sub.add_parser(
        "report",
        help="forensic report over one or more events JSONL files: "
             "alarm timelines, detection latency, false alarms, "
             "CUSUM traces",
    )
    report.add_argument("events", nargs="+", metavar="EVENTS_JSONL",
                        help="events JSONL file(s) from observe "
                             "--events-out")
    report.add_argument("--format", choices=("text", "markdown", "json"),
                        default="text")
    report.add_argument("--min-alarm-periods", type=int, default=2,
                        help="alarm spans clearing in fewer periods "
                             "count as false alarms (default 2)")
    report.add_argument("--profile", action="store_true",
                        help="append the per-stage cost section folded "
                             "from the log's profile events")
    report.add_argument("--out", metavar="PATH",
                        help="write the report here instead of stdout")

    # ------------------------------------------------------------- profile
    profile = sub.add_parser(
        "profile",
        help="profile the packet pipeline per stage over a small "
             "deterministic campaign; export flamegraph/callgrind",
    )
    profile.add_argument("--mode", choices=("cost-model", "timers"),
                         default="cost-model",
                         help="cost-model: deterministic fixed per-op "
                              "costs (byte-identical at any --workers); "
                              "timers: real wall/CPU/alloc measurements")
    profile.add_argument("--site", choices=sorted(SITE_PROFILES),
                         default="auckland")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--networks", type=int, default=2,
                         help="stub networks driven through the pipeline")
    profile.add_argument("--duration", type=float, default=None,
                         help="seconds of synthetic trace per network "
                              "(default 60)")
    profile.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes sharding the networks "
                              "(cost-model profiles are byte-identical "
                              "for every N)")
    profile.add_argument("--sample-every", type=int, default=64,
                         metavar="K",
                         help="timers mode: time 1 of every K calls on "
                              "per-packet stages (default 64)")
    profile.add_argument("--json", metavar="PATH",
                         help="write the canonical profile document "
                              "(sorted keys; the CI byte-diff format)")
    profile.add_argument("--flame-out", metavar="PATH",
                         help="write folded stacks for flamegraph.pl / "
                              "speedscope / inferno")
    profile.add_argument("--callgrind-out", metavar="PATH",
                         help="write callgrind format for kcachegrind / "
                              "qcachegrind")
    profile.add_argument("--events-out", metavar="PATH",
                         help="JSONL event stream (carries the profile "
                              "event for repro report --profile)")
    profile.add_argument("--baseline", metavar="JSON",
                         help="per-stage ns/packet baseline "
                              "(BENCH_profile.json); exit 2 when any "
                              "stage regresses past the tolerance")
    profile.add_argument("--baseline-tolerance", type=float, default=1.5,
                         metavar="X",
                         help="allowed ns/packet multiple of the "
                              "baseline (default 1.5)")
    profile.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="profile the columnar ingestion arm "
                              "(fastpath.parse/fastpath.classify; "
                              "default) or, with --no-fastpath, the "
                              "per-packet object arm (pcap.parse/"
                              "federation.feed/classify/sniff.update)")

    # --------------------------------------------------------------- table
    table = sub.add_parser("table", help="regenerate a paper table (1, 2 or 3)")
    table.add_argument("number", type=int, choices=(1, 2, 3))
    table.add_argument("--trials", type=int, default=10)
    table.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes sharding the trials "
                            "(tables 2 and 3; default: all cores)")
    table.add_argument("--json", metavar="PATH",
                       help="also write the rows as JSON (tables 2 and 3)")

    # -------------------------------------------------------------- figure
    figure = sub.add_parser(
        "figure", help="regenerate a paper figure (3, 4, 5, 7, 8 or 9)"
    )
    figure.add_argument("number", type=int, choices=(3, 4, 5, 7, 8, 9))
    figure.add_argument("--seed", type=int, default=0)

    # ------------------------------------------------------------ campaign
    campaign = sub.add_parser(
        "campaign",
        help="simulate a distributed campaign against a fleet of SYN-dogs",
    )
    campaign.add_argument("--aggregate", type=float, default=14000.0,
                          help="campaign rate V toward the victim (SYN/s)")
    campaign.add_argument("--networks", type=int, required=True,
                          help="stub networks A the campaign spreads over")
    campaign.add_argument("--site", choices=sorted(SITE_PROFILES),
                          default="auckland",
                          help="fleet profile (every network this size)")
    campaign.add_argument("--sample", type=int, default=6,
                          help="networks actually simulated (uniform sample)")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--workers", type=int, default=None, metavar="N",
                          help="worker processes sharding the simulated "
                               "networks (default: all cores; output is "
                               "byte-identical for every N)")
    campaign.add_argument("--json", metavar="PATH",
                          help="write the campaign result as "
                               "deterministic JSON")
    campaign.add_argument("--metrics-out", metavar="PATH",
                          help="write fleet metrics in Prometheus "
                               "text-exposition format")
    campaign.add_argument("--serve", type=int, metavar="PORT",
                          help="serve live telemetry (/metrics /healthz "
                               "/events) on PORT for the run's duration "
                               "(0 picks a free port)")
    campaign.add_argument("--fastpath", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="accepted for symmetry with detect/"
                               "profile; the campaign simulates at "
                               "count level, which has no per-packet "
                               "parse to batch, so both settings run "
                               "the same code")

    # --------------------------------------------------------------- chaos
    from .faults.schedule import BUILTIN_SCHEDULES, DEFAULT_SCHEDULE

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection campaign and assert the "
             "degradation envelope (baseline vs faulted detection)",
    )
    chaos.add_argument("--seed", type=int, default=42,
                       help="root seed: same seed + schedule = "
                            "byte-identical report")
    chaos.add_argument("--schedule", choices=sorted(BUILTIN_SCHEDULES),
                       default=DEFAULT_SCHEDULE,
                       help=f"built-in fault schedule "
                            f"(default {DEFAULT_SCHEDULE})")
    chaos.add_argument("--site", choices=sorted(SITE_PROFILES),
                       default="auckland")
    chaos.add_argument("--rate", type=float, default=5.0,
                       help="flood SYN/s mixed into the background")
    chaos.add_argument("--attack-start", type=float, default=360.0,
                       help="flood onset (s)")
    chaos.add_argument("--attack-duration", type=float, default=600.0,
                       help="flood duration (s)")
    chaos.add_argument("--duration", type=float, default=1800.0,
                       help="total trace length (s)")
    chaos.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes sharding the baseline/"
                            "faulted arms (default: all cores; the "
                            "report is byte-identical for every N)")
    chaos.add_argument("--max-delay-ratio", type=float, default=2.0,
                       help="envelope: faulted detection delay must stay "
                            "within this multiple of the baseline")
    chaos.add_argument("--out", metavar="PATH",
                       help="write the degradation report as "
                            "deterministic JSON")
    chaos.add_argument("--metrics-out", metavar="PATH",
                       help="write fault/degradation metrics in "
                            "Prometheus text-exposition format")
    chaos.add_argument("--alerts-out", metavar="PATH",
                       help="replay the builtin alert rules over the "
                            "campaign's telemetry history and write the "
                            "deterministic alerts document as JSON "
                            "(byte-identical for every --workers N)")
    chaos.add_argument("--max-memory-events", type=int, default=100_000,
                       metavar="N",
                       help="bound on the in-memory event sink (small "
                            "bounds exercise drop accounting and the "
                            "events_dropping alert)")

    # ---------------------------------------------------------------- soak
    soak = sub.add_parser(
        "soak",
        help="long-horizon soak: epochs of detect/checkpoint/restore "
             "with fault bursts and attack windows, judged by SLO "
             "burn rates and the resource ledger",
    )
    soak.add_argument("--seed", type=int, default=42,
                      help="root seed: same seed + scenario = "
                           "byte-identical report")
    soak.add_argument("--site", choices=sorted(SITE_PROFILES),
                      default="auckland")
    soak.add_argument("--sim-days", type=int, default=2,
                      help="simulated days of continuous operation")
    soak.add_argument("--periods-per-epoch", type=int, default=288,
                      help="observation periods per epoch; one epoch = "
                           "one checkpoint/restore cycle and one work "
                           "shard (epochs must divide a day evenly)")
    soak.add_argument("--rate", type=float, default=5.0,
                      help="flood SYN/s mixed into attack epochs")
    soak.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes sharding the epochs "
                           "(default: all cores; the report is "
                           "byte-identical for every N)")
    soak.add_argument("--tsdb-retention", type=int, default=2048,
                      metavar="N",
                      help="per-series telemetry retention; the default "
                           "reaches compaction equilibrium inside the "
                           "first simulated day, so the ledger flatness "
                           "gate measures steady state, not ramp-up")
    soak.add_argument("--out", metavar="PATH",
                      help="write the soak report as deterministic JSON")
    soak.add_argument("--metrics-out", metavar="PATH",
                      help="write soak metrics in Prometheus "
                           "text-exposition format")
    soak.add_argument("--events-out", metavar="PATH",
                      help="also append structured events as JSONL")
    soak.add_argument("--serve", type=int, metavar="PORT",
                      help="serve live telemetry (/metrics /healthz "
                           "/slo /query ...) on PORT for the run's "
                           "duration (0 picks a free port)")
    soak.add_argument("--hold", type=float, default=None, metavar="SECONDS",
                      help="with --serve: keep the server up this long "
                           "after the soak so scrapers can query the "
                           "finished run's /slo and ledger history")

    # ------------------------------------------------------------- respond
    respond = sub.add_parser(
        "respond",
        help="closed-loop detect->respond campaign: unmitigated vs "
             "playbook-mitigated flood, with recovery and collateral "
             "verdicts",
    )
    respond.add_argument("--seed", type=int, default=7,
                         help="root seed: same seed + playbook = "
                              "byte-identical report")
    respond.add_argument("--rate", type=float, default=200.0,
                         help="flood SYN/s aimed at the victim")
    respond.add_argument("--client-rate", type=float, default=15.0,
                         help="legitimate connection attempts per second")
    respond.add_argument("--duration", type=float, default=300.0,
                         help="total scenario length (s)")
    respond.add_argument("--attack-start", type=float, default=60.0,
                         help="flood onset (s)")
    respond.add_argument("--attack-duration", type=float, default=120.0,
                         help="flood duration (s)")
    respond.add_argument("--period", type=float, default=5.0,
                         help="detector observation period t0 (s)")
    respond.add_argument("--backlog", type=int, default=256,
                         help="victim listen-queue capacity")
    respond.add_argument("--playbook", metavar="PATH",
                         help="playbook file (JSON or YAML-lite; default: "
                              "the built-in block-and-shield playbook)")
    respond.add_argument("--flaky", type=int, default=0, metavar="N",
                         help="inject N deterministic actuator failures "
                              "per action kind (exercises retry/backoff)")
    respond.add_argument("--recovery-factor", type=float, default=2.0,
                         help="pass bar: mitigated handshake completion "
                              "over the attack window must be at least "
                              "this multiple of the unmitigated arm's")
    respond.add_argument("--alert-cut", type=float, default=50.0,
                         help="syndog_delta threshold for the syn_flood "
                              "alert rule driving the engine")
    respond.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes sharding the two arms "
                              "(default: all cores; the report is "
                              "byte-identical for every N)")
    respond.add_argument("--out", metavar="PATH",
                         help="write the campaign report as "
                              "deterministic JSON")
    respond.add_argument("--timeline-out", metavar="PATH",
                         help="write the mitigation timeline document as "
                              "deterministic JSON (byte-identical to an "
                              "offline --replay of the events JSONL)")
    respond.add_argument("--events-out", metavar="PATH",
                         help="append obs events as JSONL (the replayable "
                              "record of every response transition)")
    respond.add_argument("--metrics-out", metavar="PATH",
                         help="write response/defense metrics in "
                              "Prometheus text-exposition format")
    respond.add_argument("--serve", type=int, metavar="PORT",
                         help="serve live telemetry (/metrics /healthz "
                              "/events /query /alerts) on PORT for the "
                              "run's duration (0 picks a free port)")
    respond.add_argument("--hold", type=float, default=None, metavar="S",
                         help="with --serve: keep the server up S seconds "
                              "after the campaign so scrapers can read "
                              "the finished run")
    respond.add_argument("--replay", metavar="EVENTS",
                         help="offline mode: rebuild the mitigation "
                              "timeline document from an events JSONL "
                              "written by a previous run (no simulation; "
                              "byte-identical to its --timeline-out)")

    # --------------------------------------------------------- sensitivity
    sensitivity = sub.add_parser(
        "sensitivity",
        help="sweep the (a, N) tuning grid: false-alarm rate vs "
             "detection delay per cell, with an operator recommendation",
    )
    sensitivity.add_argument("--site", choices=sorted(SITE_PROFILES),
                             default="auckland")
    sensitivity.add_argument("--drifts", type=float, nargs="+",
                             default=[0.05, 0.1, 0.2, 0.35, 0.5],
                             help="drift (a) values to sweep")
    sensitivity.add_argument("--thresholds", type=float, nargs="+",
                             default=[0.3, 0.6, 1.05, 2.0],
                             help="threshold (N) values to sweep")
    sensitivity.add_argument("--rate", type=float, default=5.0,
                             help="reference flood SYN/s for the "
                                  "detection-delay column")
    sensitivity.add_argument("--traces", type=int, default=5,
                             help="normal traces and attack trials per cell")
    sensitivity.add_argument("--seed", type=int, default=0)
    sensitivity.add_argument("--max-false-alarm-rate", type=float,
                             default=0.0,
                             help="false-alarm budget for the "
                                  "recommendation (onsets per period)")
    sensitivity.add_argument("--workers", type=int, default=None,
                             metavar="N",
                             help="worker processes sharding trace "
                                  "synthesis (default: all cores; cells "
                                  "are byte-identical for every N)")
    sensitivity.add_argument("--json", metavar="PATH",
                             help="write the grid as deterministic JSON")

    # -------------------------------------------------------------- theory
    theory = sub.add_parser(
        "theory", help="print the analytic bounds for a site size"
    )
    theory.add_argument(
        "--k-bar", type=float, required=True,
        help="mean SYN/ACKs per observation period at the deployment site",
    )
    theory.add_argument("--aggregate", type=float, default=14000.0,
                        help="campaign rate V for the coverage bound (SYN/s)")

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    profile = get_profile(args.site)
    if args.format == "counts":
        trace = generate_count_trace(
            profile, seed=args.seed, duration=args.duration
        )
        save_count_trace(trace, args.out)
        print(f"wrote {trace.num_periods} periods "
              f"({trace.duration:.0f}s of {profile.name}) to {args.out}")
        return EXIT_OK
    from .pcap.writer import write_pcap

    trace = generate_packet_trace(profile, seed=args.seed, duration=args.duration)
    out_path = f"{args.out}.out.pcap"
    in_path = f"{args.out}.in.pcap"
    write_pcap(out_path, trace.outbound)
    write_pcap(in_path, trace.inbound)
    print(f"wrote {len(trace.outbound)} outbound packets to {out_path}")
    print(f"wrote {len(trace.inbound)} inbound packets to {in_path}")
    return EXIT_OK


def _cmd_attack(args: argparse.Namespace) -> int:
    background = load_count_trace(args.counts)
    mixed = mix_flood_into_counts(
        background,
        FloodSource(pattern=args.rate),
        AttackWindow(args.start, args.duration),
    )
    save_count_trace(mixed, args.out)
    extra = sum(mixed.syn_counts) - sum(background.syn_counts)
    print(f"mixed {extra} flood SYNs ({args.rate}/s for {args.duration:.0f}s "
          f"from t={args.start:.0f}s) into {args.out}")
    return EXIT_OK


@contextmanager
def _serving(
    obs, port: Optional[int], hold: Optional[float] = None
) -> Iterator[None]:
    """Run the block with the telemetry server up (no-op without a
    port); the server stops — gracefully — when the block exits.
    *hold* keeps it up that many seconds after the block so scrapers
    can still query the finished run's history."""
    if port is None or obs is None:
        yield
        return
    from .obs.server import ObsServer

    server = ObsServer(obs, port=port)
    server.start()
    print(f"telemetry         : serving {server.url}"
          f"  (/metrics /healthz /events /query /alerts /slo)")
    try:
        yield
        if hold:
            import time

            print(f"telemetry         : holding for {hold:g}s")
            time.sleep(hold)
    finally:
        server.stop()


def _detect_parameters(args: argparse.Namespace) -> SynDogParameters:
    return SynDogParameters(
        observation_period=args.period,
        drift=args.drift,
        attack_increase=2.0 * args.drift,
        threshold=args.threshold,
    )


def _cmd_detect(args: argparse.Namespace) -> int:
    parameters = _detect_parameters(args)
    obs = None
    if args.metrics_out or args.serve is not None:
        from .obs import enabled_instrumentation

        # A live scrape server wants /events to answer, so keep the
        # in-memory sink when serving.
        obs = enabled_instrumentation(memory_events=args.serve is not None)
    with _serving(obs, args.serve):
        if args.counts:
            trace = load_count_trace(args.counts)
            if trace.period != parameters.observation_period:
                parameters = SynDogParameters(
                    observation_period=trace.period,
                    drift=args.drift,
                    attack_increase=2.0 * args.drift,
                    threshold=args.threshold,
                )
            from .trace.validation import validate_count_trace

            for finding in validate_count_trace(trace):
                print(f"[{finding.severity.value}] {finding.code}: "
                      f"{finding.message}", file=sys.stderr)
            dog = SynDog(parameters=parameters, obs=obs)
            with (obs.tracer.span("detect.run") if obs is not None
                  else nullcontext()):
                result = dog.observe_counts(trace.counts)
        else:
            if not args.pcap_in:
                print("detect: --pcap-out requires --pcap-in",
                      file=sys.stderr)
                return EXIT_USAGE
            from .experiments.streaming import detect_from_pcaps

            result, dog = detect_from_pcaps(
                args.pcap_out, args.pcap_in, parameters=parameters, obs=obs,
                fastpath=args.fastpath,
            )
    if obs is not None:
        samples = obs.finalize(args.metrics_out)
        if args.metrics_out:
            print(f"wrote {samples} metric samples to {args.metrics_out}")
    if args.json:
        from .experiments.export import detection_result_to_dict, save_json

        save_json(detection_result_to_dict(result), args.json)
        print(f"wrote detection record to {args.json}")
    if not args.quiet:
        times = [record.end_time for record in result.records]
        print(render_series("y_n", times, list(result.statistics)))
    print(f"periods observed : {len(result.records)}")
    print(f"K-bar estimate   : {dog.k_bar:.1f} SYN/ACKs per period")
    print(f"detection floor  : {dog.min_detectable_rate():.2f} SYN/s (Eq. 8)")
    print(f"max statistic    : {result.max_statistic:.4f} "
          f"(threshold N = {parameters.threshold})")
    if result.alarmed:
        print(f"ALARM            : flooding source detected at "
              f"t = {result.first_alarm_time:.0f}s "
              f"(period {result.first_alarm_period})")
        if args.report:
            from .experiments.forensics import characterize_attack

            report = characterize_attack(result, parameters=parameters)
            print("--- forensic report ---")
            print(f"estimated onset  : t = {report.estimated_onset_time:.0f}s")
            print(f"estimated end    : t = {report.estimated_end_time:.0f}s "
                  f"(duration {report.estimated_duration:.0f}s)")
            print(f"estimated rate   : {report.estimated_rate:.2f} SYN/s "
                  f"seen by this router")
            print(f"baseline X       : {report.baseline_x:.4f}; "
                  f"attacked X: {report.attack_x:.4f}")
        return EXIT_ALARM
    print("verdict          : no flooding source detected")
    return EXIT_OK


def _cmd_observe(args: argparse.Namespace) -> int:
    """``detect`` with the full observability layer switched on."""
    from .obs import enabled_instrumentation

    parameters = _detect_parameters(args)
    alert_rules = None
    if args.alerts or args.rules:
        from .obs.alerts import builtin_rules, rules_from_file

        alert_rules = (
            rules_from_file(args.rules) if args.rules
            else builtin_rules(threshold=args.threshold)
        )
    obs = enabled_instrumentation(
        events_path=args.events_out, alert_rules=alert_rules
    )
    with _serving(obs, args.serve, hold=args.hold):
        if args.trace:
            trace = load_count_trace(args.trace)
            if trace.period != parameters.observation_period:
                parameters = SynDogParameters(
                    observation_period=trace.period,
                    drift=args.drift,
                    attack_increase=2.0 * args.drift,
                    threshold=args.threshold,
                )
            dog = SynDog(parameters=parameters, obs=obs)
            with obs.tracer.span("observe.run"):
                result = dog.observe_counts(trace.counts)
        else:
            if not args.pcap_in:
                print("observe: --pcap-out requires --pcap-in",
                      file=sys.stderr)
                return EXIT_USAGE
            from .experiments.streaming import detect_from_pcaps

            with obs.tracer.span("observe.run"):
                result, dog = detect_from_pcaps(
                    args.pcap_out, args.pcap_in, parameters=parameters,
                    obs=obs, fastpath=args.fastpath,
                )
    events_emitted = obs.events.events_emitted
    run_seconds = obs.tracer.total_seconds("observe.run")
    samples = obs.finalize(args.metrics_out)
    summary = obs.summary()
    print(f"periods observed : {len(result.records)}")
    print(f"events emitted   : {events_emitted}")
    if summary["events_dropped"]:
        print(f"events DROPPED   : {summary['events_dropped']} "
              f"(bounded memory sink overflowed)")
    if summary["alarm_contexts"]:
        print(f"alarm contexts   : {summary['alarm_contexts']} "
              f"(flight recorder)")
    print(f"detection pass   : {run_seconds * 1e3:.2f} ms wall clock")
    print(f"K-bar estimate   : {dog.k_bar:.1f} SYN/ACKs per period")
    print(f"max statistic    : {result.max_statistic:.4f} "
          f"(threshold N = {parameters.threshold})")
    if args.metrics_out:
        print(f"metrics          : {samples} samples -> {args.metrics_out}")
    if args.events_out:
        print(f"events           : JSONL -> {args.events_out}")
    if alert_rules is not None:
        doc = obs.alerts.to_dict()
        fired = sorted({
            transition["rule"]
            for transition in doc["transitions"]
            if transition["to"] == "firing"
        })
        print(f"alerts           : {len(doc['rules'])} rules, "
              f"{doc['evaluations']} evaluations, "
              f"{len(doc['transitions'])} transitions")
        if fired:
            print(f"alerts fired     : {', '.join(fired)}")
    if args.trace_out:
        from .obs.exporters import write_chrome_trace

        spans = write_chrome_trace(obs.tracer, args.trace_out)
        print(f"trace            : {spans} span events -> {args.trace_out}")
    if result.alarmed:
        print(f"ALARM            : flooding source detected at "
              f"t = {result.first_alarm_time:.0f}s "
              f"(period {result.first_alarm_period})")
        return EXIT_ALARM
    print("verdict          : no flooding source detected")
    return EXIT_OK


def _fetch_json(url: str) -> dict:
    """GET *url* and decode the JSON body (raises OSError/ValueError)."""
    import json
    from urllib.request import urlopen

    with urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


def _server_url(base: str, path: str, params: Optional[dict] = None) -> str:
    from urllib.parse import urlencode

    base = base.rstrip("/")
    if not base.startswith("http://") and not base.startswith("https://"):
        base = "http://" + base
    url = base + path
    if params:
        url += "?" + urlencode(params)
    return url


def _load_events_strict(command: str, path) -> Optional[list]:
    """Load an events JSONL for offline forensics, refusing to limp
    along on a log that cannot support any: a truncated/corrupt file
    (e.g. the writer died mid-line) or an empty one yields a one-line
    diagnostic on stderr and ``None`` — the caller exits 2, because for
    a forensics command the broken log *is* the finding, and a clean
    "0 events, all quiet" report would hide it."""
    from .obs.events import read_jsonl

    try:
        events = read_jsonl(path)
    except ValueError as exc:  # includes json.JSONDecodeError
        print(f"{command}: truncated or corrupt events file {path}: {exc}",
              file=sys.stderr)
        return None
    if not events:
        print(f"{command}: empty events file: {path}", file=sys.stderr)
        return None
    return events


def _cmd_query(args: argparse.Namespace) -> int:
    """Evaluate one PromQL-lite expression over recorded telemetry."""
    import json

    from .obs.tsdb import QueryError

    if args.url:
        params = {"expr": args.expr}
        if args.at is not None:
            params["at"] = args.at
        try:
            doc = _fetch_json(_server_url(args.url, "/query", params))
        except (OSError, ValueError) as exc:
            print(f"query: {exc}", file=sys.stderr)
            return EXIT_USAGE
    else:
        from pathlib import Path

        from .obs.tsdb import tsdb_from_events

        if not Path(args.events).exists():
            print(f"query: no such events file: {args.events}",
                  file=sys.stderr)
            return EXIT_USAGE
        events = _load_events_strict("query", args.events)
        if events is None:
            return EXIT_ALARM
        tsdb = tsdb_from_events(events)
        try:
            result = tsdb.query(args.expr, at=args.at)
        except QueryError as exc:
            print(f"query: {exc}", file=sys.stderr)
            return EXIT_USAGE
        at = args.at if args.at is not None else tsdb.last_time()
        doc = {"expr": args.expr, "at": at, "result": result,
               "count": len(result)}
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"expr             : {doc.get('expr', args.expr)}")
    at = doc.get("at")
    print(f"evaluated at     : "
          f"{'-' if at is None else f't = {at:g}s'}")
    rows = doc.get("result") or []
    if not rows:
        print("result           : empty vector")
        return EXIT_OK
    print(f"result           : {len(rows)} series")
    for entry in rows:
        labels = entry.get("labels") or {}
        rendered = "{" + ", ".join(
            f'{key}="{value}"' for key, value in sorted(labels.items())
        ) + "}"
        print(f"  {rendered} {entry['value']:g}")
    return EXIT_OK


def _render_alerts_text(doc: dict) -> str:
    """Human view of an alerts document (live or replayed)."""
    if not doc.get("enabled", False):
        return "alerting         : disabled (no alert manager)"
    lines = [
        f"rules            : {len(doc.get('rules', []))}",
        f"evaluations      : {doc.get('evaluations', 0)}"
        + (" (closed)" if doc.get("closed") else ""),
    ]
    states = doc.get("states", {})
    for rule in doc.get("rules", []):
        state = states.get(rule["name"], {})
        lines.append(
            f"  {rule['name']:<24} [{rule.get('severity', '?'):>4}] "
            f"state={state.get('state', '?')} "
            f"fired={state.get('fired_count', 0)} "
            f"resolved={state.get('resolved_count', 0)}"
        )
    transitions = doc.get("transitions", [])
    lines.append(f"transitions      : {len(transitions)}")
    for transition in transitions:
        value = transition.get("value")
        lines.append(
            f"  t={transition['t']:>7g}s {transition['rule']:<24} "
            f"-> {transition['to']}"
            + ("" if value is None else f" (value {value:g})")
        )
    for name, message in doc.get("rule_errors", {}).items():
        lines.append(f"  rule error: {name}: {message}")
    return "\n".join(lines)


def _cmd_alerts(args: argparse.Namespace) -> int:
    """Alert-rule evaluation over recorded telemetry: live state from a
    server, or a deterministic replay over an events JSONL."""
    import json

    if args.url:
        try:
            doc = _fetch_json(_server_url(args.url, "/alerts"))
        except (OSError, ValueError) as exc:
            print(f"alerts: {exc}", file=sys.stderr)
            return EXIT_USAGE
    else:
        from pathlib import Path

        from .obs.alerts import builtin_rules, replay_rules, rules_from_file
        from .obs.events import read_jsonl
        from .obs.tsdb import tsdb_from_events

        if not Path(args.events).exists():
            print(f"alerts: no such events file: {args.events}",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            rules = (
                rules_from_file(args.rules) if args.rules
                else builtin_rules(threshold=args.threshold)
            )
        except (ValueError, OSError) as exc:
            print(f"alerts: bad rules file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        tsdb = tsdb_from_events(read_jsonl(args.events))
        doc = replay_rules(rules, tsdb).to_dict()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render_alerts_text(doc))
    fired = doc.get("firing") or [
        transition["rule"]
        for transition in doc.get("transitions", ())
        if transition["to"] == "firing"
    ]
    return EXIT_ALARM if fired else EXIT_OK


def _render_fleet_text(doc: dict) -> str:
    """Human view of a fleet rollup document."""
    agents = doc.get("agents", {})
    lines = [
        f"fleet            : {agents.get('total', 0)} agents "
        f"(ok {agents.get('ok', 0)}, degraded {agents.get('degraded', 0)}, "
        f"alarming {agents.get('alarming', 0)}, down {agents.get('down', 0)})",
        f"quorum           : {agents.get('quorum', 1.0):.4f}",
        f"alarm fraction   : {agents.get('alarm_fraction', 0.0):.4f}",
    ]
    watermark = doc.get("watermark")
    lines.append(
        "watermark        : "
        + ("-" if watermark is None else f"t = {watermark:g}s")
    )
    digests = doc.get("digests", {})
    if digests:
        lines.append(f"{'digest':<18} {'p50':>10} {'p90':>10} {'p99':>10} "
                     f"{'max':>10}")
        for metric in sorted(digests):
            digest = digests[metric]
            quantiles = digest.get("quantiles", {})

            def _cell(value):
                return "-" if value is None else f"{value:.4g}"

            lines.append(
                f"  {metric:<16} {_cell(quantiles.get('p50')):>10} "
                f"{_cell(quantiles.get('p90')):>10} "
                f"{_cell(quantiles.get('p99')):>10} "
                f"{_cell(digest.get('max')):>10}"
            )
    titles = {
        "alarms": "most alarming (alarm count)",
        "cusum": "highest CUSUM",
        "degraded": "most degraded (periods)",
    }
    for ranking in sorted(doc.get("top", {})):
        entries = doc["top"][ranking].get("entries", [])
        if not entries:
            continue
        lines.append(f"top suspects     : {titles.get(ranking, ranking)}")
        for entry in entries:
            error = entry.get("error", 0.0)
            lines.append(
                f"  {entry['agent']:<24} {entry['weight']:>10g}"
                + ("" if not error else f"  (±{error:g})")
            )
    return "\n".join(lines)


def _synthetic_fleet_document(
    n: int, seed: int, k: int, workers: int
) -> dict:
    """Shard the synthetic fleet through the WorkPlan engine and fold
    the shard rollups home — the same merge path a sharded federation
    uses, byte-identical at any worker count."""
    from .obs.merge import merge_rollup_snapshots
    from .obs.rollup import synthetic_shard_rollup
    from .parallel import WorkPlan, run_plan

    chunk = 256  # fixed chunking: the grid never depends on --workers
    tasks = [
        (seed, start, min(start + chunk, n), k)
        for start in range(0, n, chunk)
    ]
    snapshots = run_plan(
        WorkPlan.partition(tasks), synthetic_shard_rollup, workers=workers
    )
    return merge_rollup_snapshots(snapshots, k=k).to_dict()


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet summary: live /fleet scrape, offline events rebuild, or a
    sharded synthetic fleet (the O(K)-document demonstration)."""
    import json

    if args.serve is not None and args.synthetic is None:
        print("fleet: --serve requires --synthetic", file=sys.stderr)
        return EXIT_USAGE
    if args.url:
        try:
            doc = _fetch_json(_server_url(args.url, "/fleet"))
        except (OSError, ValueError) as exc:
            print(f"fleet: {exc}", file=sys.stderr)
            return EXIT_USAGE
    elif args.events:
        from pathlib import Path

        from .obs.events import read_jsonl
        from .obs.rollup import rollup_from_events

        if not Path(args.events).exists():
            print(f"fleet: no such events file: {args.events}",
                  file=sys.stderr)
            return EXIT_USAGE
        doc = rollup_from_events(read_jsonl(args.events), k=args.k).to_dict()
    else:
        if args.synthetic < 0:
            print(f"fleet: --synthetic must be >= 0: {args.synthetic}",
                  file=sys.stderr)
            return EXIT_USAGE
        doc = _synthetic_fleet_document(
            args.synthetic, seed=args.seed, k=args.k, workers=args.workers
        )
        if args.serve is not None:
            from .obs import enabled_instrumentation
            from .obs.rollup import synthetic_fleet_states

            obs = enabled_instrumentation(memory_events=True)
            for state in synthetic_fleet_states(args.synthetic,
                                                seed=args.seed):
                if state.down:
                    continue  # a down agent's tape never got a snapshot
                obs.recorder.record(state.name, {
                    "period_index": 0,
                    "end_time": 20.0,
                    "syn": state.delta,
                    "synack": 0.0,
                    "x": state.x,
                    "statistic": state.cusum,
                    "alarm": state.alarm,
                    "degraded": state.degraded_periods > 0,
                })
            with _serving(obs, args.serve, hold=args.hold or 0.0):
                pass
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render_fleet_text(doc))
    alarming = (doc.get("agents") or {}).get("alarming", 0)
    return EXIT_ALARM if alarming else EXIT_OK


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        from .experiments.tables import table1

        print(table1())
        return EXIT_OK
    from .experiments.tables import table2, table3

    rows, rendered = (table2 if args.number == 2 else table3)(
        num_trials=args.trials, workers=args.workers
    )
    print(rendered)
    if args.json:
        from .experiments.export import save_json, table_rows_to_dict

        save_json(
            table_rows_to_dict(rows, title=f"Table {args.number}"), args.json
        )
        print(f"wrote rows to {args.json}")
    return EXIT_OK


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import figures

    if args.number in (3, 4):
        panels = (figures.figure3 if args.number == 3 else figures.figure4)(
            seed=args.seed
        )
        for panel in panels:
            print(panel.render())
        return EXIT_OK
    if args.number == 5:
        for panel, _result in figures.figure5(seed=args.seed):
            print(panel.render())
        return EXIT_OK
    if args.number in (7, 8):
        maker = figures.figure7 if args.number == 7 else figures.figure8
        for panel, _result in maker(seed=args.seed):
            print(panel.render())
        return EXIT_OK
    panel, _result = figures.figure9(seed=args.seed)
    print(panel.render())
    return EXIT_OK


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection campaign: baseline vs faulted detection, with a
    hard exit-code verdict on the degradation envelope."""
    import json

    from .experiments.chaos import (
        chaos_alerts_document,
        render_chaos_report,
        run_chaos_campaign,
    )
    from .faults.schedule import get_schedule
    from .obs import enabled_instrumentation

    obs = enabled_instrumentation(max_memory_events=args.max_memory_events)
    report = run_chaos_campaign(
        site=args.site,
        seed=args.seed,
        schedule=get_schedule(args.schedule),
        rate=args.rate,
        attack_start=args.attack_start,
        attack_duration=args.attack_duration,
        duration=args.duration,
        max_delay_ratio=args.max_delay_ratio,
        obs=obs,
        workers=args.workers,
    )
    print(render_chaos_report(report))
    if args.out:
        from pathlib import Path

        # sort_keys + no timestamps: two runs with the same seed and
        # schedule must produce byte-identical files (CI diffs them).
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report           : JSON -> {args.out}")
    if args.alerts_out:
        from pathlib import Path

        # The replayed document depends only on the merged telemetry
        # history, so it is byte-identical for every --workers N.
        alerts_doc = chaos_alerts_document(obs)
        Path(args.alerts_out).write_text(
            json.dumps(alerts_doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        fired = sorted({
            transition["rule"]
            for transition in alerts_doc["transitions"]
            if transition["to"] == "firing"
        })
        print(f"alerts           : JSON -> {args.alerts_out}"
              + (f"  (fired: {', '.join(fired)})" if fired else ""))
    samples = obs.finalize(args.metrics_out)
    if args.metrics_out:
        print(f"metrics          : {samples} samples -> {args.metrics_out}")
    return EXIT_OK if report.within_envelope else EXIT_DEGRADED


def _cmd_soak(args: argparse.Namespace) -> int:
    """Long-horizon soak campaign: simulated days of synthesize ->
    detect -> checkpoint -> restore -> continue, with periodic fault
    bursts and attack windows, judged by multi-window SLO burn rates
    and the resource ledger's memory-flatness verdict."""
    import json

    from .experiments.soak import render_soak_report, run_soak_campaign
    from .obs import enabled_instrumentation

    obs = enabled_instrumentation(
        events_path=args.events_out,
        tsdb_retention=args.tsdb_retention,
    )
    with _serving(obs, args.serve, hold=args.hold):
        report = run_soak_campaign(
            site=args.site,
            seed=args.seed,
            sim_days=args.sim_days,
            periods_per_epoch=args.periods_per_epoch,
            rate=args.rate,
            obs=obs,
            workers=args.workers,
        )
        print(render_soak_report(report))
        if args.out:
            from pathlib import Path

            # sort_keys + no timestamps: the same seed and scenario
            # must produce byte-identical files at any --workers N
            # (CI diffs them).
            Path(args.out).write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
            print(f"report           : JSON -> {args.out}")
        samples = obs.finalize(args.metrics_out)
        if args.metrics_out:
            print(f"metrics          : {samples} samples -> "
                  f"{args.metrics_out}")
        if args.events_out:
            print(f"events           : JSONL -> {args.events_out}")
    return EXIT_OK if report.healthy else EXIT_DEGRADED


def _cmd_respond(args: argparse.Namespace) -> int:
    """Closed-loop response campaign: run the unmitigated and the
    playbook-mitigated arms of the same flood, print the recovery
    verdict, and persist the deterministic report/timeline artifacts.
    With ``--replay`` no simulation runs: the timeline document is
    rebuilt purely from a previous run's events JSONL."""
    import json
    from pathlib import Path

    from .experiments.respond import (
        render_respond_report,
        run_respond_campaign,
        timeline_document,
    )

    if args.replay:
        from .defense.response import timeline_from_events
        from .obs.events import read_jsonl

        try:
            events = list(read_jsonl(args.replay))
        except OSError as exc:
            print(f"respond: cannot read events: {exc}", file=sys.stderr)
            return EXIT_USAGE
        document = timeline_document(timeline_from_events(events))
        rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if args.timeline_out:
            Path(args.timeline_out).write_text(rendered, encoding="utf-8")
            print(f"timeline         : JSON -> {args.timeline_out}  "
                  f"(replayed {document['count']} entries from "
                  f"{args.replay})")
        else:
            print(rendered, end="")
        return EXIT_OK

    playbook = None
    if args.playbook:
        from .defense.response import Playbook

        try:
            playbook = Playbook.from_file(args.playbook)
        except (OSError, ValueError) as exc:
            print(f"respond: bad playbook: {exc}", file=sys.stderr)
            return EXIT_USAGE

    from .obs import enabled_instrumentation

    obs = enabled_instrumentation(
        events_path=args.events_out,
        memory_events=args.serve is not None,
    )
    with _serving(obs, args.serve, hold=args.hold):
        report = run_respond_campaign(
            seed=args.seed,
            rate=args.rate,
            client_rate=args.client_rate,
            duration=args.duration,
            attack_start=args.attack_start,
            attack_duration=args.attack_duration,
            period=args.period,
            backlog_capacity=args.backlog,
            playbook=playbook,
            alert_cut=args.alert_cut,
            actuator_failures=args.flaky,
            recovery_factor=args.recovery_factor,
            obs=obs,
            workers=args.workers,
        )
        print(render_respond_report(report))
        if args.out:
            # sort_keys + no timestamps: same seed + playbook must give
            # byte-identical files at every --workers N (CI diffs them).
            Path(args.out).write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"report           : JSON -> {args.out}")
        if args.timeline_out:
            document = timeline_document(report.mitigated["timeline"])
            Path(args.timeline_out).write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"timeline         : JSON -> {args.timeline_out}  "
                  f"({document['count']} entries)")
        samples = obs.finalize(args.metrics_out)
        if args.metrics_out:
            print(f"metrics          : {samples} samples -> {args.metrics_out}")
        if args.events_out:
            print(f"events           : JSONL -> {args.events_out}")
    return EXIT_OK if report.passed else EXIT_DEGRADED


def _cmd_theory(args: argparse.Namespace) -> int:
    parameters = DEFAULT_PARAMETERS
    k_bar = args.k_bar
    floor = parameters.min_detectable_rate(k_bar)
    rows = [
        ["K-bar (SYN/ACKs per period)", k_bar],
        ["f_min, Eq. 8 (SYN/s)", round(floor, 2)],
        ["design detection time (periods)", parameters.design_detection_periods],
        ["design detection time (seconds)", parameters.design_detection_seconds],
        [f"max hidden stub networks at V={args.aggregate:.0f}/s",
         parameters.max_hidden_sources(args.aggregate, k_bar)],
    ]
    for rate_multiple in (1.2, 1.5, 2.0, 3.0):
        rate = floor * rate_multiple
        rows.append([
            f"expected delay at {rate:.1f} SYN/s (periods)",
            round(parameters.detection_periods_for_rate(rate, k_bar), 2),
        ])
    print(render_table(["quantity", "value"], rows,
                       title="SYN-dog analytic bounds (paper defaults)"))
    return EXIT_OK


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .attack.ddos import DDoSCampaign
    from .experiments.campaign import simulate_campaign
    from .packet.addresses import IPv4Address

    profile = get_profile(args.site)
    campaign = DDoSCampaign.evenly_distributed(
        IPv4Address.parse("198.51.100.80"), args.aggregate, args.networks
    )
    obs = None
    if args.metrics_out or args.serve is not None:
        from .obs import enabled_instrumentation

        obs = enabled_instrumentation(memory_events=args.serve is not None)
    with _serving(obs, args.serve):
        result = simulate_campaign(
            campaign, profile, base_seed=args.seed, max_networks=args.sample,
            obs=obs, workers=args.workers,
        )
    if obs is not None:
        samples = obs.finalize(args.metrics_out)
        if args.metrics_out:
            print(f"wrote {samples} metric samples to {args.metrics_out}")
    if args.json:
        from .experiments.export import campaign_result_to_dict, save_json

        save_json(campaign_result_to_dict(result), args.json)
        print(f"wrote campaign result to {args.json}")
    f_i = campaign.per_network_rate(0)
    floor = DEFAULT_PARAMETERS.min_detectable_rate(
        profile.k_bar_target or profile.expected_k_bar()
    )
    print(f"campaign        : {args.aggregate:.0f} SYN/s over "
          f"{args.networks} {profile.name}-scale stub networks")
    print(f"per-network rate: f_i = {f_i:.2f} SYN/s "
          f"(local Eq. 8 floor ~ {floor:.2f})")
    print(f"sampled networks: {result.num_networks}")
    print(f"dogs barking    : {result.detection_fraction:.0%}")
    if result.first_alarm_delay is not None:
        print(f"first alarm     : {result.first_alarm_delay:.0f} periods "
              f"after campaign start")
        print(f"flood attributed: {result.attributable_fraction:.0%} "
              f"of the sampled volume")
        return EXIT_ALARM
    print("verdict         : the campaign hides below every sampled floor")
    return EXIT_OK


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    """The Section 4.2.3 tuning sweep as an operator command: measure
    every (a, N) cell, print the grid, and recommend the most sensitive
    setting inside the false-alarm budget."""
    from .experiments.sensitivity import recommend_parameters, sweep_parameters

    profile = get_profile(args.site)
    cells = sweep_parameters(
        profile,
        drifts=args.drifts,
        thresholds=args.thresholds,
        flood_rate=args.rate,
        num_normal_traces=args.traces,
        num_attack_trials=args.traces,
        base_seed=args.seed,
        workers=args.workers,
    )
    rows = [
        [
            cell.drift,
            cell.threshold,
            f"{cell.false_alarm_rate:.4f}",
            f"{cell.detection_probability:.0%}",
            ("-" if cell.mean_delay_periods is None
             else f"{cell.mean_delay_periods:.1f}"),
            f"{cell.f_min:.2f}",
        ]
        for cell in cells
    ]
    print(render_table(
        ["a", "N", "FA/period", "P(detect)", "delay", "f_min"],
        rows,
        title=f"sensitivity grid ({profile.name}, {args.rate:.1f} SYN/s)",
    ))
    pick = recommend_parameters(
        cells, max_false_alarm_rate=args.max_false_alarm_rate
    )
    if pick is None:
        print("recommendation  : no cell fits the false-alarm budget")
    else:
        print(f"recommendation  : a={pick.drift} N={pick.threshold} "
              f"(floor {pick.f_min:.2f} SYN/s)")
    if args.json:
        from .experiments.export import save_json, sensitivity_cells_to_dict

        save_json(
            sensitivity_cells_to_dict(cells, site=profile.name), args.json
        )
        print(f"wrote sensitivity grid to {args.json}")
    return EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    """Forensics over events JSONL: what happened, from the log alone."""
    from .obs.analyze import analyze_files, render_report

    for path in args.events:
        from pathlib import Path

        if not Path(path).exists():
            print(f"report: no such events file: {path}", file=sys.stderr)
            return EXIT_USAGE
        # Validate before analyzing: a truncated or empty log must be
        # a loud exit-2 diagnostic, not a quiet "nothing happened".
        if _load_events_strict("report", path) is None:
            return EXIT_ALARM
    report = analyze_files(
        args.events, min_alarm_periods=args.min_alarm_periods
    )
    rendered = render_report(report, fmt=args.format, profile=args.profile)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(rendered)
    return EXIT_ALARM if report.detection_count else EXIT_OK


def _load_profile_baseline(path: str) -> dict:
    """Read a per-stage ns/packet baseline: either a full
    BENCH_profile.json document (``{"stages": [...]}``) or a bare
    ``{stage: ns_per_packet}`` mapping."""
    import json
    from pathlib import Path

    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and "stages" in data:
        return {
            row["stage"]: float(row["ns_per_packet"])
            for row in data["stages"]
        }
    return {stage: float(value) for stage, value in data.items()}


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-stage cost attribution over the canonical pipeline workload."""
    from .experiments.profiling import (
        DEFAULT_PROFILE_DURATION,
        run_profile_campaign,
    )
    from .obs import enabled_instrumentation
    from .obs.profiler import (
        write_callgrind,
        write_folded,
        write_profile_json,
    )

    site = get_profile(args.site)
    obs = enabled_instrumentation(
        profiler=args.mode,
        profiler_sample_every=args.sample_every,
        events_path=args.events_out,
    )
    outcomes = run_profile_campaign(
        site,
        networks=args.networks,
        base_seed=args.seed,
        duration=(args.duration if args.duration is not None
                  else DEFAULT_PROFILE_DURATION),
        obs=obs,
        workers=args.workers,
        fastpath=args.fastpath,
    )
    document = obs.profiler.to_dict()
    obs.finalize()
    total_packets = sum(outcome["packets"] for outcome in outcomes)
    print(f"profiled         : {len(outcomes)} networks, "
          f"{total_packets} packets ({site.name}, mode {args.mode})")
    print(f"{'stage':<16} {'calls':>9} {'packets':>9} "
          f"{'ns/call':>12} {'ns/packet':>12} {'total ms':>10}")
    for row in document["stages"]:
        print(f"{row['stage']:<16} {row['calls']:>9} {row['packets']:>9} "
              f"{row['ns_per_call']:>12.1f} {row['ns_per_packet']:>12.1f} "
              f"{row['ns_total'] / 1e6:>10.3f}")
    if args.json:
        write_profile_json(document, args.json)
        print(f"profile          : JSON -> {args.json}")
    if args.flame_out:
        stacks = write_folded(document, args.flame_out)
        print(f"flamegraph       : {stacks} folded stacks -> "
              f"{args.flame_out}")
    if args.callgrind_out:
        stages = write_callgrind(document, args.callgrind_out)
        print(f"callgrind        : {stages} stages -> {args.callgrind_out}")
    if args.events_out:
        print(f"events           : JSONL -> {args.events_out}")
    if args.baseline:
        try:
            baseline = _load_profile_baseline(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"profile: bad baseline file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        regressions = []
        for row in document["stages"]:
            budget = baseline.get(row["stage"])
            if budget is None:
                continue
            allowed = budget * args.baseline_tolerance
            verdict = "ok" if row["ns_per_packet"] <= allowed else "REGRESSED"
            print(f"baseline         : {row['stage']:<16} "
                  f"{row['ns_per_packet']:.1f} vs {budget:.1f} ns/packet "
                  f"(allowed {allowed:.1f}) {verdict}")
            if verdict != "ok":
                regressions.append(row["stage"])
        if regressions:
            print(f"REGRESSION       : {', '.join(sorted(regressions))}")
            return EXIT_ALARM
    return EXIT_OK


_COMMANDS = {
    "generate": _cmd_generate,
    "campaign": _cmd_campaign,
    "attack": _cmd_attack,
    "detect": _cmd_detect,
    "observe": _cmd_observe,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "query": _cmd_query,
    "alerts": _cmd_alerts,
    "fleet": _cmd_fleet,
    "chaos": _cmd_chaos,
    "soak": _cmd_soak,
    "respond": _cmd_respond,
    "sensitivity": _cmd_sensitivity,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "theory": _cmd_theory,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
