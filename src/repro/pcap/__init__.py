"""From-scratch classic libpcap (tcpdump) file format support.

Replaces scapy/dpkt for trace persistence: the writer emits genuine
pcap bytes readable by external tooling and the reader streams them
back with O(1) memory.
"""

from .format import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    MAGIC_MICROS,
    MAGIC_NANOS,
    GlobalHeader,
    PcapFormatError,
    PcapTruncatedError,
    RecordHeader,
)
from .reader import PcapReader, iter_pcap, pcap_bytes_to_packets, read_pcap
from .writer import PcapWriter, packets_to_pcap_bytes, write_pcap

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW",
    "MAGIC_MICROS",
    "MAGIC_NANOS",
    "GlobalHeader",
    "PcapFormatError",
    "PcapTruncatedError",
    "RecordHeader",
    "PcapReader",
    "iter_pcap",
    "pcap_bytes_to_packets",
    "read_pcap",
    "PcapWriter",
    "packets_to_pcap_bytes",
    "write_pcap",
]
