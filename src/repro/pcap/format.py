"""Classic libpcap file-format constants and header structures.

Implemented from the de-facto specification (the format every tcpdump
since 1988 writes): a 24-byte global header followed by
(16-byte record header, captured bytes) pairs.  Both byte orders and
both timestamp resolutions (microsecond magic 0xa1b2c3d4, nanosecond
magic 0xa1b23c4d) are supported, since the University of Auckland traces
the paper used were distributed in a nanosecond-timestamped format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "MAGIC_MICROS",
    "MAGIC_NANOS",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW",
    "GlobalHeader",
    "RecordHeader",
    "PcapFormatError",
    "PcapTruncatedError",
]

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101  # raw IP, no link-layer header

_GLOBAL = "IHHiIII"  # magic, major, minor, thiszone, sigfigs, snaplen, network
_RECORD = "IIII"     # ts_sec, ts_frac, incl_len, orig_len

GLOBAL_HEADER_LENGTH = struct.calcsize("<" + _GLOBAL)
RECORD_HEADER_LENGTH = struct.calcsize("<" + _RECORD)


class PcapFormatError(ValueError):
    """Raised when a pcap file is malformed or unsupported."""


class PcapTruncatedError(PcapFormatError):
    """A pcap stream ended mid-record.

    Carries forensic context so the caller can report exactly how much
    of the capture was salvaged before the cut:

    ``byte_offset``
        Stream offset (bytes from the start of the file) at which the
        incomplete record begins.
    ``records_read``
        How many complete records were successfully read before it.
    """

    def __init__(self, message: str, byte_offset: int, records_read: int) -> None:
        super().__init__(
            f"{message} (offset {byte_offset}, "
            f"after {records_read} complete record(s))"
        )
        self.byte_offset = byte_offset
        self.records_read = records_read


@dataclass(frozen=True)
class GlobalHeader:
    """The 24-byte pcap global header."""

    byte_order: str          # '<' or '>'
    nanosecond: bool
    version_major: int = 2
    version_minor: int = 4
    thiszone: int = 0
    sigfigs: int = 0
    snaplen: int = 65535
    network: int = LINKTYPE_ETHERNET

    @property
    def timestamp_divisor(self) -> float:
        return 1e9 if self.nanosecond else 1e6

    def encode(self) -> bytes:
        magic = MAGIC_NANOS if self.nanosecond else MAGIC_MICROS
        return struct.pack(
            self.byte_order + _GLOBAL,
            magic,
            self.version_major,
            self.version_minor,
            self.thiszone,
            self.sigfigs,
            self.snaplen,
            self.network,
        )

    @classmethod
    def decode(cls, raw: bytes) -> "GlobalHeader":
        if len(raw) < GLOBAL_HEADER_LENGTH:
            raise PcapFormatError(
                f"pcap global header truncated: {len(raw)} bytes"
            )
        magic_le = struct.unpack_from("<I", raw)[0]
        magic_be = struct.unpack_from(">I", raw)[0]
        if magic_le in (MAGIC_MICROS, MAGIC_NANOS):
            byte_order, magic = "<", magic_le
        elif magic_be in (MAGIC_MICROS, MAGIC_NANOS):
            byte_order, magic = ">", magic_be
        else:
            raise PcapFormatError(f"bad pcap magic: {magic_le:#010x}")
        (
            _magic,
            version_major,
            version_minor,
            thiszone,
            sigfigs,
            snaplen,
            network,
        ) = struct.unpack_from(byte_order + _GLOBAL, raw)
        return cls(
            byte_order=byte_order,
            nanosecond=magic == MAGIC_NANOS,
            version_major=version_major,
            version_minor=version_minor,
            thiszone=thiszone,
            sigfigs=sigfigs,
            snaplen=snaplen,
            network=network,
        )


@dataclass(frozen=True)
class RecordHeader:
    """The 16-byte per-packet record header."""

    ts_sec: int
    ts_frac: int   # micro- or nanoseconds depending on the global magic
    incl_len: int  # bytes actually captured
    orig_len: int  # bytes on the wire

    def encode(self, byte_order: str) -> bytes:
        return struct.pack(
            byte_order + _RECORD,
            self.ts_sec,
            self.ts_frac,
            self.incl_len,
            self.orig_len,
        )

    @classmethod
    def decode(cls, raw: bytes, byte_order: str) -> "RecordHeader":
        if len(raw) < RECORD_HEADER_LENGTH:
            raise PcapFormatError(
                f"pcap record header truncated: {len(raw)} bytes"
            )
        ts_sec, ts_frac, incl_len, orig_len = struct.unpack_from(
            byte_order + _RECORD, raw
        )
        return cls(ts_sec=ts_sec, ts_frac=ts_frac, incl_len=incl_len, orig_len=orig_len)

    def timestamp(self, nanosecond: bool) -> float:
        divisor = 1e9 if nanosecond else 1e6
        return self.ts_sec + self.ts_frac / divisor

    @classmethod
    def from_timestamp(
        cls, timestamp: float, incl_len: int, orig_len: int, nanosecond: bool
    ) -> "RecordHeader":
        seconds = int(timestamp)
        fraction = timestamp - seconds
        scale = 1e9 if nanosecond else 1e6
        frac_units = int(round(fraction * scale))
        # Guard against float rounding pushing the fraction to a full second.
        if frac_units >= scale:
            seconds += 1
            frac_units = 0
        return cls(
            ts_sec=seconds,
            ts_frac=frac_units,
            incl_len=incl_len,
            orig_len=orig_len,
        )
