"""pcap writer: serialize :class:`~repro.packet.packet.Packet` streams to
classic libpcap files.

Supports Ethernet-framed capture (LINKTYPE_ETHERNET, what the Harvard
10 Mbps Ethernet trace would look like) and raw-IP capture
(LINKTYPE_RAW, matching uni-directional router taps like the UNC OC-12
monitor).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, Iterable, Optional, Union

from ..packet.packet import Packet
from .format import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    GlobalHeader,
    RecordHeader,
)

__all__ = ["PcapWriter", "write_pcap", "packets_to_pcap_bytes"]


class PcapWriter:
    """Streaming pcap writer.

    Usage::

        with PcapWriter.open("trace.pcap") as writer:
            for packet in packets:
                writer.write_packet(packet)
    """

    def __init__(
        self,
        stream: BinaryIO,
        linktype: int = LINKTYPE_ETHERNET,
        nanosecond: bool = False,
        snaplen: int = 65535,
        byte_order: str = "<",
    ) -> None:
        if linktype not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
            raise ValueError(f"unsupported linktype: {linktype}")
        if byte_order not in ("<", ">"):
            raise ValueError(f"byte order must be '<' or '>', got {byte_order!r}")
        self._stream = stream
        self._owns_stream = False
        self.header = GlobalHeader(
            byte_order=byte_order,
            nanosecond=nanosecond,
            snaplen=snaplen,
            network=linktype,
        )
        self._stream.write(self.header.encode())
        self.packets_written = 0

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        linktype: int = LINKTYPE_ETHERNET,
        nanosecond: bool = False,
        snaplen: int = 65535,
        byte_order: str = "<",
    ) -> "PcapWriter":
        stream = Path(path).open("wb")
        writer = cls(
            stream,
            linktype=linktype,
            nanosecond=nanosecond,
            snaplen=snaplen,
            byte_order=byte_order,
        )
        writer._owns_stream = True
        return writer

    def write_packet(self, packet: Packet) -> None:
        """Serialize one packet at its own timestamp."""
        if self.header.network == LINKTYPE_ETHERNET:
            wire = packet.encode_frame()
        else:
            wire = packet.encode_ip()
        self.write_raw(packet.timestamp, wire)

    def write_raw(self, timestamp: float, wire: bytes) -> None:
        """Write pre-serialized wire bytes, honouring the snap length."""
        if timestamp < 0:
            raise ValueError(f"negative pcap timestamp: {timestamp}")
        captured = wire[: self.header.snaplen]
        record = RecordHeader.from_timestamp(
            timestamp,
            incl_len=len(captured),
            orig_len=len(wire),
            nanosecond=self.header.nanosecond,
        )
        self._stream.write(record.encode(self.header.byte_order))
        self._stream.write(captured)
        self.packets_written += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[Packet],
    linktype: int = LINKTYPE_ETHERNET,
    nanosecond: bool = False,
) -> int:
    """Write *packets* to *path*; returns the number written."""
    with PcapWriter.open(path, linktype=linktype, nanosecond=nanosecond) as writer:
        for packet in packets:
            writer.write_packet(packet)
        return writer.packets_written


def packets_to_pcap_bytes(
    packets: Iterable[Packet],
    linktype: int = LINKTYPE_ETHERNET,
    nanosecond: bool = False,
) -> bytes:
    """Serialize *packets* to an in-memory pcap image."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer, linktype=linktype, nanosecond=nanosecond)
    for packet in packets:
        writer.write_packet(packet)
    return buffer.getvalue()
