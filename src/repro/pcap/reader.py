"""pcap reader: parse classic libpcap files back into
:class:`~repro.packet.packet.Packet` streams.

The reader is a generator — traces the size of the paper's (three hours
of an Internet access link) never need to be resident in memory, which
mirrors how the real SYN-dog processes an unbounded packet stream with
O(1) state.

Robustness contract: a malformed *global header* raises
:class:`PcapFormatError` immediately (nothing sensible follows it); a
stream ending *mid-record* raises :class:`PcapTruncatedError` carrying
the byte offset and the number of complete records salvaged — or, in
tolerant mode (``strict=False``, what the trace-tooling convenience
functions use), stops cleanly while stashing the error on
:attr:`PcapReader.truncation` so the loss is still visible.  Records
that fail to *decode* are counted in :attr:`PcapReader.skipped_records`
rather than silently dropped.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Any, BinaryIO, Iterator, List, Optional, Tuple, Union

from ..packet.packet import Packet
from .format import (
    GLOBAL_HEADER_LENGTH,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    RECORD_HEADER_LENGTH,
    GlobalHeader,
    PcapFormatError,
    PcapTruncatedError,
    RecordHeader,
)

__all__ = ["PcapReader", "read_pcap", "iter_pcap", "pcap_bytes_to_packets"]


class PcapReader:
    """Streaming pcap reader.

    Iterating yields ``(timestamp, wire_bytes)`` tuples via
    :meth:`iter_records`, or decoded packets via :meth:`iter_packets`.
    Running totals are kept on the reader itself so callers can audit
    what a pass over the file actually saw:

    ``records_read``
        Complete records returned so far.
    ``skipped_records``
        Records that failed to decode and were skipped
        (``iter_packets(skip_undecodable=True)``).
    ``truncation``
        The :class:`PcapTruncatedError` encountered in tolerant mode,
        or None when the stream ended cleanly (so far).
    """

    def __init__(self, stream: BinaryIO, obs: Optional[Any] = None) -> None:
        self._stream = stream
        self._owns_stream = False
        header_bytes = stream.read(GLOBAL_HEADER_LENGTH)
        self.header = GlobalHeader.decode(header_bytes)
        if self.header.network not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
            raise PcapFormatError(
                f"unsupported linktype: {self.header.network}"
            )
        self._offset = len(header_bytes)
        self.records_read = 0
        self.skipped_records = 0
        self.truncation: Optional[PcapTruncatedError] = None
        # Profiler stage handle, bound once (repro.obs hot-path
        # contract): None unless an Instrumentation bundle with a live
        # profiler is passed explicitly — pcap parsing has no implicit
        # process-wide obs lookup, matching the reader's stateless feel.
        self._prof_parse = (
            obs.profiler.stage("pcap.parse")
            if obs is not None and obs.profiler.enabled
            else None
        )

    @classmethod
    def open(
        cls, path: Union[str, Path], obs: Optional[Any] = None
    ) -> "PcapReader":
        stream = Path(path).open("rb")
        try:
            reader = cls(stream, obs=obs)
        except Exception:
            stream.close()
            raise
        reader._owns_stream = True
        return reader

    def iter_records(self, strict: bool = True) -> Iterator[Tuple[float, bytes]]:
        """Yield (timestamp_seconds, captured_bytes) for every record.

        With ``strict=True`` (default) a stream that ends mid-record
        raises :class:`PcapTruncatedError`; with ``strict=False`` the
        iterator stops cleanly at the last complete record and the
        error is kept on :attr:`truncation` for inspection.
        """
        prof = self._prof_parse
        while True:
            # begin() is None on untimed iterations (and always in
            # cost-model mode); tokens on EOF/truncation paths are
            # simply dropped — only complete records are attributed.
            token = None if prof is None else prof.begin()
            record_offset = self._offset
            header_bytes = self._stream.read(RECORD_HEADER_LENGTH)
            if not header_bytes:
                return  # clean EOF at a record boundary
            self._offset += len(header_bytes)
            if len(header_bytes) < RECORD_HEADER_LENGTH:
                error = PcapTruncatedError(
                    f"record header cut short at {len(header_bytes)} bytes",
                    byte_offset=record_offset,
                    records_read=self.records_read,
                )
                if strict:
                    raise error
                self.truncation = error
                return
            record = RecordHeader.decode(header_bytes, self.header.byte_order)
            if record.incl_len > self.header.snaplen + 65536:
                raise PcapFormatError(
                    f"implausible capture length {record.incl_len}"
                )
            captured = self._stream.read(record.incl_len)
            self._offset += len(captured)
            if len(captured) < record.incl_len:
                error = PcapTruncatedError(
                    f"record body cut short: {len(captured)} of "
                    f"{record.incl_len} captured bytes",
                    byte_offset=record_offset,
                    records_read=self.records_read,
                )
                if strict:
                    raise error
                self.truncation = error
                return
            self.records_read += 1
            if prof is not None:
                prof.end(token, packets=1, nbytes=len(captured))
            yield record.timestamp(self.header.nanosecond), captured

    def iter_packets(
        self, skip_undecodable: bool = True, strict: bool = True
    ) -> Iterator[Packet]:
        """Yield decoded packets.

        Records that fail to decode (non-IPv4 frames, mangled headers)
        are skipped by default — and *counted* in
        :attr:`skipped_records`, so decode loss is never silent — or
        propagated with ``skip_undecodable=False``.  ``strict`` has
        :meth:`iter_records` truncation semantics.
        """
        ethernet = self.header.network == LINKTYPE_ETHERNET
        for timestamp, wire in self.iter_records(strict=strict):
            try:
                if ethernet:
                    yield Packet.decode_frame(wire, timestamp=timestamp)
                else:
                    yield Packet.decode_ip(wire, timestamp=timestamp)
            except ValueError:
                if not skip_undecodable:
                    raise
                self.skipped_records += 1

    def __iter__(self) -> Iterator[Packet]:
        return self.iter_packets()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read an entire pcap file into a list of packets (tolerant of a
    truncated tail, as trace tooling conventionally is)."""
    with PcapReader.open(path) as reader:
        return list(reader.iter_packets(strict=False))


def iter_pcap(path: Union[str, Path]) -> Iterator[Packet]:
    """Stream packets from a pcap file (the file is closed at
    exhaustion; a truncated tail stops the stream cleanly)."""
    with PcapReader.open(path) as reader:
        yield from reader.iter_packets(strict=False)


def pcap_bytes_to_packets(image: bytes) -> List[Packet]:
    """Decode an in-memory pcap image into packets (tolerant mode)."""
    reader = PcapReader(io.BytesIO(image))
    return list(reader.iter_packets(strict=False))
