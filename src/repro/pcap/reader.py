"""pcap reader: parse classic libpcap files back into
:class:`~repro.packet.packet.Packet` streams.

The reader is a generator — traces the size of the paper's (three hours
of an Internet access link) never need to be resident in memory, which
mirrors how the real SYN-dog processes an unbounded packet stream with
O(1) state.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, Iterator, List, Tuple, Union

from ..packet.packet import Packet
from .format import (
    GLOBAL_HEADER_LENGTH,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    RECORD_HEADER_LENGTH,
    GlobalHeader,
    PcapFormatError,
    RecordHeader,
)

__all__ = ["PcapReader", "read_pcap", "iter_pcap", "pcap_bytes_to_packets"]


class PcapReader:
    """Streaming pcap reader.

    Iterating yields ``(timestamp, wire_bytes)`` tuples via
    :meth:`iter_records`, or decoded packets via :meth:`iter_packets`.
    Malformed *records* (truncated tail) terminate iteration cleanly;
    a malformed *global header* raises :class:`PcapFormatError`
    immediately, because nothing sensible can be read after it.
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._owns_stream = False
        header_bytes = stream.read(GLOBAL_HEADER_LENGTH)
        self.header = GlobalHeader.decode(header_bytes)
        if self.header.network not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
            raise PcapFormatError(
                f"unsupported linktype: {self.header.network}"
            )

    @classmethod
    def open(cls, path: Union[str, Path]) -> "PcapReader":
        stream = Path(path).open("rb")
        try:
            reader = cls(stream)
        except Exception:
            stream.close()
            raise
        reader._owns_stream = True
        return reader

    def iter_records(self) -> Iterator[Tuple[float, bytes]]:
        """Yield (timestamp_seconds, captured_bytes) for every record."""
        while True:
            header_bytes = self._stream.read(RECORD_HEADER_LENGTH)
            if not header_bytes:
                return  # clean EOF
            if len(header_bytes) < RECORD_HEADER_LENGTH:
                return  # truncated tail: stop without error
            record = RecordHeader.decode(header_bytes, self.header.byte_order)
            if record.incl_len > self.header.snaplen + 65536:
                raise PcapFormatError(
                    f"implausible capture length {record.incl_len}"
                )
            captured = self._stream.read(record.incl_len)
            if len(captured) < record.incl_len:
                return  # truncated tail
            yield record.timestamp(self.header.nanosecond), captured

    def iter_packets(self, skip_undecodable: bool = True) -> Iterator[Packet]:
        """Yield decoded packets.

        Records that fail to decode (non-IPv4 frames, mangled headers)
        are skipped by default, matching the tolerant behaviour of trace
        tooling; pass ``skip_undecodable=False`` to propagate the error.
        """
        ethernet = self.header.network == LINKTYPE_ETHERNET
        for timestamp, wire in self.iter_records():
            try:
                if ethernet:
                    yield Packet.decode_frame(wire, timestamp=timestamp)
                else:
                    yield Packet.decode_ip(wire, timestamp=timestamp)
            except ValueError:
                if not skip_undecodable:
                    raise

    def __iter__(self) -> Iterator[Packet]:
        return self.iter_packets()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read an entire pcap file into a list of packets."""
    with PcapReader.open(path) as reader:
        return list(reader.iter_packets())


def iter_pcap(path: Union[str, Path]) -> Iterator[Packet]:
    """Stream packets from a pcap file (the file is closed at exhaustion)."""
    with PcapReader.open(path) as reader:
        yield from reader.iter_packets()


def pcap_bytes_to_packets(image: bytes) -> List[Packet]:
    """Decode an in-memory pcap image into packets."""
    reader = PcapReader(io.BytesIO(image))
    return list(reader.iter_packets())
