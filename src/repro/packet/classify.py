"""The paper's packet-classification algorithm (Section 2).

SYN-dog is "a by-product of the router infrastructure that
differentiates TCP control packets from data packets" [31].  The
classifier runs per packet at the leaf router, in three steps that the
paper spells out:

1. check whether the IP packet contains a TCP header — i.e. its
   protocol field is 6 *and* its fragmentation offset is zero (only the
   first fragment carries the transport header);
2. compute the offset of the TCP flag bits inside the IP packet
   (IHL×4 + 13 bytes);
3. read the six flag bits and decide the segment type.

Two entry points are provided: :func:`classify_packet` for decoded
:class:`~repro.packet.packet.Packet` objects (the fast path used by the
simulator) and :func:`classify_ip_bytes`, which performs the literal
three-step byte-offset procedure on raw wire bytes without decoding the
rest of the packet — mirroring how a line-rate router classifier
actually touches only a handful of bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable

from .packet import Packet
from .tcp import TCP_PROTOCOL_NUMBER, SegmentKind, TCPFlags

__all__ = [
    "PacketClass",
    "classify_packet",
    "classify_ip_bytes",
    "ClassifierStats",
    "PacketClassifier",
]


class PacketClass(enum.Enum):
    """Classifier output alphabet."""

    SYN = "syn"              # TCP, SYN=1, ACK=0
    SYN_ACK = "syn-ack"      # TCP, SYN=1, ACK=1
    RST = "rst"              # TCP, RST=1
    FIN = "fin"              # TCP, FIN=1
    TCP_OTHER = "tcp-other"  # TCP data / pure ACK
    NON_TCP = "non-tcp"      # not TCP, or a non-first fragment


_KIND_TO_CLASS: Dict[SegmentKind, PacketClass] = {
    SegmentKind.SYN: PacketClass.SYN,
    SegmentKind.SYN_ACK: PacketClass.SYN_ACK,
    SegmentKind.RST: PacketClass.RST,
    SegmentKind.FIN: PacketClass.FIN,
    SegmentKind.ACK: PacketClass.TCP_OTHER,
    SegmentKind.OTHER: PacketClass.TCP_OTHER,
}


def classify_packet(packet: Packet) -> PacketClass:
    """Classify a decoded packet.

    Semantics match :func:`classify_ip_bytes` exactly; the unit tests
    assert the two agree on round-tripped packets.
    """
    segment = packet.tcp
    if segment is None:
        return PacketClass.NON_TCP
    return _KIND_TO_CLASS[segment.kind]


def classify_ip_bytes(raw: bytes) -> PacketClass:
    """The literal three-step classification over raw IP bytes.

    Touches only: the version/IHL byte, the protocol byte, the
    flags/fragment-offset halfword, and the single TCP flag byte — the
    minimal memory accesses a hardware classifier would make.
    """
    # Step 1a: must be IPv4 with an intact fixed header.
    if len(raw) < 20 or raw[0] >> 4 != 4:
        return PacketClass.NON_TCP
    ihl_bytes = (raw[0] & 0x0F) * 4
    if ihl_bytes < 20:
        return PacketClass.NON_TCP
    # Step 1b: protocol must be TCP and fragment offset must be zero.
    if raw[9] != TCP_PROTOCOL_NUMBER:
        return PacketClass.NON_TCP
    fragment_offset = ((raw[6] & 0x1F) << 8) | raw[7]
    if fragment_offset != 0:
        return PacketClass.NON_TCP
    # Step 2: the TCP flag byte sits 13 bytes into the TCP header.
    flags_offset = ihl_bytes + 13
    if flags_offset >= len(raw):
        return PacketClass.NON_TCP
    # Step 3: read the six flag bits and decide.
    flag_bits = raw[flags_offset] & 0x3F
    if flag_bits & TCPFlags.RST:
        return PacketClass.RST
    if flag_bits & TCPFlags.SYN:
        if flag_bits & TCPFlags.ACK:
            return PacketClass.SYN_ACK
        return PacketClass.SYN
    if flag_bits & TCPFlags.FIN:
        return PacketClass.FIN
    return PacketClass.TCP_OTHER


@dataclass
class ClassifierStats:
    """Running per-class packet counts."""

    counts: Dict[PacketClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in PacketClass}
    )

    def record(self, packet_class: PacketClass) -> None:
        self.counts[packet_class] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __getitem__(self, packet_class: PacketClass) -> int:
        return self.counts[packet_class]

    def reset(self) -> None:
        for packet_class in self.counts:
            self.counts[packet_class] = 0


class PacketClassifier:
    """A stateful classifier front-end keeping aggregate statistics.

    This is the object a router interface owns; it is deliberately
    stateless *per flow* — only six integers of aggregate state — which
    is what makes SYN-dog itself immune to flooding (Section 1).
    """

    def __init__(self) -> None:
        self.stats = ClassifierStats()

    def classify(self, packet: Packet) -> PacketClass:
        packet_class = classify_packet(packet)
        self.stats.record(packet_class)
        return packet_class

    def classify_many(self, packets: Iterable[Packet]) -> ClassifierStats:
        for packet in packets:
            self.classify(packet)
        return self.stats
