"""The paper's packet-classification algorithm (Section 2).

SYN-dog is "a by-product of the router infrastructure that
differentiates TCP control packets from data packets" [31].  The
classifier runs per packet at the leaf router, in three steps that the
paper spells out:

1. check whether the IP packet contains a TCP header — i.e. its
   protocol field is 6 *and* its fragmentation offset is zero (only the
   first fragment carries the transport header);
2. compute the offset of the TCP flag bits inside the IP packet
   (IHL×4 + 13 bytes);
3. read the six flag bits and decide the segment type.

Two entry points are provided: :func:`classify_packet` for decoded
:class:`~repro.packet.packet.Packet` objects (the fast path used by the
simulator) and :func:`classify_ip_bytes`, which performs the literal
three-step byte-offset procedure on raw wire bytes without decoding the
rest of the packet — mirroring how a line-rate router classifier
actually touches only a handful of bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..obs.runtime import Instrumentation, resolve_instrumentation
from .packet import Packet
from .tcp import TCP_PROTOCOL_NUMBER, SegmentKind, TCPFlags

__all__ = [
    "PacketClass",
    "RejectionStep",
    "QUARANTINE_STEPS",
    "classify_packet",
    "classify_ip_bytes",
    "explain_packet",
    "explain_ip_bytes",
    "ClassifierStats",
    "PacketClassifier",
]


class PacketClass(enum.Enum):
    """Classifier output alphabet."""

    SYN = "syn"              # TCP, SYN=1, ACK=0
    SYN_ACK = "syn-ack"      # TCP, SYN=1, ACK=1
    RST = "rst"              # TCP, RST=1
    FIN = "fin"              # TCP, FIN=1
    TCP_OTHER = "tcp-other"  # TCP data / pure ACK
    NON_TCP = "non-tcp"      # not TCP, or a non-first fragment


class RejectionStep(enum.Enum):
    """Which of the three classification steps rejected a packet.

    The values name the *check*, not the class: step 1a is the IPv4
    sanity check, step 1b the protocol/fragment check, step 2 the flag
    offset computation.  A packet that survives all three always gets a
    TCP class from step 3, so step 3 never appears here.
    """

    NOT_IPV4 = "not-ipv4"                # step 1a: version ≠ 4 / short header
    BAD_IHL = "bad-ihl"                  # step 1a: IHL below 20 bytes
    NON_TCP_PROTOCOL = "non-tcp-protocol"  # step 1b: protocol ≠ 6
    FRAGMENT = "fragment"                # step 1b: fragment offset ≠ 0
    TRUNCATED_FLAGS = "truncated-flags"  # step 2: flag byte beyond buffer


#: The rejection steps that indicate a *malformed* frame (the quarantine
#: path) as opposed to well-formed traffic that simply is not first-
#: fragment TCP.  A corrupted or truncated header must land here —
#: counted, skipped, never raised — because on a flooded link garbage
#: frames are the operating regime, not the exception.
QUARANTINE_STEPS = (
    RejectionStep.NOT_IPV4,
    RejectionStep.BAD_IHL,
    RejectionStep.TRUNCATED_FLAGS,
)


_KIND_TO_CLASS: Dict[SegmentKind, PacketClass] = {
    SegmentKind.SYN: PacketClass.SYN,
    SegmentKind.SYN_ACK: PacketClass.SYN_ACK,
    SegmentKind.RST: PacketClass.RST,
    SegmentKind.FIN: PacketClass.FIN,
    SegmentKind.ACK: PacketClass.TCP_OTHER,
    SegmentKind.OTHER: PacketClass.TCP_OTHER,
}


def classify_packet(packet: Packet) -> PacketClass:
    """Classify a decoded packet.

    Semantics match :func:`classify_ip_bytes` exactly; the unit tests
    assert the two agree on round-tripped packets.
    """
    segment = packet.tcp
    if segment is None:
        return PacketClass.NON_TCP
    return _KIND_TO_CLASS[segment.kind]


def explain_packet(
    packet: Packet,
) -> Tuple[PacketClass, Optional[RejectionStep]]:
    """Classify a decoded packet *and* name the step that rejected it.

    Accepted TCP packets come back with ``None`` as the step.  The
    class always equals :func:`classify_packet`'s answer; the step is
    the per-step statistic the stateful :class:`PacketClassifier`
    records and exports.
    """
    if packet.ip.protocol != TCP_PROTOCOL_NUMBER:
        return PacketClass.NON_TCP, RejectionStep.NON_TCP_PROTOCOL
    if not packet.ip.is_first_fragment:
        return PacketClass.NON_TCP, RejectionStep.FRAGMENT
    segment = packet.tcp
    if segment is None:
        # Protocol says TCP but the payload would not decode — the raw
        # bytes are too short to carry the flag byte (step 2's check).
        return PacketClass.NON_TCP, RejectionStep.TRUNCATED_FLAGS
    return _KIND_TO_CLASS[segment.kind], None


def classify_ip_bytes(raw: bytes) -> PacketClass:
    """The literal three-step classification over raw IP bytes.

    Touches only: the version/IHL byte, the protocol byte, the
    flags/fragment-offset halfword, and the single TCP flag byte — the
    minimal memory accesses a hardware classifier would make.
    """
    return explain_ip_bytes(raw)[0]


def explain_ip_bytes(
    raw: bytes,
) -> Tuple[PacketClass, Optional[RejectionStep]]:
    """The byte-offset procedure, reporting which step rejected."""
    # Step 1a: must be IPv4 with an intact fixed header.
    if len(raw) < 20 or raw[0] >> 4 != 4:
        return PacketClass.NON_TCP, RejectionStep.NOT_IPV4
    ihl_bytes = (raw[0] & 0x0F) * 4
    if ihl_bytes < 20:
        return PacketClass.NON_TCP, RejectionStep.BAD_IHL
    # Step 1b: protocol must be TCP and fragment offset must be zero.
    if raw[9] != TCP_PROTOCOL_NUMBER:
        return PacketClass.NON_TCP, RejectionStep.NON_TCP_PROTOCOL
    fragment_offset = ((raw[6] & 0x1F) << 8) | raw[7]
    if fragment_offset != 0:
        return PacketClass.NON_TCP, RejectionStep.FRAGMENT
    # Step 2: the TCP flag byte sits 13 bytes into the TCP header.
    flags_offset = ihl_bytes + 13
    if flags_offset >= len(raw):
        return PacketClass.NON_TCP, RejectionStep.TRUNCATED_FLAGS
    # Step 3: read the six flag bits and decide.
    flag_bits = raw[flags_offset] & 0x3F
    if flag_bits & TCPFlags.RST:
        return PacketClass.RST, None
    if flag_bits & TCPFlags.SYN:
        if flag_bits & TCPFlags.ACK:
            return PacketClass.SYN_ACK, None
        return PacketClass.SYN, None
    if flag_bits & TCPFlags.FIN:
        return PacketClass.FIN, None
    return PacketClass.TCP_OTHER, None


@dataclass
class ClassifierStats:
    """Running per-class packet counts plus per-step rejection counts."""

    counts: Dict[PacketClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in PacketClass}
    )
    rejections: Dict[RejectionStep, int] = field(
        default_factory=lambda: {step: 0 for step in RejectionStep}
    )

    def record(self, packet_class: PacketClass) -> None:
        self.counts[packet_class] += 1

    def record_rejection(self, step: RejectionStep) -> None:
        self.rejections[step] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def accepted(self) -> int:
        """Packets that got a TCP class (survived all three steps)."""
        return self.total - self.counts[PacketClass.NON_TCP]

    @property
    def rejected(self) -> int:
        return sum(self.rejections.values())

    @property
    def quarantined(self) -> int:
        """Malformed frames counted-and-skipped (the quarantine path):
        not-IPv4 / bad-IHL / truncated-flags rejections, as opposed to
        healthy non-TCP traffic."""
        return sum(self.rejections[step] for step in QUARANTINE_STEPS)

    def __getitem__(self, packet_class: PacketClass) -> int:
        return self.counts[packet_class]

    def rejected_by(self, step: RejectionStep) -> int:
        return self.rejections[step]

    def reset(self) -> None:
        for packet_class in self.counts:
            self.counts[packet_class] = 0
        for step in self.rejections:
            self.rejections[step] = 0


class PacketClassifier:
    """A stateful classifier front-end keeping aggregate statistics.

    This is the object a router interface owns; it is deliberately
    stateless *per flow* — aggregate integers only — which is what
    makes SYN-dog itself immune to flooding (Section 1).  Besides the
    per-class totals it tracks *which step* rejected each non-TCP
    packet, and (when instrumentation is enabled) exports both as the
    ``classifier_packets_total{class=...}`` and
    ``classifier_rejections_total{step=...}`` counter families.
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self.stats = ClassifierStats()
        obs = resolve_instrumentation(obs)
        if obs.registry.enabled:
            by_class = obs.registry.counter(
                "classifier_packets_total",
                "Packets classified, by resulting class",
                ("class",),
            )
            self._m_class = {
                cls: by_class.labels(cls.value) for cls in PacketClass
            }
            by_step = obs.registry.counter(
                "classifier_rejections_total",
                "Packets rejected before flag decode, by step",
                ("step",),
            )
            self._m_step = {
                step: by_step.labels(step.value) for step in RejectionStep
            }
        else:
            self._m_class = None
            self._m_step = None

    def classify(self, packet: Packet) -> PacketClass:
        packet_class, step = explain_packet(packet)
        self.stats.record(packet_class)
        if step is not None:
            self.stats.record_rejection(step)
        if self._m_class is not None:
            self._m_class[packet_class].inc()
            if step is not None:
                self._m_step[step].inc()
        return packet_class

    def classify_bytes(self, raw: bytes) -> PacketClass:
        """The byte-offset path with the same statistics bookkeeping."""
        packet_class, step = explain_ip_bytes(raw)
        self.stats.record(packet_class)
        if step is not None:
            self.stats.record_rejection(step)
        if self._m_class is not None:
            self._m_class[packet_class].inc()
            if step is not None:
                self._m_step[step].inc()
        return packet_class

    @property
    def quarantined(self) -> int:
        """Malformed frames this classifier counted-and-skipped."""
        return self.stats.quarantined

    def classify_many(self, packets: Iterable[Packet]) -> ClassifierStats:
        for packet in packets:
            self.classify(packet)
        return self.stats
