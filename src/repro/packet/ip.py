"""IPv4 header model and byte-accurate codec.

Two header fields matter to the paper's classifier (Section 2):

* ``protocol`` — must be 6 (TCP) for the packet to be considered at all;
* ``fragment offset`` — must be zero, because only the first fragment
  carries the TCP header whose flag bits the sniffer reads.

The codec writes a valid RFC 1071 header checksum so encoded packets are
genuine wire bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Union

from .addresses import IPv4Address
from .checksum import internet_checksum

__all__ = ["IPv4Header", "IPv4Packet", "IP_FLAG_DF", "IP_FLAG_MF"]

IP_FLAG_DF = 0x2  #: Don't Fragment
IP_FLAG_MF = 0x1  #: More Fragments

_HEADER = struct.Struct("!BBHHHBBH4s4s")


def _coerce_ip(value: Union[IPv4Address, str, int]) -> IPv4Address:
    if isinstance(value, IPv4Address):
        return value
    if isinstance(value, str):
        return IPv4Address.parse(value)
    return IPv4Address(int(value))


@dataclass(frozen=True)
class IPv4Header:
    """An immutable IPv4 header (options unsupported: IHL is fixed at 5,
    which matches essentially all TCP traffic on real links)."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int = 6
    ttl: int = 64
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0
    tos: int = 0
    total_length: int = 20

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", _coerce_ip(self.src))
        object.__setattr__(self, "dst", _coerce_ip(self.dst))
        for name, value, limit in (
            ("protocol", self.protocol, 0xFF),
            ("ttl", self.ttl, 0xFF),
            ("identification", self.identification, 0xFFFF),
            ("flags", self.flags, 0x7),
            ("fragment_offset", self.fragment_offset, 0x1FFF),
            ("tos", self.tos, 0xFF),
            ("total_length", self.total_length, 0xFFFF),
        ):
            if not 0 <= value <= limit:
                raise ValueError(f"{name} out of range: {value}")
        if self.total_length < 20:
            raise ValueError(f"total_length below header size: {self.total_length}")

    HEADER_LENGTH = 20

    @property
    def is_first_fragment(self) -> bool:
        """True when fragment offset is zero — the only fragment whose
        payload begins with the transport header."""
        return self.fragment_offset == 0

    @property
    def is_fragmented(self) -> bool:
        return self.fragment_offset != 0 or bool(self.flags & IP_FLAG_MF)

    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        flags_fragment = (self.flags << 13) | self.fragment_offset
        header = _HEADER.pack(
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_fragment,
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        return header[:10] + checksum.to_bytes(2, "big") + header[12:]

    @classmethod
    def decode(cls, raw: bytes) -> "IPv4Header":
        if len(raw) < cls.HEADER_LENGTH:
            raise ValueError(f"IPv4 header truncated: {len(raw)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _checksum,
            src_raw,
            dst_raw,
        ) = _HEADER.unpack_from(raw)
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        ihl = version_ihl & 0xF
        if ihl != 5:
            raise ValueError(f"IPv4 options unsupported (IHL={ihl})")
        return cls(
            src=IPv4Address.from_bytes(src_raw),
            dst=IPv4Address.from_bytes(dst_raw),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            flags=flags_fragment >> 13,
            fragment_offset=flags_fragment & 0x1FFF,
            tos=tos,
            total_length=total_length,
        )

    def decrement_ttl(self) -> "IPv4Header":
        """Return a copy with TTL reduced by one (router forwarding)."""
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 header plus raw payload bytes."""

    header: IPv4Header
    payload: bytes = b""

    def encode(self) -> bytes:
        total_length = IPv4Header.HEADER_LENGTH + len(self.payload)
        header = replace(self.header, total_length=total_length)
        return header.encode() + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "IPv4Packet":
        header = IPv4Header.decode(raw)
        end = min(header.total_length, len(raw))
        return cls(header=header, payload=raw[IPv4Header.HEADER_LENGTH:end])
