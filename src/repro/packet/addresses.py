"""Address utilities for the packet layer.

IPv4 and MAC addresses are modelled as thin immutable wrappers over their
canonical integer / byte representations.  The module also implements the
*invalid source address* test the paper relies on: a spoofed SYN only
succeeds in exhausting the victim's backlog if its source address is
unreachable, because a reachable host would answer the victim's SYN/ACK
with a RST and tear the half-open connection down (Section 1 of the
paper).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "MACAddress",
    "is_bogon",
    "random_spoofed_address",
    "BOGON_NETWORKS",
]

_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        match = _DOTTED_RE.match(text.strip())
        if match is None:
            raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
        octets = [int(part) for part in match.groups()]
        if any(octet > 255 for octet in octets):
            raise ValueError(f"octet out of range in {text!r}")
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPv4Address":
        if len(raw) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @property
    def octets(self) -> Tuple[int, int, int, int]:
        return (
            (self.value >> 24) & 0xFF,
            (self.value >> 16) & 0xFF,
            (self.value >> 8) & 0xFF,
            self.value & 0xFF,
        )

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.octets)

    def __int__(self) -> int:
        return self.value


AddressLike = Union[IPv4Address, str, int]


def _coerce_address(address: AddressLike) -> IPv4Address:
    if isinstance(address, IPv4Address):
        return address
    if isinstance(address, str):
        return IPv4Address.parse(address)
    return IPv4Address(int(address))


@dataclass(frozen=True)
class IPv4Network:
    """A CIDR prefix, e.g. ``IPv4Network.parse("10.0.0.0/8")``."""

    network: IPv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if self.network.value & ~self.netmask_int & 0xFFFFFFFF:
            raise ValueError(
                f"{self.network}/{self.prefix_len} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        try:
            address_part, prefix_part = text.strip().split("/")
        except ValueError as exc:
            raise ValueError(f"not CIDR notation: {text!r}") from exc
        return cls(IPv4Address.parse(address_part), int(prefix_part))

    @property
    def netmask_int(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    def __contains__(self, address: object) -> bool:
        if not isinstance(address, (IPv4Address, str, int)):
            return NotImplemented
        candidate = _coerce_address(address)
        return (candidate.value & self.netmask_int) == self.network.value

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over host addresses (excludes network/broadcast for /30
        and wider prefixes, matching conventional host-range semantics)."""
        first = self.network.value
        last = first + self.num_addresses - 1
        if self.prefix_len <= 30:
            first += 1
            last -= 1
        for value in range(first, last + 1):
            yield IPv4Address(value)

    def random_host(self, rng: random.Random) -> IPv4Address:
        first = self.network.value
        span = self.num_addresses
        if self.prefix_len <= 30:
            first += 1
            span -= 2
        return IPv4Address(first + rng.randrange(span))

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"


@dataclass(frozen=True, order=True)
class MACAddress:
    """A 48-bit Ethernet MAC address.

    SYN-dog's source-localization step (Section 4.2.3) checks the MAC
    address of packets whose IP source address is spoofed: the MAC is set
    by the actual sending host's NIC and is not forged by the common
    flooding tools, so it pinpoints the compromised host inside the stub
    network.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MACAddress":
        parts = text.strip().replace("-", ":").split(":")
        if len(parts) != 6:
            raise ValueError(f"not a MAC address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part, 16)
            if not 0 <= octet <= 0xFF:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MACAddress":
        if len(raw) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{octet:02x}" for octet in raw)


#: Prefixes that can never be legitimate Internet source addresses.  A SYN
#: whose source falls in one of these is guaranteed not to elicit a RST
#: from a real host, which is exactly what a flooding attacker needs.
BOGON_NETWORKS: Tuple[IPv4Network, ...] = tuple(
    IPv4Network.parse(cidr)
    for cidr in (
        "0.0.0.0/8",        # "this" network
        "10.0.0.0/8",       # RFC 1918 private
        "127.0.0.0/8",      # loopback
        "169.254.0.0/16",   # link-local
        "172.16.0.0/12",    # RFC 1918 private
        "192.0.2.0/24",     # TEST-NET-1
        "192.168.0.0/16",   # RFC 1918 private
        "198.51.100.0/24",  # TEST-NET-2
        "203.0.113.0/24",   # TEST-NET-3
        "224.0.0.0/4",      # multicast
        "240.0.0.0/4",      # reserved
    )
)


def is_bogon(address: AddressLike) -> bool:
    """Return True if *address* cannot be a reachable Internet host."""
    candidate = _coerce_address(address)
    return any(candidate in network for network in BOGON_NETWORKS)


def random_spoofed_address(
    rng: random.Random,
    avoid: Iterable[IPv4Network] = (),
) -> IPv4Address:
    """Draw a random *unreachable* source address for a spoofed SYN.

    The address is drawn from the bogon pools so that the victim's
    SYN/ACK is never answered, keeping the half-open connection pinned in
    the victim's backlog for the full timeout (Section 1).
    """
    avoid = tuple(avoid)
    for _ in range(1000):
        network = rng.choice(BOGON_NETWORKS)
        candidate = network.random_host(rng)
        if not any(candidate in excluded for excluded in avoid):
            return candidate
    raise RuntimeError("could not find a spoofable address outside 'avoid'")
