"""Byte-accurate packet layer: Ethernet / IPv4 / TCP / UDP models,
checksums, address utilities, and the paper's TCP control-packet
classifier.

This subpackage replaces scapy/dpkt (not available offline): every
header codec is implemented from scratch and produces genuine wire
bytes, so traces round-trip through the :mod:`repro.pcap` layer.
"""

from .addresses import (
    BOGON_NETWORKS,
    IPv4Address,
    IPv4Network,
    MACAddress,
    is_bogon,
    random_spoofed_address,
)
from .checksum import internet_checksum, tcp_pseudo_header, verify_checksum
from .classify import (
    QUARANTINE_STEPS,
    ClassifierStats,
    PacketClass,
    PacketClassifier,
    RejectionStep,
    classify_ip_bytes,
    classify_packet,
)
from .ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from .ip import IP_FLAG_DF, IP_FLAG_MF, IPv4Header, IPv4Packet
from .packet import Packet, make_ack, make_fin, make_rst, make_syn, make_syn_ack
from .tcp import TCP_PROTOCOL_NUMBER, SegmentKind, TCPFlags, TCPSegment
from .udp import UDP_PROTOCOL_NUMBER, UDPDatagram

__all__ = [
    "BOGON_NETWORKS",
    "IPv4Address",
    "IPv4Network",
    "MACAddress",
    "is_bogon",
    "random_spoofed_address",
    "internet_checksum",
    "tcp_pseudo_header",
    "verify_checksum",
    "ClassifierStats",
    "PacketClass",
    "PacketClassifier",
    "RejectionStep",
    "QUARANTINE_STEPS",
    "classify_ip_bytes",
    "classify_packet",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "IP_FLAG_DF",
    "IP_FLAG_MF",
    "IPv4Header",
    "IPv4Packet",
    "Packet",
    "make_ack",
    "make_fin",
    "make_rst",
    "make_syn",
    "make_syn_ack",
    "TCP_PROTOCOL_NUMBER",
    "SegmentKind",
    "TCPFlags",
    "TCPSegment",
    "UDP_PROTOCOL_NUMBER",
    "UDPDatagram",
]
