"""RFC 1071 Internet checksum.

Used by both the IPv4 header checksum and the TCP checksum (the latter
over the pseudo-header + segment).  Implemented exactly as the one's
complement of the one's-complement sum of 16-bit words so encoded
packets are byte-for-byte valid and can be consumed by external tools
reading our pcap output.
"""

from __future__ import annotations

__all__ = ["internet_checksum", "tcp_pseudo_header", "verify_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit Internet checksum of *data*.

    Odd-length input is padded with a zero byte on the right, per
    RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for offset in range(0, len(data), 2):
        total += (data[offset] << 8) | data[offset + 1]
    # Fold carries.  Two folds suffice for any input length < 2**17 words,
    # but loop to stay correct for arbitrarily long buffers.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def tcp_pseudo_header(
    src_ip: bytes, dst_ip: bytes, protocol: int, tcp_length: int
) -> bytes:
    """Build the 12-byte pseudo-header prepended for the TCP checksum."""
    if len(src_ip) != 4 or len(dst_ip) != 4:
        raise ValueError("pseudo-header requires 4-byte IPv4 addresses")
    return (
        src_ip
        + dst_ip
        + b"\x00"
        + bytes([protocol & 0xFF])
        + tcp_length.to_bytes(2, "big")
    )


def verify_checksum(data: bytes) -> bool:
    """True if *data* (checksum field included) sums to zero.

    A buffer that already carries a correct Internet checksum sums to
    0xFFFF before complementing, i.e. ``internet_checksum`` returns 0.
    """
    return internet_checksum(data) == 0
