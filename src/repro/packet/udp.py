"""UDP datagram model.

SYN-dog ignores UDP entirely — the classifier filters on protocol 6 —
but background traces contain UDP (DNS and the like) and the earliest
DDoS tool, Trinoo, was a UDP flooder (Section 4.2).  Carrying UDP in the
substrate lets tests confirm the sniffers really do discard everything
that is not a TCP control segment.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, tcp_pseudo_header

__all__ = ["UDPDatagram", "UDP_PROTOCOL_NUMBER"]

UDP_PROTOCOL_NUMBER = 17

_HEADER = struct.Struct("!HHHH")


@dataclass(frozen=True)
class UDPDatagram:
    """An immutable UDP datagram."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    HEADER_LENGTH = 8

    def __post_init__(self) -> None:
        for name, value in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} out of range: {value}")

    def __len__(self) -> int:
        return self.HEADER_LENGTH + len(self.payload)

    def encode(self, src_ip: bytes = None, dst_ip: bytes = None) -> bytes:
        length = len(self)
        datagram = _HEADER.pack(self.src_port, self.dst_port, length, 0) + self.payload
        if src_ip is not None and dst_ip is not None:
            pseudo = tcp_pseudo_header(src_ip, dst_ip, UDP_PROTOCOL_NUMBER, length)
            checksum = internet_checksum(pseudo + datagram)
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
            datagram = datagram[:6] + checksum.to_bytes(2, "big") + datagram[8:]
        return datagram

    @classmethod
    def decode(cls, raw: bytes) -> "UDPDatagram":
        if len(raw) < cls.HEADER_LENGTH:
            raise ValueError(f"UDP header truncated: {len(raw)} bytes")
        src_port, dst_port, length, _checksum = _HEADER.unpack_from(raw)
        if length < cls.HEADER_LENGTH:
            raise ValueError(f"bad UDP length: {length}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            payload=raw[cls.HEADER_LENGTH:length],
        )
