"""Composite packet: Ethernet / IPv4 / TCP-or-UDP in one object.

``Packet`` is the unit that flows through the whole reproduction: trace
generators emit them, links and routers forward them, sniffers count
them, and the pcap layer turns them into wire bytes and back.  The
timestamp lives here (not in any header) because it is a property of the
observation, exactly as in a pcap record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from .addresses import IPv4Address, MACAddress
from .ethernet import ETHERTYPE_IPV4, EthernetFrame
from .ip import IPv4Header, IPv4Packet
from .tcp import TCP_PROTOCOL_NUMBER, TCPSegment
from .udp import UDP_PROTOCOL_NUMBER, UDPDatagram

__all__ = ["Packet", "make_syn", "make_syn_ack", "make_ack", "make_fin", "make_rst"]

Transport = Union[TCPSegment, UDPDatagram, bytes]

_DEFAULT_SRC_MAC = MACAddress.parse("02:00:00:00:00:01")
_DEFAULT_DST_MAC = MACAddress.parse("02:00:00:00:00:02")


@dataclass(frozen=True)
class Packet:
    """A timestamped packet with decoded layers.

    ``transport`` is a :class:`TCPSegment`, a :class:`UDPDatagram`, or raw
    bytes for protocols the reproduction does not model.
    """

    timestamp: float
    ip: IPv4Header
    transport: Transport = b""
    src_mac: MACAddress = _DEFAULT_SRC_MAC
    dst_mac: MACAddress = _DEFAULT_DST_MAC

    # ------------------------------------------------------------------
    # Layer predicates used throughout the sniffing pipeline
    # ------------------------------------------------------------------
    @property
    def is_tcp(self) -> bool:
        return self.ip.protocol == TCP_PROTOCOL_NUMBER

    @property
    def tcp(self) -> Optional[TCPSegment]:
        """The TCP segment, or None when the packet is not (decodable) TCP
        or is a non-first fragment (whose payload lacks the TCP header)."""
        if not self.is_tcp or not self.ip.is_first_fragment:
            return None
        if isinstance(self.transport, TCPSegment):
            return self.transport
        if isinstance(self.transport, bytes):
            try:
                return TCPSegment.decode(self.transport)
            except ValueError:
                return None
        return None

    @property
    def is_syn(self) -> bool:
        segment = self.tcp
        return segment is not None and segment.is_syn

    @property
    def is_syn_ack(self) -> bool:
        segment = self.tcp
        return segment is not None and segment.is_syn_ack

    @property
    def src_ip(self) -> IPv4Address:
        return self.ip.src

    @property
    def dst_ip(self) -> IPv4Address:
        return self.ip.dst

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def encode_ip(self) -> bytes:
        """Serialize the IP layer and below (no Ethernet header)."""
        if isinstance(self.transport, TCPSegment):
            payload = self.transport.encode(
                self.ip.src.to_bytes(), self.ip.dst.to_bytes()
            )
        elif isinstance(self.transport, UDPDatagram):
            payload = self.transport.encode(
                self.ip.src.to_bytes(), self.ip.dst.to_bytes()
            )
        else:
            payload = bytes(self.transport)
        return IPv4Packet(self.ip, payload).encode()

    def encode_frame(self) -> bytes:
        """Serialize the full Ethernet frame."""
        return EthernetFrame(
            dst_mac=self.dst_mac,
            src_mac=self.src_mac,
            ethertype=ETHERTYPE_IPV4,
            payload=self.encode_ip(),
        ).encode()

    @classmethod
    def decode_frame(cls, raw: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse an Ethernet frame into a Packet.

        Non-IPv4 frames raise ValueError; the caller (e.g. the pcap
        reader) decides whether to skip or propagate.
        """
        frame = EthernetFrame.decode(raw)
        if not frame.is_ipv4:
            raise ValueError(f"not an IPv4 frame (ethertype={frame.ethertype:#06x})")
        return cls._decode_ip_payload(
            frame.payload, timestamp, frame.src_mac, frame.dst_mac
        )

    @classmethod
    def decode_ip(cls, raw: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse raw IP bytes (no Ethernet header) into a Packet."""
        return cls._decode_ip_payload(
            raw, timestamp, _DEFAULT_SRC_MAC, _DEFAULT_DST_MAC
        )

    @classmethod
    def _decode_ip_payload(
        cls,
        raw: bytes,
        timestamp: float,
        src_mac: MACAddress,
        dst_mac: MACAddress,
    ) -> "Packet":
        ip_packet = IPv4Packet.decode(raw)
        header = ip_packet.header
        transport: Transport = ip_packet.payload
        if header.is_first_fragment:
            try:
                if header.protocol == TCP_PROTOCOL_NUMBER:
                    transport = TCPSegment.decode(ip_packet.payload)
                elif header.protocol == UDP_PROTOCOL_NUMBER:
                    transport = UDPDatagram.decode(ip_packet.payload)
            except ValueError:
                transport = ip_packet.payload  # keep raw bytes if malformed
        return cls(
            timestamp=timestamp,
            ip=header,
            transport=transport,
            src_mac=src_mac,
            dst_mac=dst_mac,
        )

    def at(self, timestamp: float) -> "Packet":
        """Copy of this packet observed at a different time."""
        return replace(self, timestamp=timestamp)

    def forwarded(self) -> "Packet":
        """Copy with TTL decremented, as a router would emit it."""
        return replace(self, ip=self.ip.decrement_ttl())


# ----------------------------------------------------------------------
# Handshake packet factories — the vocabulary of every trace generator,
# attack tool and TCP endpoint in this reproduction.
# ----------------------------------------------------------------------
def make_syn(
    timestamp: float,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    src_port: int = 32768,
    dst_port: int = 80,
    seq: int = 0,
    src_mac: MACAddress = _DEFAULT_SRC_MAC,
    dst_mac: MACAddress = _DEFAULT_DST_MAC,
) -> Packet:
    """A TCP connection request (SYN=1, ACK=0)."""
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, protocol=TCP_PROTOCOL_NUMBER),
        transport=TCPSegment.syn(src_port, dst_port, seq=seq),
        src_mac=src_mac,
        dst_mac=dst_mac,
    )


def make_syn_ack(
    timestamp: float,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    src_port: int = 80,
    dst_port: int = 32768,
    seq: int = 0,
    ack: int = 1,
    src_mac: MACAddress = _DEFAULT_SRC_MAC,
    dst_mac: MACAddress = _DEFAULT_DST_MAC,
) -> Packet:
    """A TCP connection accept (SYN=1, ACK=1)."""
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, protocol=TCP_PROTOCOL_NUMBER),
        transport=TCPSegment.syn_ack(src_port, dst_port, seq=seq, ack=ack),
        src_mac=src_mac,
        dst_mac=dst_mac,
    )


def make_ack(
    timestamp: float,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    src_port: int = 32768,
    dst_port: int = 80,
    seq: int = 1,
    ack: int = 1,
) -> Packet:
    """The final ACK of the three-way handshake."""
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, protocol=TCP_PROTOCOL_NUMBER),
        transport=TCPSegment.pure_ack(src_port, dst_port, seq=seq, ack=ack),
    )


def make_fin(
    timestamp: float,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    src_port: int = 32768,
    dst_port: int = 80,
    seq: int = 1,
    ack: int = 1,
) -> Packet:
    """A connection-teardown FIN (carried with ACK, as stacks emit it)."""
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, protocol=TCP_PROTOCOL_NUMBER),
        transport=TCPSegment.fin(src_port, dst_port, seq=seq, ack=ack),
    )


def make_rst(
    timestamp: float,
    src: Union[IPv4Address, str],
    dst: Union[IPv4Address, str],
    src_port: int = 32768,
    dst_port: int = 80,
    seq: int = 0,
) -> Packet:
    """A reset — what a real host sends when it receives an unexpected
    SYN/ACK, the reaction flooding attackers avoid by spoofing
    unreachable source addresses."""
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, protocol=TCP_PROTOCOL_NUMBER),
        transport=TCPSegment.rst(src_port, dst_port, seq=seq),
    )
