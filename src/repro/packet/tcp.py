"""TCP segment model and byte-accurate codec.

The six classic TCP flag bits (URG/ACK/PSH/RST/SYN/FIN) drive the
paper's packet classification: SYN-dog's outbound sniffer counts
segments with SYN=1, ACK=0 (connection requests) and the inbound sniffer
counts SYN=1, ACK=1 (SYN/ACK responses).  The codec produces real wire
bytes including a correct pseudo-header checksum so traces can round-trip
through pcap.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .checksum import internet_checksum, tcp_pseudo_header

__all__ = ["TCPFlags", "TCPSegment", "SegmentKind", "TCP_PROTOCOL_NUMBER"]

TCP_PROTOCOL_NUMBER = 6

_HEADER = struct.Struct("!HHIIBBHHH")


class TCPFlags(enum.IntFlag):
    """The six TCP flag bits, at their wire positions."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


class SegmentKind(enum.Enum):
    """Classification of a TCP segment by its control bits.

    This is the output alphabet of the paper's packet classifier
    (Section 2): the sniffers only care about SYN vs SYN/ACK, but the
    full taxonomy is useful for the TCP simulator and the stateful
    baseline defenses.
    """

    SYN = "syn"           # SYN=1, ACK=0: connection request
    SYN_ACK = "syn-ack"   # SYN=1, ACK=1: connection accept
    RST = "rst"           # RST=1: reset
    FIN = "fin"           # FIN=1: teardown (possibly with ACK)
    ACK = "ack"           # pure ACK / data segment with ACK
    OTHER = "other"       # anything else


@dataclass(frozen=True)
class TCPSegment:
    """An immutable TCP segment (header + payload)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags(0)
    window: int = 65535
    urgent: int = 0
    options: bytes = b""
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, value, limit in (
            ("src_port", self.src_port, 0xFFFF),
            ("dst_port", self.dst_port, 0xFFFF),
            ("window", self.window, 0xFFFF),
            ("urgent", self.urgent, 0xFFFF),
        ):
            if not 0 <= value <= limit:
                raise ValueError(f"{name} out of range: {value}")
        for name, value in (("seq", self.seq), ("ack", self.ack)):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{name} out of range: {value}")
        if len(self.options) % 4:
            raise ValueError("TCP options must be padded to 32-bit words")
        if len(self.options) > 40:
            raise ValueError("TCP options exceed 40 bytes")

    # ------------------------------------------------------------------
    # Convenience constructors for the handshake vocabulary
    # ------------------------------------------------------------------
    @classmethod
    def syn(cls, src_port: int, dst_port: int, seq: int = 0) -> "TCPSegment":
        """A connection request: SYN=1, ACK=0."""
        return cls(src_port, dst_port, seq=seq, flags=TCPFlags.SYN)

    @classmethod
    def syn_ack(
        cls, src_port: int, dst_port: int, seq: int = 0, ack: int = 1
    ) -> "TCPSegment":
        """A connection accept: SYN=1, ACK=1."""
        return cls(
            src_port, dst_port, seq=seq, ack=ack,
            flags=TCPFlags.SYN | TCPFlags.ACK,
        )

    @classmethod
    def pure_ack(
        cls, src_port: int, dst_port: int, seq: int = 1, ack: int = 1
    ) -> "TCPSegment":
        return cls(src_port, dst_port, seq=seq, ack=ack, flags=TCPFlags.ACK)

    @classmethod
    def rst(cls, src_port: int, dst_port: int, seq: int = 0) -> "TCPSegment":
        return cls(src_port, dst_port, seq=seq, flags=TCPFlags.RST)

    @classmethod
    def fin(
        cls, src_port: int, dst_port: int, seq: int = 1, ack: int = 1
    ) -> "TCPSegment":
        return cls(
            src_port, dst_port, seq=seq, ack=ack,
            flags=TCPFlags.FIN | TCPFlags.ACK,
        )

    # ------------------------------------------------------------------
    # Flag predicates
    # ------------------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        """SYN request: SYN set, ACK clear (what the outbound sniffer counts)."""
        return bool(self.flags & TCPFlags.SYN) and not self.flags & TCPFlags.ACK

    @property
    def is_syn_ack(self) -> bool:
        """SYN/ACK: SYN and ACK both set (what the inbound sniffer counts)."""
        return bool(self.flags & TCPFlags.SYN) and bool(self.flags & TCPFlags.ACK)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCPFlags.RST)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCPFlags.FIN)

    @property
    def kind(self) -> SegmentKind:
        if self.is_rst:
            return SegmentKind.RST
        if self.is_syn_ack:
            return SegmentKind.SYN_ACK
        if self.is_syn:
            return SegmentKind.SYN
        if self.is_fin:
            return SegmentKind.FIN
        if self.flags & TCPFlags.ACK:
            return SegmentKind.ACK
        return SegmentKind.OTHER

    @property
    def data_offset_words(self) -> int:
        """Header length in 32-bit words (5 + options)."""
        return 5 + len(self.options) // 4

    @property
    def header_length(self) -> int:
        return self.data_offset_words * 4

    def __len__(self) -> int:
        return self.header_length + len(self.payload)

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def encode(
        self,
        src_ip: Optional[bytes] = None,
        dst_ip: Optional[bytes] = None,
    ) -> bytes:
        """Serialize to wire bytes.

        When *src_ip*/*dst_ip* (4-byte each) are given, the checksum is
        computed over the RFC 793 pseudo-header; otherwise it is left 0,
        which is fine for purely in-memory simulation.
        """
        offset_reserved = self.data_offset_words << 4
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_reserved,
            int(self.flags) & 0x3F,
            self.window,
            0,  # checksum placeholder
            self.urgent,
        )
        segment = header + self.options + self.payload
        if src_ip is not None and dst_ip is not None:
            pseudo = tcp_pseudo_header(
                src_ip, dst_ip, TCP_PROTOCOL_NUMBER, len(segment)
            )
            checksum = internet_checksum(pseudo + segment)
            segment = (
                segment[:16] + checksum.to_bytes(2, "big") + segment[18:]
            )
        return segment

    @classmethod
    def decode(cls, raw: bytes) -> "TCPSegment":
        """Parse wire bytes into a TCPSegment (checksum not verified here;
        use :func:`verify` when the enclosing IP addresses are known)."""
        if len(raw) < _HEADER.size:
            raise ValueError(f"TCP header truncated: {len(raw)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flag_bits,
            window,
            _checksum,
            urgent,
        ) = _HEADER.unpack_from(raw)
        data_offset = (offset_reserved >> 4) * 4
        if data_offset < 20 or data_offset > len(raw):
            raise ValueError(f"bad TCP data offset: {data_offset}")
        options = raw[20:data_offset]
        payload = raw[data_offset:]
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=TCPFlags(flag_bits & 0x3F),
            window=window,
            urgent=urgent,
            options=options,
            payload=payload,
        )

    @classmethod
    def verify(cls, raw: bytes, src_ip: bytes, dst_ip: bytes) -> bool:
        """True when *raw*'s embedded checksum is valid for the given
        IPv4 endpoints."""
        pseudo = tcp_pseudo_header(src_ip, dst_ip, TCP_PROTOCOL_NUMBER, len(raw))
        return internet_checksum(pseudo + raw) == 0

    def with_flags(self, flags: TCPFlags) -> "TCPSegment":
        return replace(self, flags=flags)
