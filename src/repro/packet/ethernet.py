"""Ethernet II frame model.

The stub-network side of the leaf router sees layer-2 frames.  While the
sniffers themselves only need the IP/TCP headers, the frame's *source
MAC address* is the hook for SYN-dog's post-alarm localization step
(Section 4.2.3): IP source addresses on flooding packets are spoofed,
but the MAC written by the sending NIC is not, so the router can map an
alarm to the physical host that emitted the flood.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import MACAddress

__all__ = ["EthernetFrame", "ETHERTYPE_IPV4", "ETHERTYPE_ARP"]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

_HEADER = struct.Struct("!6s6sH")


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame (no 802.1Q tag, no FCS)."""

    dst_mac: MACAddress
    src_mac: MACAddress
    ethertype: int = ETHERTYPE_IPV4
    payload: bytes = b""

    HEADER_LENGTH = 14

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype:#x}")

    def encode(self) -> bytes:
        return (
            _HEADER.pack(
                self.dst_mac.to_bytes(),
                self.src_mac.to_bytes(),
                self.ethertype,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, raw: bytes) -> "EthernetFrame":
        if len(raw) < cls.HEADER_LENGTH:
            raise ValueError(f"Ethernet frame truncated: {len(raw)} bytes")
        dst_raw, src_raw, ethertype = _HEADER.unpack_from(raw)
        return cls(
            dst_mac=MACAddress.from_bytes(dst_raw),
            src_mac=MACAddress.from_bytes(src_raw),
            ethertype=ethertype,
            payload=raw[cls.HEADER_LENGTH:],
        )

    @property
    def is_ipv4(self) -> bool:
        return self.ethertype == ETHERTYPE_IPV4
