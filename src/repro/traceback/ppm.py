"""Probabilistic Packet Marking (PPM) — the IP-traceback contrast.

The paper's pitch is that first-mile placement makes source location
*free*, whereas victim-side approaches "must rely on the expensive IP
traceback [2, 20, 23, 26, 27, 32]".  To make "expensive" measurable,
this module implements the canonical traceback scheme the paper cites —
Savage et al.'s probabilistic packet marking with edge sampling [23] —
faithfully enough to reproduce its cost law:

* every router on the attack path, for every packet, with probability
  ``p`` starts a fresh edge mark (itself, distance 0); a router seeing
  a distance-0 mark completes the edge; every non-marking router
  increments the distance;
* the victim collects marks from attack packets and reconstructs the
  path edge by edge, outward from itself;
* the expected number of attack packets needed to see the *farthest*
  edge is ``1 / (p·(1−p)^(d−1))``, and the whole path needs
  ``≈ ln(d) / (p·(1−p)^(d−1))`` — thousands of packets for the
  20-something-hop paths typical of real attacks.

The comparison bench (`benchmarks/test_extension_traceback_cost.py`)
puts this next to SYN-dog's cost: a couple of observation periods of
two counters, and a MAC-resolution answer instead of a router-level
path that still ends one hop short of the host.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..packet.addresses import IPv4Address

__all__ = [
    "EdgeMark",
    "AttackPath",
    "mark_along_path",
    "PPMCollector",
    "expected_packets_for_full_path",
    "MARKING_PROBABILITY",
]

#: Savage et al.'s recommended marking probability.
MARKING_PROBABILITY = 1.0 / 25.0


@dataclass(frozen=True)
class EdgeMark:
    """The mark a packet carries when it reaches the victim.

    ``start``/``end`` encode one edge of the attack path; ``distance``
    is the hop count from the edge to the victim.  ``end`` is None for
    the edge adjacent to the victim (the real scheme XORs addresses to
    fit IP-header fields; the information content is identical).
    """

    start: IPv4Address
    end: Optional[IPv4Address]
    distance: int


@dataclass(frozen=True)
class AttackPath:
    """The router chain from a flooding source to the victim.

    ``routers[0]`` is the first-mile router (where SYN-dog would sit);
    ``routers[-1]`` is the victim's last-mile router.
    """

    routers: Tuple[IPv4Address, ...]

    def __post_init__(self) -> None:
        if len(self.routers) < 1:
            raise ValueError("an attack path needs at least one router")
        if len(set(self.routers)) != len(self.routers):
            raise ValueError("attack path routers must be distinct")

    @property
    def length(self) -> int:
        return len(self.routers)

    @classmethod
    def random(cls, rng: random.Random, length: int) -> "AttackPath":
        if length < 1:
            raise ValueError(f"path length must be positive: {length}")
        routers = []
        seen = set()
        while len(routers) < length:
            address = IPv4Address(rng.randrange(0x0B000000, 0xDF000000))
            if address not in seen:
                seen.add(address)
                routers.append(address)
        return cls(routers=tuple(routers))

    def true_edges(self) -> List[Tuple[IPv4Address, Optional[IPv4Address], int]]:
        """The ground-truth edge set, victim-outward: distance 0 is the
        router adjacent to the victim."""
        edges: List[Tuple[IPv4Address, Optional[IPv4Address], int]] = []
        chain = list(self.routers)
        for index in range(len(chain) - 1, -1, -1):
            distance = len(chain) - 1 - index
            end = chain[index + 1] if index + 1 < len(chain) else None
            edges.append((chain[index], end, distance))
        return edges


def mark_along_path(
    path: AttackPath,
    rng: random.Random,
    p: float = MARKING_PROBABILITY,
) -> Optional[EdgeMark]:
    """Simulate one attack packet traversing *path* under edge sampling.

    Returns the mark the victim receives, or None when no router marked
    (the packet keeps whatever the attacker wrote — treated as garbage
    the victim discards; spoofed marks with distance ≥ 1 are filtered by
    the scheme's distance check, which this models by discarding them).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"marking probability must lie in (0,1): {p}")
    start: Optional[IPv4Address] = None
    end: Optional[IPv4Address] = None
    distance = 0
    marked = False
    for router in path.routers:
        if rng.random() < p:
            start, end, distance = router, None, 0
            marked = True
        elif marked:
            if distance == 0 and end is None:
                end = router
            distance += 1
    if not marked:
        return None
    return EdgeMark(start=start, end=end, distance=distance)


class PPMCollector:
    """The victim's mark collector and path reconstructor."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[int, Optional[int], int], int] = {}
        self.packets_seen = 0
        self.marks_seen = 0

    def collect(self, mark: Optional[EdgeMark]) -> None:
        self.packets_seen += 1
        if mark is None:
            return
        self.marks_seen += 1
        key = (
            int(mark.start),
            int(mark.end) if mark.end is not None else None,
            mark.distance,
        )
        self._edges[key] = self._edges.get(key, 0) + 1

    def distances_covered(self) -> List[int]:
        return sorted({distance for (_s, _e, distance) in self._edges})

    def reconstruct(self) -> Optional[List[IPv4Address]]:
        """Rebuild the path victim-outward; None while any distance ring
        is still missing or ambiguous."""
        by_distance: Dict[int, List[Tuple[int, Optional[int]]]] = {}
        for (start, end, distance), _count in self._edges.items():
            by_distance.setdefault(distance, []).append((start, end))
        if not by_distance or 0 not in by_distance:
            return None
        path: List[IPv4Address] = []
        distance = 0
        while distance in by_distance:
            candidates = by_distance[distance]
            if len({start for start, _ in candidates}) != 1:
                return None  # ambiguous ring (multiple paths / spoofing)
            start, _end = candidates[0]
            path.append(IPv4Address(start))
            distance += 1
        # Victim-outward → source-outward order, matching AttackPath.
        return list(reversed(path))

    def has_full_path(self, path: AttackPath) -> bool:
        reconstruction = self.reconstruct()
        return (
            reconstruction is not None
            and reconstruction == list(path.routers)
        )


def expected_packets_for_full_path(
    length: int, p: float = MARKING_PROBABILITY
) -> float:
    """Savage et al.'s bound on the expected number of attack packets
    before the victim has seen every edge:
    E[X] < ln(d) / (p·(1−p)^(d−1))."""
    if length < 1:
        raise ValueError(f"length must be positive: {length}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0,1): {p}")
    rarest = p * (1.0 - p) ** (length - 1)
    return math.log(max(length, 2)) / rarest
