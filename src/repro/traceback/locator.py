"""Post-alarm flooding-source localization (Section 4.2.3).

"Due to its proximity to the flooding sources, once SYN-dog detects the
ongoing flooding traffic, it can further locate the flooding source
inside the stub network, for example, by triggering the ingress
filtering mechanism and checking the MAC addresses of IP packets whose
source addresses are spoofed."

The locator consumes the ingress filter's spoof observations, ranks the
offending MAC addresses, and — given the router's MAC⇄host inventory
(its ARP/forwarding table) — names the physical hosts.  This is the
step IP traceback schemes [2, 20, 23, 26, 27, 32] spend per-packet
marking or logging infrastructure to approximate from the victim side;
at the first-mile router it is a table lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..defense.ingress import IngressFilter, SpoofObservation
from ..packet.addresses import IPv4Address, MACAddress

__all__ = ["HostInventory", "LocalizationReport", "SourceLocator", "LocatedHost"]


class HostInventory:
    """The leaf router's MAC⇄host knowledge (ARP table / port map)."""

    def __init__(self) -> None:
        self._hosts: Dict[MACAddress, Dict[str, str]] = {}

    def register(
        self,
        mac: MACAddress,
        ip: Optional[IPv4Address] = None,
        name: str = "",
        switch_port: str = "",
    ) -> None:
        """Record one stub-network host."""
        self._hosts[mac] = {
            "ip": str(ip) if ip is not None else "",
            "name": name,
            "port": switch_port,
        }

    def lookup(self, mac: MACAddress) -> Optional[Dict[str, str]]:
        return self._hosts.get(mac)

    def __contains__(self, mac: object) -> bool:
        return mac in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)


@dataclass(frozen=True)
class LocatedHost:
    """One suspected flooding host."""

    mac: MACAddress
    spoofed_packet_count: int
    share: float                       #: fraction of all spoofed packets
    registered_ip: str = ""            #: from the inventory, if known
    name: str = ""
    switch_port: str = ""
    known: bool = False                #: True when found in the inventory


@dataclass(frozen=True)
class LocalizationReport:
    """The locator's answer after an alarm."""

    total_spoofed_packets: int
    hosts: Tuple[LocatedHost, ...]

    @property
    def primary_suspect(self) -> Optional[LocatedHost]:
        return self.hosts[0] if self.hosts else None

    @property
    def localized(self) -> bool:
        """True when at least one suspect was pinned to a known host."""
        return any(host.known for host in self.hosts)


class SourceLocator:
    """Combines ingress-filter evidence with the host inventory."""

    def __init__(
        self,
        inventory: Optional[HostInventory] = None,
        min_packets: int = 10,
    ) -> None:
        if min_packets <= 0:
            raise ValueError(f"min_packets must be positive: {min_packets}")
        # An *empty* HostInventory is falsy (it defines __len__), so
        # `inventory or HostInventory()` would silently drop a shared
        # inventory that happens to be empty at construction time.
        self.inventory = inventory if inventory is not None else HostInventory()
        self.min_packets = min_packets

    def locate(
        self, observations: Sequence[SpoofObservation]
    ) -> LocalizationReport:
        """Rank spoofing MACs and resolve them against the inventory.

        ``min_packets`` filters out hosts whose spoof count could be
        explained by misconfiguration noise (a laptop with a stale
        address) rather than a flood.
        """
        counts: Dict[MACAddress, int] = {}
        for observation in observations:
            counts[observation.mac] = counts.get(observation.mac, 0) + 1
        total = sum(counts.values())
        hosts: List[LocatedHost] = []
        for mac, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0].value)
        ):
            if count < self.min_packets:
                continue
            record = self.inventory.lookup(mac)
            hosts.append(
                LocatedHost(
                    mac=mac,
                    spoofed_packet_count=count,
                    share=count / total if total else 0.0,
                    registered_ip=record["ip"] if record else "",
                    name=record["name"] if record else "",
                    switch_port=record["port"] if record else "",
                    known=record is not None,
                )
            )
        return LocalizationReport(
            total_spoofed_packets=total, hosts=tuple(hosts)
        )

    def locate_from_filter(self, ingress: IngressFilter) -> LocalizationReport:
        """Convenience: read the evidence straight off an ingress filter."""
        return self.locate(ingress.observations)
