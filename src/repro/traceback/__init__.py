"""Source localization: the alternative to expensive IP traceback that
SYN-dog's first-mile placement buys (Section 4.2.3)."""

from .ppm import (
    MARKING_PROBABILITY,
    AttackPath,
    EdgeMark,
    PPMCollector,
    expected_packets_for_full_path,
    mark_along_path,
)
from .locator import (
    HostInventory,
    LocalizationReport,
    LocatedHost,
    SourceLocator,
)

__all__ = [
    "MARKING_PROBABILITY",
    "AttackPath",
    "EdgeMark",
    "PPMCollector",
    "expected_packets_for_full_path",
    "mark_along_path",
    "HostInventory",
    "LocalizationReport",
    "LocatedHost",
    "SourceLocator",
]
