"""Deterministic partitioning of an experiment grid into shards.

The evaluation grids — (site, attack, trial) detection sweeps, campaign
stub networks, sensitivity traces, chaos arms, fleet members — are
embarrassingly parallel: every grid item is a pure function of its own
description, with its own derived RNG stream.  A :class:`WorkPlan`
freezes the grid *in canonical order* and deals items to shards
round-robin.

The load-bearing design decision: **the shard count is a function of
the grid alone, never of the worker count.**  ``--workers N`` only
changes how many processes pull shards off the queue; the shards
themselves — their item sets, their RNG streams, their per-shard
observability capture — are identical for every N.  That is what makes
a ``--workers 4`` run byte-identical to ``--workers 1`` *by
construction* (held by ``tests/parallel/test_differential.py``), rather
than merely equal in aggregate:

* the shards are a **disjoint exact cover** of the grid for every
  shard count (``tests/parallel/test_workplan_properties.py`` holds
  this under Hypothesis), and
* anything derived from an *item* (its seed, its attack start, its
  output) depends only on the item's grid description, so no shard —
  and no worker — can perturb another's stream.

Seeds are derived from canonical strings through SHA-512
(:func:`derive_seed`), the same trick :mod:`repro.faults.injector` and
:mod:`repro.experiments.runner` use: string seeds hash identically in
every process, unlike built-in ``hash()``, so a shard computes the same
stream no matter which worker — or which attempt, after a crash —
runs it.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "WorkPlan",
    "derive_seed",
    "effective_workers",
    "DEFAULT_NUM_SHARDS",
]

#: Shards a plan is dealt into by default (clamped to the grid size).
#: Fixed — NOT scaled by worker count, see the module docstring — and
#: comfortably oversubscribed for any realistic core count, so
#: stragglers cannot idle the pool (grid items have heterogeneous cost:
#: a three-hour Auckland trial is ~10x a half-hour UNC one) and one
#: crashed shard throws away at most 1/32 of the grid.
DEFAULT_NUM_SHARDS = 32

#: Separator for canonical seed strings.  A unit separator cannot occur
#: in the repr of numbers or site names, so distinct part tuples cannot
#: collide by concatenation ("ab","c" vs "a","bc").
_SEED_SEPARATOR = "\x1f"


def derive_seed(*parts: Any, bits: int = 64) -> int:
    """A stable integer seed from a canonical description.

    ``derive_seed("campaign", site, base_seed, network_id)`` depends
    only on its arguments — not on the process, the worker count, or
    hash randomization — so every shard (and every crash-retry) draws
    the same stream for the same item.
    """
    if bits <= 0 or bits % 8 != 0 or bits > 512:
        raise ValueError(f"bits must be a multiple of 8 in (0, 512]: {bits}")
    canonical = _SEED_SEPARATOR.join(str(part) for part in parts)
    digest = hashlib.sha512(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def effective_workers(workers: Optional[int]) -> int:
    """Resolve a ``--workers`` value: ``None`` means every core."""
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    return workers


@dataclass(frozen=True)
class WorkPlan:
    """An ordered grid of work items dealt into ``num_shards`` shards.

    ``items`` is the grid in canonical (serial) order; shard *k* holds
    items ``k, k + S, k + 2S, ...`` — a deterministic round-robin deal
    that needs no knowledge of per-item cost and is independent of
    which worker eventually executes the shard.
    """

    items: Tuple[Any, ...]
    num_shards: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        if self.num_shards < 1:
            raise ValueError(f"need at least one shard: {self.num_shards}")

    @classmethod
    def partition(
        cls,
        items: Sequence[Any],
        num_shards: Optional[int] = None,
    ) -> "WorkPlan":
        """The standard deal: :data:`DEFAULT_NUM_SHARDS` shards,
        clamped to the grid size (a shard is never empty unless the
        grid itself is).  Worker count deliberately plays no part."""
        items = tuple(items)
        if num_shards is None:
            num_shards = DEFAULT_NUM_SHARDS
        num_shards = max(1, min(len(items) or 1, int(num_shards)))
        return cls(items=items, num_shards=num_shards)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def shard(self, shard_index: int) -> Tuple[Tuple[int, Any], ...]:
        """Shard *k*'s ``(grid_index, item)`` pairs, in grid order."""
        if not 0 <= shard_index < self.num_shards:
            raise IndexError(
                f"shard {shard_index} out of range "
                f"[0, {self.num_shards})"
            )
        return tuple(
            (index, self.items[index])
            for index in range(shard_index, len(self.items), self.num_shards)
        )

    def shards(self) -> List[Tuple[Tuple[int, Any], ...]]:
        """All shards; concatenating and sorting by grid index yields
        exactly the original grid (the exact-cover property)."""
        return [self.shard(k) for k in range(self.num_shards)]

    def merge_order(self) -> List[int]:
        """Shard indices ordered by their *last grid item*.

        Merging per-shard registries in this order makes unlabeled
        last-write-wins gauges land on the value the final grid item
        wrote — the same value a serial walk of the grid leaves behind.
        Empty shards (possible only when ``num_shards`` was forced
        above the grid size) sort first.
        """
        def last_index(k: int) -> int:
            shard = self.shard(k)
            return shard[-1][0] if shard else -1

        return sorted(range(self.num_shards), key=last_index)
