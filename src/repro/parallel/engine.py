"""The sharded multiprocessing executor.

:func:`run_plan` executes a :class:`~repro.parallel.workplan.WorkPlan`
with a top-level ``worker_fn(item, obs)`` and returns per-item payloads
in grid order.  The execution contract:

* **Worker-count invariance.**  The plan's shards — not the workers —
  are the unit of execution *and* of observability capture.  Each shard
  runs ``worker_fn`` over its items against a fresh private
  :class:`~repro.obs.runtime.Instrumentation`; the parent folds the
  per-shard registries (in :meth:`WorkPlan.merge_order`) and re-emits
  the per-item event groups in grid order.  Every one of those steps is
  a pure function of the plan, so output is byte-identical for any
  ``workers`` value — including 1, which skips processes entirely and
  runs the very same shard loop inline.
* **Crash handling.**  A worker that dies (nonzero exit, unpickled
  exception, or an injected :data:`~repro.faults.schedule.FaultKind.CRASH`)
  gets its shard rescheduled exactly once; a second failure raises
  :class:`WorkerCrashError` loudly with both causes.  Because a shard's
  outputs depend only on the shard, the retry reproduces exactly what
  the crashed attempt would have produced.
* **Fault injection.**  ``fault_schedule`` reuses the
  :mod:`repro.faults` vocabulary: a ``crash`` spec with params
  ``{"shard": k, "attempt": a, "after_items": n}`` hard-kills
  (``os._exit``) attempt *a* of shard *k* after *n* items — the
  agent-crash model, aimed at the engine itself.  Ignored on the
  inline path (killing the parent is not a simulation).

What the parallel path *loses* relative to a single-process run:
worker-side tracer spans (the parent's tracer still covers the parent)
and live event streaming (events buffer per shard and reach the
parent's sinks at merge time, in grid order).  Flight-recorder alarm
contexts are captured per shard and shipped home.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.schedule import FaultKind, FaultSchedule
from ..obs.events import EventLog, MemorySink
from ..obs.merge import (
    Snapshot,
    merge_event_groups,
    merge_snapshot,
    merge_tsdb_snapshots,
    registry_snapshot,
    tsdb_snapshot,
)
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import Profiler
from ..obs.recorder import FlightRecorder
from ..obs.tsdb import TimeSeriesDB
from ..obs.runtime import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    resolve_instrumentation,
    set_instrumentation,
)
from .workplan import WorkPlan, effective_workers

__all__ = [
    "ObsCapture",
    "ShardResult",
    "WorkerCrashError",
    "run_plan",
]

#: Exit code an injected crash dies with — distinguishable from a
#: Python traceback (1) and a signal death (negative) in diagnostics.
_CRASH_EXIT_CODE = 73

#: Seconds between liveness sweeps while waiting on the result queue.
_POLL_SECONDS = 0.1


class WorkerCrashError(RuntimeError):
    """A shard failed on both its attempts."""

    def __init__(self, shard_index: int, causes: Sequence[str]) -> None:
        self.shard_index = shard_index
        self.causes = tuple(causes)
        detail = "; then ".join(self.causes)
        super().__init__(
            f"shard {shard_index} failed {len(self.causes)} time(s) "
            f"(rescheduled once): {detail}"
        )


@dataclass(frozen=True)
class ObsCapture:
    """Which observability components each shard must replicate.

    Mirrors the parent's enabled components so a shard instruments
    exactly what the parent would have — no more (cost), no less
    (holes in the merged export).
    """

    metrics: bool = False
    events: bool = False
    recorder: bool = False
    recorder_capacity: int = 120
    recorder_post_periods: int = 5
    tsdb: bool = False
    tsdb_retention: int = 4096
    profiler: bool = False
    profiler_mode: str = "cost-model"
    profiler_sample_every: int = 64

    @classmethod
    def from_instrumentation(cls, obs: Instrumentation) -> "ObsCapture":
        recorder = obs.recorder.enabled
        tsdb = obs.tsdb.enabled
        profiler = obs.profiler.enabled
        return cls(
            metrics=obs.registry.enabled,
            events=obs.events.enabled,
            recorder=recorder,
            recorder_capacity=(
                obs.recorder.capacity if recorder else 120
            ),
            recorder_post_periods=(
                obs.recorder.post_alarm_periods if recorder else 5
            ),
            tsdb=tsdb,
            tsdb_retention=(obs.tsdb.retention if tsdb else 4096),
            profiler=profiler,
            profiler_mode=(
                obs.profiler.mode if profiler else "cost-model"
            ),
            profiler_sample_every=(
                obs.profiler.sample_every if profiler else 64
            ),
        )

    @property
    def any(self) -> bool:
        return (
            self.metrics or self.events or self.recorder or self.tsdb
            or self.profiler
        )

    def build(self) -> Tuple[Instrumentation, Optional[MemorySink]]:
        """A fresh shard-private bundle (and its memory sink, when
        events are captured)."""
        sink: Optional[MemorySink] = None
        events: Optional[EventLog] = None
        if self.events:
            sink = MemorySink(max_events=None)
            events = EventLog(sink)
        recorder: Optional[FlightRecorder] = None
        if self.recorder:
            recorder = FlightRecorder(
                capacity=self.recorder_capacity,
                post_alarm_periods=self.recorder_post_periods,
                events=events,
            )
        # Shard stores keep only the detector feed: a shard's registry
        # holds partial counters and its unbounded sink never drops, so
        # per-period snapshots are the parent's to reconstruct at merge
        # time (record_snapshots=False).
        tsdb: Optional[TimeSeriesDB] = None
        if self.tsdb:
            tsdb = TimeSeriesDB(
                retention=self.tsdb_retention, record_snapshots=False
            )
        # A shard profiler accumulates raw stage counts only; derived
        # documents and tsdb stage series are the parent's business
        # (the shard tsdb above never ticks).
        profiler: Optional[Profiler] = None
        if self.profiler:
            profiler = Profiler(
                mode=self.profiler_mode,
                sample_every=self.profiler_sample_every,
            )
        return (
            Instrumentation(
                registry=MetricsRegistry() if self.metrics else None,
                events=events,
                recorder=recorder,
                tsdb=tsdb,
                profiler=profiler,
            ),
            sink,
        )


@dataclass(frozen=True)
class ShardResult:
    """Everything one shard ships home."""

    shard_index: int
    #: ``(grid_index, payload)`` pairs, in grid order.
    results: Tuple[Tuple[int, Any], ...]
    #: Snapshot of the shard's private registry (None when metrics are
    #: not captured).
    registry: Optional[Snapshot] = None
    #: ``(grid_index, events)`` groups — the events each item emitted.
    events: Tuple[Tuple[int, Tuple[Dict[str, Any], ...]], ...] = ()
    #: Flight-recorder alarm contexts completed during the shard.
    contexts: Tuple[Dict[str, Any], ...] = ()
    #: Snapshot of the shard's time-series store (feed samples only;
    #: None when history is not captured).
    tsdb: Optional[Dict[str, Any]] = None
    #: Raw per-stage profiler counts (None when profiling is off).
    profiler: Optional[Dict[str, Dict[str, int]]] = None


# ----------------------------------------------------------------------
# Crash injection (the repro.faults agent-crash model, aimed at us)
# ----------------------------------------------------------------------
def _crash_points(
    fault_schedule: Optional[FaultSchedule],
) -> Tuple[Tuple[int, int, int], ...]:
    """``(shard, attempt, after_items)`` triples from the schedule's
    ``crash`` specs.  Specs without a ``shard`` param belong to the
    period-level chaos model, not the engine, and are ignored here."""
    if fault_schedule is None:
        return ()
    points = []
    for spec in fault_schedule.specs:
        if spec.kind != FaultKind.CRASH or "shard" not in spec.params:
            continue
        points.append(
            (
                int(spec.params["shard"]),
                int(spec.params.get("attempt", 0)),
                int(spec.params.get("after_items", 0)),
            )
        )
    return tuple(points)


def _maybe_crash(
    crash_points: Tuple[Tuple[int, int, int], ...],
    shard_index: int,
    attempt: int,
    items_done: int,
) -> None:
    for shard, crash_attempt, after_items in crash_points:
        if (
            shard == shard_index
            and crash_attempt == attempt
            and after_items == items_done
        ):
            # Die the way a real agent crash does: no unwinding, no
            # result, no goodbye — the parent sees only the exit code.
            os._exit(_CRASH_EXIT_CODE)


# ----------------------------------------------------------------------
# Shard execution (runs in the worker process AND inline)
# ----------------------------------------------------------------------
def _execute_shard(
    plan: WorkPlan,
    worker_fn: Callable[[Any, Instrumentation], Any],
    shard_index: int,
    attempt: int,
    capture: ObsCapture,
    crash_points: Tuple[Tuple[int, int, int], ...],
) -> ShardResult:
    """Run one shard to completion against a private obs bundle.

    Shared verbatim by the subprocess and inline paths — the structural
    guarantee that ``--workers 1`` output matches ``--workers N``.
    """
    obs, sink = capture.build()
    shard_items = plan.shard(shard_index)
    results: List[Tuple[int, Any]] = []
    event_groups: List[Tuple[int, Tuple[Dict[str, Any], ...]]] = []
    for done, (grid_index, item) in enumerate(shard_items):
        _maybe_crash(crash_points, shard_index, attempt, done)
        watermark = len(sink.events) if sink is not None else 0
        payload = worker_fn(item, obs)
        results.append((grid_index, payload))
        if sink is not None:
            event_groups.append(
                (grid_index, tuple(sink.events[watermark:]))
            )
    _maybe_crash(crash_points, shard_index, attempt, len(shard_items))
    # Alarm contexts still pending when the shard's trace ends are
    # flushed now, into the last item's event group — the per-shard
    # analogue of Instrumentation.finalize().
    if capture.recorder:
        watermark = len(sink.events) if sink is not None else 0
        obs.recorder.flush()
        if sink is not None and event_groups and sink.events[watermark:]:
            last_index, last_events = event_groups[-1]
            event_groups[-1] = (
                last_index,
                last_events + tuple(sink.events[watermark:]),
            )
    return ShardResult(
        shard_index=shard_index,
        results=tuple(results),
        registry=(
            registry_snapshot(obs.registry) if capture.metrics else None
        ),
        events=tuple(event_groups),
        contexts=(
            tuple(obs.recorder.contexts) if capture.recorder else ()
        ),
        tsdb=tsdb_snapshot(obs.tsdb) if capture.tsdb else None,
        profiler=(
            obs.profiler.to_snapshot() if capture.profiler else None
        ),
    )


def _shard_entry(
    queue: "multiprocessing.Queue",
    plan: WorkPlan,
    worker_fn: Callable[[Any, Instrumentation], Any],
    shard_index: int,
    attempt: int,
    capture: ObsCapture,
    crash_points: Tuple[Tuple[int, int, int], ...],
) -> None:
    """Worker-process entry point: execute, report, flush, exit."""
    try:
        # A forked child inherits the parent's process-default
        # instrumentation — including any open JSONL sink fds.  Null it
        # out so code that resolves the default (instead of using the
        # shard bundle it was passed) cannot interleave writes into the
        # parent's files; shard observability flows home via capture.
        set_instrumentation(NULL_INSTRUMENTATION)
        result = _execute_shard(
            plan, worker_fn, shard_index, attempt, capture, crash_points
        )
        queue.put(("ok", shard_index, result))
    except BaseException:
        queue.put(("error", shard_index, traceback.format_exc()))
    finally:
        # Guarantee the feeder thread has handed our message to the
        # pipe before the process exits, or the parent would see a
        # clean exit with no result — indistinguishable from a crash.
        queue.close()
        queue.join_thread()


# ----------------------------------------------------------------------
# The parent-side scheduler
# ----------------------------------------------------------------------
def _mp_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _merge_into_parent(
    obs: Instrumentation,
    plan: WorkPlan,
    by_shard: Dict[int, ShardResult],
    capture: ObsCapture,
) -> None:
    """Fold every shard's observability into the parent bundle.

    The whole fold is itself a profiled stage (``merge.fold``): one
    call per :func:`run_plan` merge, with every item folded counted as
    a unit of work.  Both are pure functions of the plan — the stage's
    counts stay worker-invariant.
    """
    prof = (
        obs.profiler.stage("merge.fold", sample_every=1)
        if obs.profiler.enabled
        else None
    )
    token = None if prof is None else prof.begin()
    if capture.metrics:
        for shard_index in plan.merge_order():
            snapshot = by_shard[shard_index].registry
            if snapshot:
                merge_snapshot(obs.registry, snapshot)
    if capture.tsdb:
        merge_tsdb_snapshots(
            obs.tsdb,
            (
                by_shard[shard_index].tsdb
                for shard_index in plan.merge_order()
                if by_shard[shard_index].tsdb is not None
            ),
        )
    if capture.events:
        groups: List[Tuple[int, Tuple[Dict[str, Any], ...]]] = []
        for result in by_shard.values():
            groups.extend(result.events)
        # The event replay also reconstructs the parent's event-loss
        # watermark series (drops happen here, against the parent's
        # bounded sinks — exactly where a serial run dropped).
        merge_event_groups(
            obs.events, groups, tsdb=obs.tsdb if capture.tsdb else None
        )
    if capture.recorder:
        for shard_index in plan.merge_order():
            for context in by_shard[shard_index].contexts:
                obs.recorder.contexts.append(context)
                obs.recorder.contexts_emitted += 1
    if capture.profiler and obs.profiler.enabled:
        for shard_index in plan.merge_order():
            snapshot = by_shard[shard_index].profiler
            if snapshot:
                obs.profiler.merge_from(snapshot)
    if prof is not None:
        items = sum(len(result.results) for result in by_shard.values())
        prof.end(token, packets=items)


def run_plan(
    plan: WorkPlan,
    worker_fn: Callable[[Any, Instrumentation], Any],
    workers: Optional[int] = None,
    obs: Optional[Instrumentation] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> List[Any]:
    """Execute *plan* and return per-item payloads in grid order.

    ``worker_fn`` must be a module-level callable (it crosses a process
    boundary) taking ``(item, obs)`` and returning a picklable payload;
    it must instrument through the *passed* ``obs`` only.
    """
    obs = resolve_instrumentation(obs)
    workers = effective_workers(workers)
    capture = ObsCapture.from_instrumentation(obs)
    crash_points = _crash_points(fault_schedule)
    if not plan.items:
        return []

    by_shard: Dict[int, ShardResult] = {}
    if workers == 1:
        for shard_index in range(plan.num_shards):
            by_shard[shard_index] = _execute_shard(
                plan, worker_fn, shard_index, attempt=0, capture=capture,
                crash_points=(),  # cannot os._exit the parent
            )
    else:
        _run_sharded(
            plan, worker_fn, workers, capture, crash_points, by_shard,
            registry=obs.registry if obs.registry.enabled else None,
        )

    _merge_into_parent(obs, plan, by_shard, capture)
    payloads: List[Any] = [None] * len(plan.items)
    for result in by_shard.values():
        for grid_index, payload in result.results:
            payloads[grid_index] = payload
    return payloads


def _run_sharded(
    plan: WorkPlan,
    worker_fn: Callable[[Any, Instrumentation], Any],
    workers: int,
    capture: ObsCapture,
    crash_points: Tuple[Tuple[int, int, int], ...],
    by_shard: Dict[int, ShardResult],
    registry: Optional[Any] = None,
) -> None:
    """Pull shards through a bounded pool of single-shard processes."""
    ctx = _mp_context()
    queue: "multiprocessing.Queue" = ctx.Queue()
    pending = list(range(plan.num_shards))
    attempts: Dict[int, int] = {k: 0 for k in pending}
    failures: Dict[int, List[str]] = {k: [] for k in pending}
    running: Dict[int, Any] = {}

    def launch(shard_index: int) -> None:
        process = ctx.Process(
            target=_shard_entry,
            args=(
                queue, plan, worker_fn, shard_index,
                attempts[shard_index], capture, crash_points,
            ),
            daemon=True,
        )
        process.start()
        running[shard_index] = process

    def fail_or_retry(shard_index: int, cause: str) -> None:
        failures[shard_index].append(cause)
        attempts[shard_index] += 1
        if attempts[shard_index] > 1:
            for process in running.values():
                process.terminate()
            raise WorkerCrashError(shard_index, failures[shard_index])
        if registry is not None:
            # Registered lazily, on the first actual reschedule: an
            # always-present zero would leak into exports serial runs
            # never write.  Scheduling accidents are host facts, so the
            # name is excluded from byte-identity projections (see
            # merge._is_deterministic_name) but feeds the
            # worker_retries builtin alert rule live.
            registry.counter(
                "parallel_worker_retries_total",
                "Crashed worker shards rescheduled by the engine",
            ).inc()
        launch(shard_index)  # the one reschedule

    try:
        while len(by_shard) < plan.num_shards:
            while pending and len(running) < workers:
                launch(pending.pop(0))
            try:
                status, shard_index, payload = queue.get(
                    timeout=_POLL_SECONDS
                )
            except Exception:  # queue.Empty — sweep for silent deaths
                for shard_index, process in list(running.items()):
                    if process.exitcode is None:
                        continue
                    if process.exitcode == 0:
                        # Exited cleanly: its result is in the pipe (the
                        # worker joined the feeder before exiting) and
                        # the next get() will deliver it.
                        continue
                    del running[shard_index]
                    process.join()
                    fail_or_retry(
                        shard_index,
                        f"worker died with exit code {process.exitcode}",
                    )
                continue
            process = running.pop(shard_index, None)
            if process is not None:
                process.join()
            if status == "ok":
                by_shard[shard_index] = payload
            else:
                fail_or_retry(shard_index, f"worker raised:\n{payload}")
    finally:
        for process in running.values():
            process.terminate()
        for process in running.values():
            process.join()
        queue.close()
