"""Sharded parallel execution of experiment grids.

``WorkPlan`` deals a grid into worker-count-independent shards;
``run_plan`` executes them across processes (or inline at
``workers=1``) and merges results and observability back into the
parent — byte-identical output for any worker count.  See
``docs/architecture.md`` ("Parallel execution") for the design.
"""

from .engine import ObsCapture, ShardResult, WorkerCrashError, run_plan
from .workplan import (
    DEFAULT_NUM_SHARDS,
    WorkPlan,
    derive_seed,
    effective_workers,
)

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "ObsCapture",
    "ShardResult",
    "WorkPlan",
    "WorkerCrashError",
    "derive_seed",
    "effective_workers",
    "run_plan",
]
