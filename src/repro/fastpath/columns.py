"""Columnar pcap scanner: record blocks → parallel offset/length/time arrays.

:class:`ColumnarPcapReader` is the batched twin of
:class:`~repro.pcap.reader.PcapReader`.  It walks the record headers of
a capture in *runs* — consecutive records sharing one capture length —
so a uniform trace (the common case: every handshake frame is 54 bytes)
costs O(1) Python per block, and a mixed trace degrades gracefully to
one Python iteration per size change, never per record.  Timestamps and
capture lengths are then gathered with vectorized byte loads.

The error contract is byte-for-byte the object reader's:

* malformed global header / unsupported linktype →
  :class:`PcapFormatError` from the constructor;
* ``incl_len > snaplen + 65536`` → :class:`PcapFormatError`
  (``implausible capture length``) raised even in tolerant mode, checked
  *before* body completeness, exactly like the streaming reader;
* a stream ending mid-record → :class:`PcapTruncatedError` carrying the
  same message, ``byte_offset`` and ``records_read`` the object reader
  would report — raised in strict mode, stashed on :attr:`truncation`
  in tolerant mode.

The differential suite asserts all of this against ``PcapReader`` on
both well-formed and fault-injected images.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..pcap.format import (
    GLOBAL_HEADER_LENGTH,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    RECORD_HEADER_LENGTH,
    GlobalHeader,
    PcapFormatError,
    PcapTruncatedError,
)

__all__ = ["DEFAULT_BLOCK_BYTES", "RecordBlock", "ColumnarPcapReader"]

#: Bytes of capture data parsed per block.  Large enough that the
#: per-block Python overhead amortizes to nothing; small enough that an
#: unbounded capture never needs to be resident in memory.
DEFAULT_BLOCK_BYTES = 4 << 20


@dataclass
class RecordBlock:
    """One parsed block: the raw bytes plus parallel per-record columns.

    ``offsets`` point at record *bodies* (first captured byte) inside
    ``buffer``; ``caplens`` are the captured lengths; ``timestamps`` are
    float64 seconds computed exactly as ``RecordHeader.timestamp`` does.
    """

    buffer: bytes
    offsets: np.ndarray     # int64, body offset of each record in buffer
    caplens: np.ndarray     # int64, captured bytes per record
    timestamps: np.ndarray  # float64 seconds

    def __len__(self) -> int:
        return int(self.offsets.size)


def _gather_u32(u8: np.ndarray, offsets: np.ndarray, byte_order: str) -> np.ndarray:
    """Vectorized 4-byte unsigned loads at arbitrary offsets."""
    b0 = u8[offsets].astype(np.uint32)
    b1 = u8[offsets + 1].astype(np.uint32)
    b2 = u8[offsets + 2].astype(np.uint32)
    b3 = u8[offsets + 3].astype(np.uint32)
    if byte_order == "<":
        return b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)
    return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3


class ColumnarPcapReader:
    """Streaming block-columnar pcap reader (the fastpath ingress).

    Mirrors :class:`~repro.pcap.reader.PcapReader`'s running totals so
    callers can audit a pass the same way:

    ``records_read``
        Complete records parsed so far.
    ``truncation``
        The :class:`PcapTruncatedError` encountered in tolerant mode,
        or None when the stream ended cleanly (so far).
    """

    def __init__(self, stream: BinaryIO, obs: Optional[Any] = None) -> None:
        self._stream = stream
        self._owns_stream = False
        header_bytes = stream.read(GLOBAL_HEADER_LENGTH)
        self.header = GlobalHeader.decode(header_bytes)
        if self.header.network not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
            raise PcapFormatError(
                f"unsupported linktype: {self.header.network}"
            )
        self.records_read = 0
        self.truncation: Optional[PcapTruncatedError] = None
        self._base = len(header_bytes)  # file offset of the unparsed tail
        # Bind-once profiler stage (repro.obs hot-path contract); one
        # begin/end pair per *block*, not per record.
        self._prof_parse = (
            obs.profiler.stage("fastpath.parse", sample_every=1)
            if obs is not None and obs.profiler.enabled
            else None
        )

    @classmethod
    def open(
        cls, path: Union[str, Path], obs: Optional[Any] = None
    ) -> "ColumnarPcapReader":
        stream = Path(path).open("rb")
        try:
            reader = cls(stream, obs=obs)
        except Exception:
            stream.close()
            raise
        reader._owns_stream = True
        return reader

    @classmethod
    def from_bytes(
        cls, image: bytes, obs: Optional[Any] = None
    ) -> "ColumnarPcapReader":
        return cls(io.BytesIO(image), obs=obs)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "ColumnarPcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Block parsing
    # ------------------------------------------------------------------
    def iter_blocks(
        self,
        strict: bool = True,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ) -> Iterator[RecordBlock]:
        """Yield :class:`RecordBlock`\\ s until EOF (or truncation in
        tolerant mode).  Results are invariant to ``block_bytes``: a
        record spanning two reads is carried into the next block, and
        the boundary-split regression tests pin counts and statistics
        down at block sizes from one record to the whole file.
        """
        block_bytes = max(int(block_bytes), RECORD_HEADER_LENGTH)
        cap_limit = self.header.snaplen + 65536
        byte_order = self.header.byte_order
        unpack_incl = struct.Struct(byte_order + "I").unpack_from
        divisor = self.header.timestamp_divisor
        prof = self._prof_parse
        buf = b""
        pos = 0
        eof = False
        while True:
            if not eof:
                chunk = self._stream.read(block_bytes)
                if chunk:
                    if pos or buf:
                        self._base += pos
                        buf = buf[pos:] + chunk
                        pos = 0
                    else:
                        buf = chunk
                else:
                    eof = True
            token = None if prof is None else prof.begin()
            u8 = np.frombuffer(buf, dtype=np.uint8)
            limit = len(buf)
            # Run-based header walk: each iteration accepts a maximal
            # run of complete records sharing one capture length.
            runs: List[Tuple[int, int, int, int]] = []
            while pos + RECORD_HEADER_LENGTH <= limit:
                incl = unpack_incl(buf, pos + 8)[0]
                if incl > cap_limit:
                    raise PcapFormatError(
                        f"implausible capture length {incl}"
                    )
                stride = RECORD_HEADER_LENGTH + incl
                if pos + stride > limit:
                    break  # body incomplete in this buffer
                run = (limit - pos) // stride
                if run > 1:
                    heads = pos + stride * np.arange(run, dtype=np.int64)
                    incls = _gather_u32(u8, heads + 8, byte_order)
                    mismatch = np.flatnonzero(incls != incl)
                    if mismatch.size:
                        run = int(mismatch[0])
                runs.append((pos, stride, run, incl))
                self.records_read += run
                pos += stride * run
            if runs:
                if len(runs) == 1:
                    start, stride, count, incl = runs[0]
                    heads = start + stride * np.arange(count, dtype=np.int64)
                    caplens = np.full(count, incl, dtype=np.int64)
                else:
                    heads = np.concatenate([
                        start + stride * np.arange(count, dtype=np.int64)
                        for start, stride, count, _incl in runs
                    ])
                    caplens = np.concatenate([
                        np.full(count, incl, dtype=np.int64)
                        for _start, _stride, count, incl in runs
                    ])
                sec = _gather_u32(u8, heads, byte_order).astype(np.float64)
                frac = _gather_u32(u8, heads + 4, byte_order).astype(np.float64)
                block = RecordBlock(
                    buffer=buf,
                    offsets=heads + RECORD_HEADER_LENGTH,
                    caplens=caplens,
                    timestamps=sec + frac / divisor,
                )
                if prof is not None:
                    prof.end(
                        token, packets=len(block), nbytes=int(caplens.sum())
                    )
                yield block
            if eof:
                avail = limit - pos
                if avail == 0:
                    return  # clean EOF at a record boundary
                if avail < RECORD_HEADER_LENGTH:
                    error = PcapTruncatedError(
                        f"record header cut short at {avail} bytes",
                        byte_offset=self._base + pos,
                        records_read=self.records_read,
                    )
                else:
                    incl = unpack_incl(buf, pos + 8)[0]
                    error = PcapTruncatedError(
                        f"record body cut short: "
                        f"{avail - RECORD_HEADER_LENGTH} of "
                        f"{incl} captured bytes",
                        byte_offset=self._base + pos,
                        records_read=self.records_read,
                    )
                if strict:
                    raise error
                self.truncation = error
                return
