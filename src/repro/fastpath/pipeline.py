"""The columnar detection pipeline: scan → merge → periodize → SynDog.

Feeds :class:`~repro.core.syndog.SynDog` the *same per-period count
deltas* the object pipeline's :class:`~repro.core.sniffer.CountExchange`
would emit, computed with vectorized passes instead of per-packet
callbacks:

* the two interface captures are scanned into decoded-record columns
  (timestamp + class code) by :func:`scan_capture`;
* the directions are merged in global timestamp order — a stable
  lexsort on (timestamp, direction) when both captures are time-sorted,
  an exact two-pointer replica of ``heapq.merge`` (ties outbound-first)
  when a fault-injected capture is reordered;
* period boundaries replicate ``CountExchange``'s *accumulated* float
  clock (``start += t0`` per close, not ``start + k*t0``), and each
  packet lands in the period given by the running max of merged
  timestamps — bit-for-bit the exchange's behaviour on out-of-order
  timestamps;
* per-period (SYN, SYN/ACK) counts come from ``np.bincount`` and are
  fed through ``SynDog.observe_period`` with the exact start times the
  exchange would report, so normalization, CUSUM, TSDB series, events,
  alerts and the ``cusum.step`` profiler stage are untouched.

Metrics parity: the sniffer/exchange counter totals
(``sniffer_packets_total``, ``sniffer_packets_counted_total``,
``exchange_periods_total``) are bulk-incremented to the values the
object run would leave, and the detector's exchange clock is synced so
checkpoints taken after a fastpath run equal the object pipeline's.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, List, Optional, Tuple, Union

import numpy as np

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.sniffer import Direction
from ..core.syndog import DetectionResult, SynDog
from ..packet.classify import ClassifierStats
from ..pcap.format import LINKTYPE_ETHERNET, PcapTruncatedError
from .classify import CLASS_SKIP, CLASS_SYN, CLASS_SYN_ACK, accumulate_stats, classify_block
from .columns import DEFAULT_BLOCK_BYTES, ColumnarPcapReader

__all__ = [
    "DirectionColumns",
    "scan_capture",
    "detect_from_pcap_images",
    "detect_from_pcaps_fast",
    "counts_from_pcaps_fast",
]

PathLike = Union[str, Path]
Source = Union[str, Path, bytes, BinaryIO]

_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)


@dataclass
class DirectionColumns:
    """One interface capture reduced to decoded-record columns.

    Skipped (undecodable) records are excluded from the columns — they
    never reach the sniffers in the object pipeline — but stay audited
    in ``skipped_records``, mirroring ``PcapReader``'s counters.
    """

    timestamps: np.ndarray  # float64, decoded records in capture order
    codes: np.ndarray       # uint8 class codes, aligned with timestamps
    steps: np.ndarray       # uint8 rejection-step codes, aligned
    records_read: int
    skipped_records: int
    truncation: Optional[PcapTruncatedError]

    @property
    def decoded(self) -> int:
        return int(self.timestamps.size)

    def classifier_stats(self) -> ClassifierStats:
        """The statistics a ``PacketClassifier`` fed every decoded
        packet would hold (the oracle the differential suite compares
        against)."""
        return accumulate_stats(ClassifierStats(), self.codes, self.steps)


def scan_capture(
    source: Source,
    strict: bool = False,
    obs: Optional[Any] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> DirectionColumns:
    """Scan one capture (path, bytes image, or open binary stream) into
    :class:`DirectionColumns`.  Tolerant by default, like the streaming
    detection entry points; raw block buffers are dropped as soon as
    each block is classified, so memory stays O(block)."""
    if isinstance(source, (str, Path)):
        reader = ColumnarPcapReader.open(source, obs=obs)
    elif isinstance(source, (bytes, bytearray, memoryview)):
        reader = ColumnarPcapReader(io.BytesIO(bytes(source)), obs=obs)
    else:
        reader = ColumnarPcapReader(source, obs=obs)
    ethernet = reader.header.network == LINKTYPE_ETHERNET
    prof_classify = (
        obs.profiler.stage("fastpath.classify", sample_every=1)
        if obs is not None and obs.profiler.enabled
        else None
    )
    ts_parts: List[np.ndarray] = []
    code_parts: List[np.ndarray] = []
    step_parts: List[np.ndarray] = []
    skipped = 0
    try:
        for block in reader.iter_blocks(strict=strict, block_bytes=block_bytes):
            token = None if prof_classify is None else prof_classify.begin()
            codes, steps = classify_block(block, ethernet)
            keep = codes != CLASS_SKIP
            kept = int(np.count_nonzero(keep))
            skipped += codes.size - kept
            if kept == codes.size:
                ts_parts.append(block.timestamps)
                code_parts.append(codes)
                step_parts.append(steps)
            elif kept:
                ts_parts.append(block.timestamps[keep])
                code_parts.append(codes[keep])
                step_parts.append(steps[keep])
            if prof_classify is not None:
                prof_classify.end(
                    token, packets=len(block), nbytes=int(block.caplens.sum())
                )
    finally:
        reader.close()
    if ts_parts:
        timestamps = np.concatenate(ts_parts)
        codes = np.concatenate(code_parts)
        steps = np.concatenate(step_parts)
    else:
        timestamps, codes, steps = _EMPTY_F8, _EMPTY_U8, _EMPTY_U8
    return DirectionColumns(
        timestamps=timestamps,
        codes=codes,
        steps=steps,
        records_read=reader.records_read,
        skipped_records=skipped,
        truncation=reader.truncation,
    )


# ----------------------------------------------------------------------
# Merge + periodize
# ----------------------------------------------------------------------
def _two_pointer_merge(ts_out: np.ndarray, ts_in: np.ndarray) -> np.ndarray:
    """Exact replica of ``heapq.merge`` over the two tagged streams
    (tags 0=outbound, 1=inbound): repeatedly take whichever stream's
    head has the smaller (timestamp, tag) key.  Valid for *unsorted*
    inputs too — reordered fault-injected captures — because with two
    iterators the heap degenerates to this head-vs-head comparison."""
    n_out, n_in = len(ts_out), len(ts_in)
    order = np.empty(n_out + n_in, dtype=np.int64)
    a = ts_out.tolist()
    b = ts_in.tolist()
    i = j = k = 0
    while i < n_out and j < n_in:
        if a[i] <= b[j]:  # ties break outbound-first: (t, 0) < (t, 1)
            order[k] = i
            i += 1
        else:
            order[k] = n_out + j
            j += 1
        k += 1
    while i < n_out:
        order[k] = i
        i += 1
        k += 1
    while j < n_in:
        order[k] = n_out + j
        j += 1
        k += 1
    return order


def _is_sorted(ts: np.ndarray) -> bool:
    return ts.size < 2 or bool(np.all(ts[1:] >= ts[:-1]))


@dataclass
class _Merged:
    timestamps: np.ndarray  # float64, merged order
    outbound: np.ndarray    # bool, lane came from the outbound capture
    codes: np.ndarray       # uint8, merged order


def _merge_columns(out: DirectionColumns, inb: DirectionColumns) -> _Merged:
    ts = np.concatenate([out.timestamps, inb.timestamps])
    tag = np.zeros(ts.size, dtype=np.uint8)
    tag[out.decoded:] = 1
    codes = np.concatenate([out.codes, inb.codes])
    if _is_sorted(out.timestamps) and _is_sorted(inb.timestamps):
        # Stable sort on (timestamp, tag) == heapq.merge on sorted input.
        order = np.lexsort((tag, ts))
    else:
        order = _two_pointer_merge(out.timestamps, inb.timestamps)
    return _Merged(
        timestamps=ts[order], outbound=tag[order] == 0, codes=codes[order]
    )


@dataclass
class _Periodized:
    """Per-period counts plus the per-packet period index column."""

    starts: List[float]          # accumulated period start times, len P+1
    syn_counts: np.ndarray       # int64, len P+1 (last = unflushed period)
    synack_counts: np.ndarray    # int64, len P+1
    packet_period: np.ndarray    # int64 per merged packet
    closed_periods: int          # P: periods packet timestamps closed

    @property
    def flush_period(self) -> int:
        return self.closed_periods


def _periodize(merged: _Merged, period: float, start_time: float = 0.0) -> _Periodized:
    """Replicate ``CountExchange``'s period arithmetic over columns.

    Boundaries are produced by *repeated addition* (``start += t0``),
    matching the exchange's float accumulation exactly; a packet counts
    toward the period implied by the running max of merged timestamps,
    which is how the exchange treats timestamps that step backwards.
    """
    ts = merged.timestamps
    boundaries: List[float] = []
    starts: List[float] = [start_time]
    if ts.size:
        running_max = np.maximum.accumulate(ts)
        last = float(running_max[-1])
        boundary = start_time + period
        while last >= boundary:
            boundaries.append(boundary)
            starts.append(boundary)
            boundary += period
        packet_period = np.searchsorted(
            np.asarray(boundaries, dtype=np.float64), running_max, side="right"
        )
    else:
        packet_period = np.empty(0, dtype=np.int64)
    closed = len(boundaries)
    syn_lane = merged.outbound & (merged.codes == CLASS_SYN)
    synack_lane = ~merged.outbound & (merged.codes == CLASS_SYN_ACK)
    syn_counts = np.bincount(
        packet_period[syn_lane], minlength=closed + 1
    ).astype(np.int64)
    synack_counts = np.bincount(
        packet_period[synack_lane], minlength=closed + 1
    ).astype(np.int64)
    return _Periodized(
        starts=starts,
        syn_counts=syn_counts,
        synack_counts=synack_counts,
        packet_period=packet_period,
        closed_periods=closed,
    )


# ----------------------------------------------------------------------
# Metrics parity
# ----------------------------------------------------------------------
def _bulk_counter_totals(
    registry: Any,
    out_seen: int,
    out_counted: int,
    in_seen: int,
    in_counted: int,
    periods: int,
) -> None:
    """Advance the sniffer/exchange counter families to the totals a
    packet-at-a-time object run would have accumulated."""
    seen = registry.counter(
        "sniffer_packets_total",
        "Packets inspected at the sniffers, by direction",
        ("direction",),
    )
    counted = registry.counter(
        "sniffer_packets_counted_total",
        "Packets matching the sniffer's target class, by direction",
        ("direction",),
    )
    period_counter = registry.counter(
        "exchange_periods_total",
        "Observation periods closed by the count exchange",
    )
    if out_seen:
        seen.labels(Direction.OUTBOUND).inc(out_seen)
    if in_seen:
        seen.labels(Direction.INBOUND).inc(in_seen)
    if out_counted:
        counted.labels(Direction.OUTBOUND).inc(out_counted)
    if in_counted:
        counted.labels(Direction.INBOUND).inc(in_counted)
    if periods:
        period_counter.inc(periods)


def _drive_detector(
    detector: SynDog,
    merged: _Merged,
    grid: _Periodized,
    stop_at_first_alarm: bool,
) -> None:
    """Feed the periodized counts through ``SynDog.observe_period`` with
    the object pipeline's exact semantics, including the packet-group
    granularity of ``stop_at_first_alarm`` (the object path checks the
    alarm only after consuming *all* periods one packet closed) and the
    final single-period flush when no early stop happens."""
    period = detector.parameters.observation_period
    starts = grid.starts
    syn = grid.syn_counts
    synack = grid.synack_counts
    exchange = detector.exchange
    registry_live = exchange._m_out_seen is not None

    def observe(k: int) -> bool:
        record = detector.observe_period(
            int(syn[k]), int(synack[k]), start_time=starts[k]
        )
        return record.alarm

    if stop_at_first_alarm and grid.closed_periods:
        packet_period = grid.packet_period
        previous = np.concatenate(([0], packet_period[:-1]))
        closers = np.flatnonzero(packet_period > previous)
        for position in closers:
            low = int(previous[position])
            high = int(packet_period[position])
            alarmed = False
            for k in range(low, high):
                alarmed = observe(k) or alarmed
            if alarmed:
                # Early stop: the object run returns mid-stream, so the
                # exchange clock and the metric totals reflect only the
                # packets up to (and including) the closing one.
                exchange.load_state(
                    {"period_index": high, "period_start": starts[high]}
                )
                if registry_live:
                    prefix = slice(0, int(position) + 1)
                    lane_out = merged.outbound[prefix]
                    lane_codes = merged.codes[prefix]
                    _bulk_counter_totals(
                        _registry_of(exchange),
                        out_seen=int(np.count_nonzero(lane_out)),
                        out_counted=int(np.count_nonzero(
                            lane_out & (lane_codes == CLASS_SYN)
                        )),
                        in_seen=int(np.count_nonzero(~lane_out)),
                        in_counted=int(np.count_nonzero(
                            ~lane_out & (lane_codes == CLASS_SYN_ACK)
                        )),
                        periods=high,
                    )
                return
    else:
        for k in range(grid.closed_periods):
            observe(k)
    # End of stream: close the trailing period (``flush``).
    observe(grid.flush_period)
    closed = grid.closed_periods + 1
    exchange.load_state(
        {"period_index": closed, "period_start": starts[-1] + period}
    )
    if registry_live:
        _bulk_counter_totals(
            _registry_of(exchange),
            out_seen=int(np.count_nonzero(merged.outbound)),
            out_counted=int(np.count_nonzero(
                merged.outbound & (merged.codes == CLASS_SYN)
            )),
            in_seen=int(np.count_nonzero(~merged.outbound)),
            in_counted=int(np.count_nonzero(
                ~merged.outbound & (merged.codes == CLASS_SYN_ACK)
            )),
            periods=closed,
        )


class _HandleRegistry:
    """Adapter presenting the exchange's bound counter handles through
    the registry.counter(...).labels(...) shape ``_bulk_counter_totals``
    uses, so detect and counts share one bulk-increment path."""

    def __init__(self, exchange: Any) -> None:
        self._exchange = exchange

    def counter(self, name: str, _help: str, labelnames: Tuple[str, ...] = ()) -> Any:
        exchange = self._exchange
        if name == "sniffer_packets_total":
            return _HandleFamily({
                Direction.OUTBOUND: exchange._m_out_seen,
                Direction.INBOUND: exchange._m_in_seen,
            })
        if name == "sniffer_packets_counted_total":
            return _HandleFamily({
                Direction.OUTBOUND: exchange._m_out_counted,
                Direction.INBOUND: exchange._m_in_counted,
            })
        return exchange._m_periods


class _HandleFamily:
    def __init__(self, handles: dict) -> None:
        self._handles = handles

    def labels(self, direction: str) -> Any:
        return self._handles[direction]


def _registry_of(exchange: Any) -> _HandleRegistry:
    return _HandleRegistry(exchange)


# ----------------------------------------------------------------------
# Public entry points (the fastpath twins of experiments.streaming)
# ----------------------------------------------------------------------
def detect_from_sources(
    outbound: Source,
    inbound: Source,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    stop_at_first_alarm: bool = False,
    obs: Optional[Any] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    detector: Optional[SynDog] = None,
) -> Tuple[DetectionResult, SynDog]:
    """Columnar twin of
    :func:`repro.experiments.streaming.detect_from_pcaps` over any
    capture sources (paths, byte images, open streams)."""
    out_cols = scan_capture(
        outbound, strict=False, obs=obs, block_bytes=block_bytes
    )
    in_cols = scan_capture(
        inbound, strict=False, obs=obs, block_bytes=block_bytes
    )
    if detector is None:
        detector = SynDog(parameters=parameters, obs=obs)
    merged = _merge_columns(out_cols, in_cols)
    grid = _periodize(merged, detector.parameters.observation_period)
    _drive_detector(detector, merged, grid, stop_at_first_alarm)
    return detector.result(), detector


def detect_from_pcaps_fast(
    outbound_path: PathLike,
    inbound_path: PathLike,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    stop_at_first_alarm: bool = False,
    obs: Optional[Any] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Tuple[DetectionResult, SynDog]:
    """Drop-in columnar replacement for ``detect_from_pcaps`` — same
    tolerant truncation semantics, byte-identical results."""
    return detect_from_sources(
        outbound_path,
        inbound_path,
        parameters=parameters,
        stop_at_first_alarm=stop_at_first_alarm,
        obs=obs,
        block_bytes=block_bytes,
    )


def detect_from_pcap_images(
    outbound_image: bytes,
    inbound_image: bytes,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    stop_at_first_alarm: bool = False,
    obs: Optional[Any] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Tuple[DetectionResult, SynDog]:
    """In-memory variant (what the profiling workload drives)."""
    return detect_from_sources(
        outbound_image,
        inbound_image,
        parameters=parameters,
        stop_at_first_alarm=stop_at_first_alarm,
        obs=obs,
        block_bytes=block_bytes,
    )


def counts_from_pcaps_fast(
    outbound_path: PathLike,
    inbound_path: PathLike,
    period: float = 20.0,
    name: str = "pcap",
    block_bytes: int = DEFAULT_BLOCK_BYTES,
):
    """Columnar twin of
    :func:`repro.experiments.streaming.counts_from_pcaps`: aggregate two
    interface captures into a CountTrace with byte-identical per-period
    counts (including the trailing flush period)."""
    from ..obs.runtime import resolve_instrumentation
    from ..trace.events import CountTrace, TraceMetadata

    out_cols = scan_capture(outbound_path, strict=False, block_bytes=block_bytes)
    in_cols = scan_capture(inbound_path, strict=False, block_bytes=block_bytes)
    merged = _merge_columns(out_cols, in_cols)
    grid = _periodize(merged, float(period))
    reports = list(zip(grid.syn_counts.tolist(), grid.synack_counts.tolist()))
    # Metrics parity with the object aggregation, which feeds an
    # ambient-instrumented CountExchange packet by packet.
    obs = resolve_instrumentation(None)
    if obs.registry.enabled:
        _bulk_counter_totals(
            obs.registry,
            out_seen=out_cols.decoded,
            out_counted=int(np.count_nonzero(out_cols.codes == CLASS_SYN)),
            in_seen=in_cols.decoded,
            in_counted=int(np.count_nonzero(in_cols.codes == CLASS_SYN_ACK)),
            periods=grid.closed_periods + 1,
        )
    metadata = TraceMetadata(
        name=name,
        duration=len(reports) * period,
        bidirectional=False,
        description=f"aggregated from {outbound_path} / {inbound_path}",
    )
    return CountTrace(
        metadata=metadata,
        period=period,
        counts=tuple((int(syn), int(synack)) for syn, synack in reports),
    )
