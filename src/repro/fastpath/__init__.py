"""Columnar fast path: batched parse → classify → count pipeline.

The object pipeline walks ~5 µs/packet through ``Packet`` objects; this
package parses pcap record blocks straight into parallel numpy arrays
(timestamps, capture lengths, class codes), runs the paper's 3-step
classification as vectorized passes over the flag/length columns, and
feeds :class:`~repro.core.syndog.SynDog` per-period (SYN, SYN/ACK)
count deltas — downstream normalization, CUSUM, TSDB series, alerts and
the per-period profiler stage are untouched.

The object pipeline is retained permanently as the *differential
oracle*: per-period counts, classifier rejection/quarantine statistics
and detection results are byte-identical between the two paths on every
scenario, including fault-injected captures
(``tests/fastpath/test_differential.py`` pins the contract down).
"""

from .columns import (
    DEFAULT_BLOCK_BYTES,
    ColumnarPcapReader,
    RecordBlock,
)
from .classify import (
    CLASS_FIN,
    CLASS_NON_TCP,
    CLASS_RST,
    CLASS_SKIP,
    CLASS_SYN,
    CLASS_SYN_ACK,
    CLASS_TCP_OTHER,
    classify_block,
)
from .pipeline import (
    DirectionColumns,
    counts_from_pcaps_fast,
    detect_from_pcap_images,
    detect_from_pcaps_fast,
    scan_capture,
)

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "ColumnarPcapReader",
    "RecordBlock",
    "CLASS_SKIP",
    "CLASS_NON_TCP",
    "CLASS_SYN",
    "CLASS_SYN_ACK",
    "CLASS_RST",
    "CLASS_FIN",
    "CLASS_TCP_OTHER",
    "classify_block",
    "DirectionColumns",
    "scan_capture",
    "detect_from_pcap_images",
    "detect_from_pcaps_fast",
    "counts_from_pcaps_fast",
]
