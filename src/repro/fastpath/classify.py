"""Vectorized packet classification over record columns.

The paper's 3-step test (Section 2) as boolean-mask passes over a
:class:`~repro.fastpath.columns.RecordBlock`'s byte buffer, producing a
class code and a rejection-step code per record.  Semantics replicate
the object pipeline *exactly* — the decoded-``Packet`` route through
``Packet.decode_frame`` / ``Packet.decode_ip`` + ``classify_packet`` /
``explain_packet`` — not the looser raw-bytes classifier, because the
object path is the differential oracle:

* frame decode failures (short frame, non-IPv4 ethertype, short or
  non-v4 or options-bearing IP header, ``total_length`` below 20) →
  ``CLASS_SKIP``, the records ``iter_packets`` counts in
  ``skipped_records`` and never shows the sniffers;
* decoded but not first-fragment TCP → ``CLASS_NON_TCP`` with the same
  step (``non-tcp-protocol`` / ``fragment``) ``explain_packet`` names;
* TCP whose payload — clipped to ``min(total_length, captured)`` like
  ``IPv4Packet.decode`` — is too short or has a bad data offset →
  ``CLASS_NON_TCP`` with step ``truncated-flags`` (the quarantine path);
* surviving records get the flag-bit class with ``TCPSegment.kind``'s
  exact precedence (RST > SYN/ACK > SYN > FIN > other).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..packet.classify import ClassifierStats, PacketClass, RejectionStep
from .columns import RecordBlock

__all__ = [
    "CLASS_SKIP",
    "CLASS_NON_TCP",
    "CLASS_SYN",
    "CLASS_SYN_ACK",
    "CLASS_RST",
    "CLASS_FIN",
    "CLASS_TCP_OTHER",
    "STEP_NONE",
    "STEP_NON_TCP_PROTOCOL",
    "STEP_FRAGMENT",
    "STEP_TRUNCATED_FLAGS",
    "CLASS_CODE_TO_PACKET_CLASS",
    "STEP_CODE_TO_REJECTION",
    "classify_block",
    "accumulate_stats",
]

# Class codes (uint8 column alphabet).  SKIP marks records that fail to
# decode into a Packet at all — they never reach the classifier or the
# sniffers in the object pipeline.
CLASS_SKIP = 0
CLASS_NON_TCP = 1
CLASS_SYN = 2
CLASS_SYN_ACK = 3
CLASS_RST = 4
CLASS_FIN = 5
CLASS_TCP_OTHER = 6

# Rejection-step codes.  Only the three steps reachable on *decoded*
# packets appear (``explain_packet`` can never return NOT_IPV4/BAD_IHL:
# such frames already failed to decode and were skipped upstream).
STEP_NONE = 0
STEP_NON_TCP_PROTOCOL = 1
STEP_FRAGMENT = 2
STEP_TRUNCATED_FLAGS = 3

CLASS_CODE_TO_PACKET_CLASS: Dict[int, PacketClass] = {
    CLASS_NON_TCP: PacketClass.NON_TCP,
    CLASS_SYN: PacketClass.SYN,
    CLASS_SYN_ACK: PacketClass.SYN_ACK,
    CLASS_RST: PacketClass.RST,
    CLASS_FIN: PacketClass.FIN,
    CLASS_TCP_OTHER: PacketClass.TCP_OTHER,
}

STEP_CODE_TO_REJECTION: Dict[int, RejectionStep] = {
    STEP_NON_TCP_PROTOCOL: RejectionStep.NON_TCP_PROTOCOL,
    STEP_FRAGMENT: RejectionStep.FRAGMENT,
    STEP_TRUNCATED_FLAGS: RejectionStep.TRUNCATED_FLAGS,
}

_ETHERNET_HEADER = 14
_IP_HEADER = 20
_TCP_HEADER = 20


def classify_block(
    block: RecordBlock, ethernet: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Classify every record in *block*; returns (codes, steps) uint8
    columns aligned with the block's records.

    ``ethernet`` selects the link layer (LINKTYPE_ETHERNET strips a
    14-byte header and requires ethertype 0x0800; LINKTYPE_RAW decodes
    the captured bytes as IP directly).
    """
    n = int(block.offsets.size)
    codes = np.zeros(n, dtype=np.uint8)
    steps = np.zeros(n, dtype=np.uint8)
    if n == 0:
        return codes, steps
    u8 = np.frombuffer(block.buffer, dtype=np.uint8)
    last = len(u8) - 1

    def g(idx: np.ndarray) -> np.ndarray:
        # Clipped gather: out-of-range lanes are masked off by the
        # validity flags below, the clip just keeps the load legal.
        return u8[np.minimum(idx, last)]

    off = block.offsets
    cap = block.caplens
    if ethernet:
        ok = cap >= _ETHERNET_HEADER
        ethertype = (g(off + 12).astype(np.int32) << 8) | g(off + 13)
        ok &= ethertype == 0x0800
        ip_off = off + _ETHERNET_HEADER
        ip_len = cap - _ETHERNET_HEADER
    else:
        ok = np.ones(n, dtype=bool)
        ip_off = off
        ip_len = cap
    # Step 1a equivalent (IPv4Header.decode): intact fixed header,
    # version 4, IHL exactly 5, total_length >= 20.
    ok &= ip_len >= _IP_HEADER
    version_ihl = g(ip_off)
    ok &= (version_ihl >> 4) == 4
    ok &= (version_ihl & 0x0F) == 5
    total_length = (g(ip_off + 2).astype(np.int64) << 8) | g(ip_off + 3)
    ok &= total_length >= _IP_HEADER
    codes[ok] = CLASS_NON_TCP
    # Step 1b: protocol 6 and first fragment.
    protocol = g(ip_off + 9)
    fragment = ((g(ip_off + 6).astype(np.int32) & 0x1F) << 8) | g(ip_off + 7)
    tcp_protocol = ok & (protocol == 6)
    steps[ok & (protocol != 6)] = STEP_NON_TCP_PROTOCOL
    is_tcp = tcp_protocol & (fragment == 0)
    steps[tcp_protocol & (fragment != 0)] = STEP_FRAGMENT
    # Step 2: the payload IPv4Packet.decode hands to TCPSegment.decode
    # is clipped to min(total_length, captured IP bytes); the segment
    # decodes iff it holds a full 20-byte header and a sane data offset.
    payload_len = np.minimum(total_length, ip_len) - _IP_HEADER
    tcp_off = ip_off + _IP_HEADER
    data_offset = (g(tcp_off + 12).astype(np.int64) >> 4) * 4
    tcp_ok = (
        is_tcp
        & (payload_len >= _TCP_HEADER)
        & (data_offset >= _TCP_HEADER)
        & (data_offset <= payload_len)
    )
    steps[is_tcp & ~tcp_ok] = STEP_TRUNCATED_FLAGS
    # Step 3: the six flag bits, with TCPSegment.kind's precedence.
    flags = g(tcp_off + 13) & 0x3F
    tcp_class = np.full(n, CLASS_TCP_OTHER, dtype=np.uint8)
    tcp_class[(flags & 0x01) != 0] = CLASS_FIN
    syn = (flags & 0x02) != 0
    ack = (flags & 0x10) != 0
    tcp_class[syn & ~ack] = CLASS_SYN
    tcp_class[syn & ack] = CLASS_SYN_ACK
    tcp_class[(flags & 0x04) != 0] = CLASS_RST
    codes[tcp_ok] = tcp_class[tcp_ok]
    return codes, steps


def accumulate_stats(
    stats: ClassifierStats, codes: np.ndarray, steps: np.ndarray
) -> ClassifierStats:
    """Fold one batch of class/step codes into *stats*, exactly as a
    :class:`~repro.packet.classify.PacketClassifier` fed the decoded
    packets one at a time would.  SKIP lanes (undecodable records)
    contribute nothing — they never reach the classifier."""
    class_counts = np.bincount(codes, minlength=7)
    for code, packet_class in CLASS_CODE_TO_PACKET_CLASS.items():
        stats.counts[packet_class] += int(class_counts[code])
    step_counts = np.bincount(steps, minlength=4)
    for code, step in STEP_CODE_TO_REJECTION.items():
        stats.rejections[step] += int(step_counts[code])
    return stats
