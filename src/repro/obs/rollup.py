"""Fleet-scale telemetry rollups: mergeable digests over agent state.

Every obs surface before this module — per-agent ``/healthz`` rows,
per-agent ``syndog_*`` series, per-agent flight-recorder rings — is
linear in fleet size.  At the federation scales ROADMAP item 2 aims for
(10^4–10^6 leaf routers) a scrape that enumerates agents is a megabyte
document and a query over per-agent series is a full fleet walk.  This
module is the reduction layer: each shard of the fleet folds its
agents into a compact, *mergeable* digest, shard digests fold home
through :mod:`repro.obs.merge`, and every downstream surface (the
``/fleet`` endpoint, ``fleet_*`` TSDB series, fleet alert rules, the
``repro fleet`` CLI) works only on the reduction — O(K·buckets)
regardless of fleet size.

Three sketches, one rollup
--------------------------
:class:`QuantileDigest`
    A fixed-bucket histogram over one per-agent metric (``delta``,
    ``x_n``, ``cusum``, ``degraded_periods``) with count/sum/min/max
    sidecars.  Bucket bounds are fixed at construction, so merging two
    digests is element-wise integer addition — exact and associative.
    Quantiles interpolate within a bucket and clamp to the observed
    ``[min, max]``, so the open-ended overflow bucket can never report
    ``+inf``.
:class:`SpaceSavingTopK`
    The Metwally/Agrawal/El Abbadi Space-Saving summary, bounded to K
    counters, used for the "most alarming / most degraded /
    highest-CUSUM" suspect rankings.  ``mode="sum"`` is the classic
    heavy-hitter counter (weights add; evictions inherit the victim's
    weight and record it as the entry's error bound); ``mode="max"``
    ranks by a point-in-time value (a CUSUM level is not additive).
    All ties break on the agent name, so the summary is deterministic.
:class:`FleetRollup`
    Per-status population counters (``ok``/``degraded``/``alarming``/
    ``down``), one digest per metric, one top-K per ranking, plus the
    derived ``quorum`` and ``alarm_fraction``.

Merge algebra
-------------
``merge_from`` folds another rollup (or its ``to_dict`` snapshot) in.
Counters and bucket counts are integer additions — exact, associative,
commutative.  Min/max are lattice joins.  Float ``sum`` sidecars are
the one order-sensitive fold; merges iterate metrics and top-K entries
in sorted-key order ("order-normalized"), and the parallel engine
always folds shards in :meth:`WorkPlan.merge_order` — a pure function
of the plan, independent of ``--workers`` — so fleet documents are
byte-identical at any worker count.  Top-K truncation makes the
ranking itself approximate beyond K distinct keys (the recorded
``error`` bounds the overestimate, standard Space-Saving semantics);
below K keys the merge is exact.

The synthetic fleet
-------------------
:func:`synthetic_fleet_states` derives per-agent detector state as a
pure function of ``(seed, index)`` via SHA-512, so a 10^4-agent fleet
can be sharded across any worker count and every shard sees exactly
the same agents (``benchmarks/test_fleet_scale.py`` and the CI
fleet-smoke job byte-diff the resulting documents).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "AgentState",
    "DEFAULT_TOP_K",
    "FleetRollup",
    "QuantileDigest",
    "ROLLUP_BUCKETS",
    "SpaceSavingTopK",
    "rollup_from_events",
    "states_from_events",
    "states_from_recorder",
    "synthetic_fleet_states",
    "synthetic_shard_rollup",
]

#: Suspect-table size: every top-K ranking and the ``/fleet`` document
#: are bounded by this, independent of fleet size.
DEFAULT_TOP_K = 8

#: Fixed bucket upper bounds per rolled-up metric.  Values above the
#: last bound land in an implicit overflow bucket; quantiles there
#: report the observed max, never ``+inf``.  Fixed bounds are what make
#: the merge exact: two digests over the same bounds add bucket-wise.
ROLLUP_BUCKETS: Dict[str, Tuple[float, ...]] = {
    # SYN-SYNACK difference per period: negative under normal tear-down
    # jitter, grows without bound under flooding.
    "delta": (
        -1000.0, -100.0, -10.0, -1.0, 0.0, 1.0, 2.0, 5.0, 10.0, 25.0,
        50.0, 100.0, 250.0, 1000.0, 10000.0, 100000.0,
    ),
    # Normalized per-period statistic X_n: hovers near 0 when healthy.
    "x_n": (
        -0.5, -0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7,
        1.0, 1.5, 2.0,
    ),
    # CUSUM level y_n: the default alarm threshold is N = 1.05, so the
    # bounds are dense around [0.8, 1.2] where the p99 rule watches.
    "cusum": (
        0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.05, 1.2, 1.5,
        2.0, 3.0, 5.0,
    ),
    # Lifetime degraded-period count per agent.
    "degraded_periods": (
        0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0, 1000.0,
    ),
}

#: The per-agent metrics every rollup digests, in canonical order.
ROLLUP_METRICS: Tuple[str, ...] = ("delta", "x_n", "cusum", "degraded_periods")

#: name -> Space-Saving mode for the suspect rankings.
ROLLUP_RANKINGS: Tuple[Tuple[str, str], ...] = (
    ("alarms", "sum"),       # most alarming: lifetime alarm count
    ("cusum", "max"),        # highest current CUSUM level
    ("degraded", "sum"),     # most degraded periods
)

_STATUSES = ("ok", "degraded", "alarming", "down")


@dataclass(frozen=True)
class AgentState:
    """One agent's current detector state, the rollup's input row."""

    name: str
    delta: float = 0.0
    x: float = 0.0
    cusum: float = 0.0
    degraded_periods: int = 0
    alarms: int = 0
    alarm: bool = False
    down: bool = False

    @property
    def status(self) -> str:
        """Down dominates alarming dominates degraded dominates ok."""
        if self.down:
            return "down"
        if self.alarm:
            return "alarming"
        if self.degraded_periods > 0:
            return "degraded"
        return "ok"


class QuantileDigest:
    """Fixed-bucket quantile digest with exact, associative merge."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ValueError("bounds must be non-empty")
        if list(cleaned) != sorted(cleaned):
            raise ValueError(f"bounds must be ascending: {cleaned}")
        if any(math.isinf(b) or math.isnan(b) for b in cleaned):
            raise ValueError(f"bounds must be finite: {cleaned}")
        self.bounds = cleaned
        # One extra slot: the implicit open-ended overflow bucket.
        self.counts = [0] * (len(cleaned) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket lists are ~16 long and this is the
        # rollup hot path only once per agent, not per packet.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 <= q <= 1) by in-bucket interpolation.

        Returns None on an empty digest.  A target inside the overflow
        bucket reports the observed max — the digest never invents
        values above what it saw.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]: {q}")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count < target:
                cumulative += bucket_count
                continue
            if i >= len(self.bounds):
                return self.max
            upper = self.bounds[i]
            lower = self.bounds[i - 1] if i > 0 else self.min
            fraction = (target - cumulative) / bucket_count
            value = lower + (upper - lower) * max(0.0, min(1.0, fraction))
            return min(self.max, max(self.min, value))
        return self.max

    def merge_from(self, other: "QuantileDigest") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"digest bounds differ: {self.bounds} vs {other.bounds}"
            )
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileDigest":
        digest = cls(payload["bounds"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(digest.counts):
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(digest.bounds)} bounds"
            )
        digest.counts = counts
        digest.count = int(payload["count"])
        digest.sum = float(payload["sum"])
        digest.min = None if payload["min"] is None else float(payload["min"])
        digest.max = None if payload["max"] is None else float(payload["max"])
        return digest

    def __repr__(self) -> str:
        return (
            f"QuantileDigest(count={self.count}, min={self.min}, "
            f"max={self.max}, buckets={len(self.bounds)})"
        )


class SpaceSavingTopK:
    """Bounded top-K summary with deterministic (name) tie-breaking.

    ``mode="sum"`` is classic Space-Saving over additive weights: when
    a new key arrives at capacity it evicts the minimum entry,
    inherits its weight, and records that weight as the new entry's
    ``error`` (the true weight lies in ``[weight - error, weight]``).
    ``mode="max"`` ranks keys by a point-in-time level: a new key only
    displaces the minimum when its value is strictly larger (or equal
    with a lexicographically smaller name, keeping merges
    order-insensitive), and ``error`` stays 0.
    """

    __slots__ = ("k", "mode", "_entries")

    def __init__(self, k: int = DEFAULT_TOP_K, mode: str = "sum") -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        if mode not in ("sum", "max"):
            raise ValueError(f"mode must be 'sum' or 'max': {mode!r}")
        self.k = k
        self.mode = mode
        self._entries: Dict[str, List[float]] = {}  # name -> [weight, error]

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, name: str, weight: float, error: float = 0.0) -> None:
        weight = float(weight)
        entry = self._entries.get(name)
        if entry is not None:
            if self.mode == "sum":
                entry[0] += weight
                entry[1] += error
            elif weight > entry[0]:
                entry[0] = weight
            return
        if len(self._entries) < self.k:
            self._entries[name] = [weight, float(error)]
            return
        victim_name, victim = self._min_entry()
        if self.mode == "sum":
            del self._entries[victim_name]
            # The newcomer inherits the victim's count — it may have
            # been seen victim-weight times already; record that as
            # the error bound.
            self._entries[name] = [victim[0] + weight, victim[0] + error]
        else:
            if weight > victim[0] or (
                weight == victim[0] and name < victim_name
            ):
                del self._entries[victim_name]
                self._entries[name] = [weight, 0.0]

    def _min_entry(self) -> Tuple[str, List[float]]:
        # Ties on weight break toward the lexicographically *largest*
        # name so the surviving set is independent of arrival order.
        return max(self._entries.items(), key=lambda kv: (-kv[1][0], kv[0]))

    def merge_from(self, other: "SpaceSavingTopK") -> None:
        if other.mode != self.mode or other.k != self.k:
            raise ValueError(
                f"top-K shape differs: k={self.k}/{self.mode} vs "
                f"k={other.k}/{other.mode}"
            )
        # Order-normalized: fold the other summary's entries in sorted
        # name order so the result never depends on its dict order.
        for name in sorted(other._entries):
            weight, error = other._entries[name]
            self.offer(name, weight, error)

    def top(self) -> List[Dict[str, Any]]:
        """Entries by descending weight, name-ascending on ties."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        return [
            {"agent": name, "weight": weight, "error": error}
            for name, (weight, error) in ranked
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.k, "mode": self.mode, "entries": self.top()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpaceSavingTopK":
        summary = cls(int(payload["k"]), str(payload["mode"]))
        for entry in payload["entries"]:
            summary._entries[str(entry["agent"])] = [
                float(entry["weight"]), float(entry["error"]),
            ]
        if len(summary._entries) > summary.k:
            raise ValueError(
                f"{len(summary._entries)} entries exceed k={summary.k}"
            )
        return summary

    def __repr__(self) -> str:
        return (
            f"SpaceSavingTopK(k={self.k}, mode={self.mode!r}, "
            f"entries={len(self._entries)})"
        )


class FleetRollup:
    """The fleet reduction: counters + digests + suspect rankings.

    Built by :meth:`observe`-ing per-agent states (or
    :meth:`from_states`), merged shard-wise with :meth:`merge_from`,
    serialized with :meth:`to_dict` — the ``/fleet`` document.  The
    document is O(K·buckets): four fixed-width digests, three ≤K-entry
    rankings, one counter block, regardless of how many agents were
    folded in.
    """

    def __init__(self, k: int = DEFAULT_TOP_K) -> None:
        self.k = k
        self.counts: Dict[str, int] = {status: 0 for status in _STATUSES}
        self.counts["total"] = 0
        self.digests: Dict[str, QuantileDigest] = {
            metric: QuantileDigest(ROLLUP_BUCKETS[metric])
            for metric in ROLLUP_METRICS
        }
        self.top: Dict[str, SpaceSavingTopK] = {
            name: SpaceSavingTopK(k, mode) for name, mode in ROLLUP_RANKINGS
        }
        #: Largest logical detector time folded in (None before any).
        self.watermark: Optional[float] = None

    # ------------------------------------------------------------------
    def observe(self, state: AgentState) -> None:
        """Fold one agent into the rollup."""
        self.counts["total"] += 1
        self.counts[state.status] += 1
        self.digests["delta"].observe(state.delta)
        self.digests["x_n"].observe(state.x)
        self.digests["cusum"].observe(state.cusum)
        self.digests["degraded_periods"].observe(state.degraded_periods)
        self.top["cusum"].offer(state.name, state.cusum)
        if state.degraded_periods > 0:
            self.top["degraded"].offer(state.name, state.degraded_periods)
        if state.alarms > 0:
            self.top["alarms"].offer(state.name, state.alarms)

    @classmethod
    def from_states(
        cls,
        states: Iterable[AgentState],
        k: int = DEFAULT_TOP_K,
        watermark: Optional[float] = None,
    ) -> "FleetRollup":
        rollup = cls(k=k)
        for state in states:
            rollup.observe(state)
        rollup.watermark = watermark
        return rollup

    # ------------------------------------------------------------------
    @property
    def quorum(self) -> float:
        """Reachable fraction of the fleet (1.0 for an empty fleet)."""
        total = self.counts["total"]
        if total == 0:
            return 1.0
        return (total - self.counts["down"]) / total

    @property
    def alarm_fraction(self) -> float:
        total = self.counts["total"]
        if total == 0:
            return 0.0
        return self.counts["alarming"] / total

    # ------------------------------------------------------------------
    def merge_from(self, other: "FleetRollup") -> None:
        """Fold another rollup in (shard digests coming home)."""
        if other.k != self.k:
            raise ValueError(f"top-K size differs: {self.k} vs {other.k}")
        for status in sorted(other.counts):
            self.counts[status] = self.counts.get(status, 0) + other.counts[status]
        for metric in ROLLUP_METRICS:
            self.digests[metric].merge_from(other.digests[metric])
        for name, _mode in ROLLUP_RANKINGS:
            self.top[name].merge_from(other.top[name])
        if other.watermark is not None and (
            self.watermark is None or other.watermark > self.watermark
        ):
            self.watermark = other.watermark

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot in (cross-process shape)."""
        self.merge_from(FleetRollup.from_dict(snapshot))

    # ------------------------------------------------------------------
    def quantile(self, metric: str, q: float) -> Optional[float]:
        return self.digests[metric].quantile(q)

    def fleet_series(self) -> List[Tuple[str, float]]:
        """The ``fleet_*`` TSDB samples this rollup emits, in a fixed
        order.  Quantiles of empty digests are skipped, not zeroed."""
        samples: List[Tuple[str, float]] = [
            ("fleet_agents_total", float(self.counts["total"])),
            ("fleet_agents_ok", float(self.counts["ok"])),
            ("fleet_agents_degraded", float(self.counts["degraded"])),
            ("fleet_agents_alarming", float(self.counts["alarming"])),
            ("fleet_agents_down", float(self.counts["down"])),
            ("fleet_quorum", self.quorum),
            ("fleet_alarm_fraction", self.alarm_fraction),
        ]
        for metric, quantile_name, q in (
            ("cusum", "p50", 0.50),
            ("cusum", "p99", 0.99),
            ("delta", "p99", 0.99),
            ("degraded_periods", "p99", 0.99),
        ):
            value = self.digests[metric].quantile(q)
            if value is not None:
                key = "degraded" if metric == "degraded_periods" else metric
                samples.append((f"fleet_{key}_{quantile_name}", value))
        cusum_max = self.digests["cusum"].max
        if cusum_max is not None:
            samples.append(("fleet_cusum_max", cusum_max))
        return samples

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The canonical ``/fleet`` document (JSON-ready, sorted)."""
        digests: Dict[str, Any] = {}
        for metric in ROLLUP_METRICS:
            digest = self.digests[metric]
            payload = digest.to_dict()
            payload["quantiles"] = {
                "p50": digest.quantile(0.50),
                "p90": digest.quantile(0.90),
                "p99": digest.quantile(0.99),
            }
            digests[metric] = payload
        return {
            "k": self.k,
            "watermark": self.watermark,
            "agents": {
                "total": self.counts["total"],
                "ok": self.counts["ok"],
                "degraded": self.counts["degraded"],
                "alarming": self.counts["alarming"],
                "down": self.counts["down"],
                "quorum": self.quorum,
                "alarm_fraction": self.alarm_fraction,
            },
            "digests": digests,
            "top": {name: self.top[name].to_dict() for name, _ in ROLLUP_RANKINGS},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetRollup":
        rollup = cls(k=int(payload["k"]))
        agents = payload["agents"]
        for status in _STATUSES:
            rollup.counts[status] = int(agents[status])
        rollup.counts["total"] = int(agents["total"])
        for metric in ROLLUP_METRICS:
            rollup.digests[metric] = QuantileDigest.from_dict(
                payload["digests"][metric]
            )
        for name, mode in ROLLUP_RANKINGS:
            summary = SpaceSavingTopK.from_dict(payload["top"][name])
            if summary.mode != mode:
                raise ValueError(
                    f"ranking {name!r} mode {summary.mode!r} != {mode!r}"
                )
            rollup.top[name] = summary
        watermark = payload.get("watermark")
        rollup.watermark = None if watermark is None else float(watermark)
        return rollup

    def canonical(self, places: int = 9) -> Dict[str, Any]:
        """The document with float sums/weights rounded — the
        comparison form for merge orders that fold floats differently
        (Hypothesis commutativity-up-to-canonicalization)."""
        def _round(value: Any) -> Any:
            if isinstance(value, float):
                return round(value, places)
            if isinstance(value, dict):
                return {key: _round(value[key]) for key in sorted(value)}
            if isinstance(value, list):
                return [_round(item) for item in value]
            return value

        return _round(self.to_dict())

    def __repr__(self) -> str:
        return (
            f"FleetRollup(total={self.counts['total']}, "
            f"alarming={self.counts['alarming']}, "
            f"down={self.counts['down']}, k={self.k})"
        )


# ----------------------------------------------------------------------
# Builders: recorder tapes, event logs, synthetic fleets
# ----------------------------------------------------------------------
def states_from_recorder(recorder: Any) -> List[AgentState]:
    """Per-agent states from a live flight recorder (the ``/fleet``
    endpoint's source).  Recorder tapes have no liveness concept, so
    ``down`` is always False here; the federation builder owns it."""
    status = recorder.status()
    snapshots = (
        recorder.last_snapshots()
        if hasattr(recorder, "last_snapshots")
        else {}
    )
    states = []
    for agent in sorted(status):
        row = status[agent]
        last = snapshots.get(agent) or {}
        syn = last.get("syn", 0) or 0
        synack = last.get("synack", 0) or 0
        states.append(
            AgentState(
                name=agent,
                delta=float(syn - synack),
                x=float(last.get("x", 0.0) or 0.0),
                cusum=float(row.get("statistic") or 0.0),
                degraded_periods=int(row.get("degraded_periods", 0)),
                alarms=int(row.get("alarms_seen", 0)),
                alarm=bool(row.get("alarm")),
            )
        )
    return states


def states_from_events(events: Iterable[Mapping[str, Any]]) -> List[AgentState]:
    """Replay an event log into final per-agent states (offline
    ``repro fleet --events``).  ``period`` events carry the detector
    trajectory; ``federation_member_crashed``/``_restarted`` events
    toggle liveness."""
    latest: Dict[str, Dict[str, Any]] = {}
    degraded: Dict[str, int] = {}
    alarms: Dict[str, int] = {}
    down: Dict[str, bool] = {}
    for event in events:
        kind = event.get("event")
        agent = event.get("agent") or event.get("member")
        if agent is None:
            continue
        agent = str(agent)
        if kind == "period":
            latest[agent] = dict(event)
            if event.get("degraded"):
                degraded[agent] = degraded.get(agent, 0) + 1
        elif kind == "alarm_raised":
            alarms[agent] = alarms.get(agent, 0) + 1
        elif kind == "federation_member_crashed":
            down[agent] = True
        elif kind == "federation_member_restarted":
            down[agent] = False
    states = []
    # Union, not just period emitters: a member that crashed before its
    # first period still exists — dropping it would overstate quorum.
    known = set(latest) | set(down) | set(alarms) | set(degraded)
    for agent in sorted(known):
        last = latest.get(agent, {})
        syn = last.get("syn", 0) or 0
        synack = last.get("synack", 0) or 0
        states.append(
            AgentState(
                name=agent,
                delta=float(syn - synack),
                x=float(last.get("x", 0.0) or 0.0),
                cusum=float(last.get("statistic", 0.0) or 0.0),
                degraded_periods=degraded.get(agent, 0),
                alarms=alarms.get(agent, 0),
                alarm=bool(last.get("alarm")),
                down=down.get(agent, False),
            )
        )
    return states


def rollup_from_events(
    events: Iterable[Mapping[str, Any]], k: int = DEFAULT_TOP_K
) -> FleetRollup:
    """Offline rollup: replay the log, fold the final states.  The
    watermark is the latest period end-time seen in the log."""
    materialized = list(events)
    watermark: Optional[float] = None
    for event in materialized:
        if event.get("event") == "period":
            end_time = event.get("end_time")
            if end_time is not None and (
                watermark is None or float(end_time) > watermark
            ):
                watermark = float(end_time)
    return FleetRollup.from_states(
        states_from_events(materialized), k=k, watermark=watermark
    )


# ----------------------------------------------------------------------
# Synthetic fleets (benchmarks, CI smoke, `repro fleet --synthetic`)
# ----------------------------------------------------------------------
_SYNTH_SEP = "\x1f"


def _synthetic_unit(seed: int, index: int, channel: str) -> float:
    """Uniform [0, 1) derived from SHA-512 — a pure function of the
    inputs, so any sharding of the index space sees identical agents."""
    digest = hashlib.sha512(
        _SYNTH_SEP.join(("fleet", str(seed), str(index), channel)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def synthetic_agent_state(
    index: int,
    seed: int = 0,
    alarm_fraction: float = 0.001,
    down_fraction: float = 0.0005,
    degraded_fraction: float = 0.01,
) -> AgentState:
    """One deterministic synthetic agent, modeling a mostly-healthy
    fleet with a small affected tail (the 0.1% shape a real flood
    localizes to)."""
    role = _synthetic_unit(seed, index, "role")
    level = _synthetic_unit(seed, index, "level")
    jitter = _synthetic_unit(seed, index, "jitter")
    name = f"agent-{index:06d}"
    if role < down_fraction:
        return AgentState(name=name, down=True)
    if role < down_fraction + alarm_fraction:
        # Flooded: CUSUM past the N=1.05 threshold, large positive delta.
        cusum = 1.05 + 2.0 * level
        return AgentState(
            name=name,
            delta=float(50 + int(level * 5000)),
            x=0.5 + level,
            cusum=cusum,
            degraded_periods=int(jitter * 3),
            alarms=1 + int(level * 3),
            alarm=True,
        )
    if role < down_fraction + alarm_fraction + degraded_fraction:
        return AgentState(
            name=name,
            delta=float(int(jitter * 10) - 3),
            x=0.05 * level,
            cusum=0.3 + 0.5 * level,
            degraded_periods=1 + int(level * 10),
        )
    # Healthy bulk: delta hovers around zero, CUSUM stays low.
    return AgentState(
        name=name,
        delta=float(int(jitter * 7) - 3),
        x=0.1 * level - 0.05,
        cusum=0.25 * level,
    )


def synthetic_fleet_states(
    n: int,
    seed: int = 0,
    start: int = 0,
    **kwargs: float,
) -> List[AgentState]:
    """Agents ``start .. start+n`` of the synthetic fleet."""
    return [
        synthetic_agent_state(index, seed=seed, **kwargs)
        for index in range(start, start + n)
    ]


def synthetic_shard_rollup(task: Tuple[int, int, int, int], obs: Any = None) -> Dict[str, Any]:
    """Worker function for WorkPlan-sharded synthetic rollups.

    *task* is ``(seed, start, stop, k)``; returns the shard rollup's
    snapshot dict (picklable, mergeable at the parent).  *obs* is the
    engine-injected instrumentation bundle, unused here — the rollup
    itself is the telemetry.
    """
    seed, start, stop, k = task
    rollup = FleetRollup.from_states(
        synthetic_fleet_states(stop - start, seed=seed, start=start), k=k
    )
    return rollup.to_dict()
