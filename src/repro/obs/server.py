"""A live telemetry endpoint for a running detector fleet.

PR 1's obs layer writes its exports when a run *finishes*; an operator
watching a live SYN-dog wants to scrape it while it runs.  This module
is the serving half: :class:`ObsServer` wraps one
:class:`~repro.obs.runtime.Instrumentation` bundle in a
``ThreadingHTTPServer`` on a daemon thread — dependency-free, stdlib
only — with three endpoints:

``GET /metrics``
    The current registry in Prometheus text exposition format 0.0.4,
    with the tracer span profile and event-loss counters folded in at
    scrape time, exactly as ``finalize`` would write them.
``GET /healthz``
    A JSON liveness probe: uptime, events emitted/dropped, and — via
    the flight recorder — a bounded per-status ``summary`` (counts of
    ok/degraded/alarming agents plus quorum, O(1) in fleet size).  The
    full per-agent map is included only while the fleet is at or below
    ``healthz_agents_limit``; above it the document reports
    ``agents_omitted`` instead, so a 10^6-agent probe stays small.
    ``status`` is honest: ``alarming`` when any agent's alarm is up or
    an alert rule is firing, ``degraded`` on event drops / degraded
    periods / pending alerts, ``ok`` otherwise.
``GET /events?n=K[&kind=period]``
    The last K events from the bundle's in-memory sink as JSON, for a
    quick ``curl | jq`` without shipping the whole JSONL.
``GET /query?expr=EXPR[&at=T]``
    Evaluate a PromQL-lite expression (:mod:`repro.obs.tsdb`) against
    the bundle's telemetry history store; 400 on a malformed
    expression, 503 when the store is disabled.
``GET /alerts``
    The alert manager's full document — rules, lifecycle states and
    the transition history (:mod:`repro.obs.alerts`).
``GET /profile``
    The hot-path profiler's per-stage cost document
    (:mod:`repro.obs.profiler`); 503 when profiling is off.
``GET /fleet``
    The fleet telemetry rollup (:mod:`repro.obs.rollup`) built from
    the flight recorder's live per-agent state: population counters,
    quantile digests over delta/X_n/CUSUM/degraded-periods, and the
    top-K suspect rankings.  The document is O(K·buckets) — its size
    does not grow with the fleet.  503 when the recorder is off.
``GET /slo?[at=T]``
    Multi-window burn-rate evaluation of the built-in SLOs
    (:mod:`repro.obs.slo`) against the bundle's telemetry history
    store at instant ``T`` (default: the store's watermark): per-SLO
    verdicts, budget consumption and per-window burn pairs.  503 when
    the store is disabled, 400 on a non-finite ``at``.

The server never mutates detector state and holds no locks against the
detection path: scrapes read the live counters (safe under the GIL for
these single-attribute reads) so a scrape can never stall ingestion.

Lock order
----------
Route handlers may hold at most two server-side locks, acquired in a
single fixed order:

1. ``_registry_lock`` — guards handlers that *fold into or render* the
   shared registry/profiler (``/metrics``'s scrape-time exports,
   ``/profile``'s document derivation, ``/healthz``'s
   ``checkpoints_restored`` read of the restore counter family).  With
   three concurrent reader routes, two scrapes folding
   ``trace_span_*`` or ``profile_stage_*`` into the registry at once
   would interleave family mutation; one shared lock serializes them.
   It is *server-side only*: ingestion threads never take it, so the
   detection path still cannot stall.
2. ``_requests_lock`` — a leaf-level counter guard (``requests_served``).
   It is only ever held around a single increment/read and **never**
   while acquiring ``_registry_lock``.

Any new route that mutates shared obs state must take
``_registry_lock`` first and must not call back into a handler that
takes it again.

Usage::

    obs = enabled_instrumentation()
    with ObsServer(obs, port=9100) as server:
        print("scrape", server.url + "/metrics")
        run_detection(obs)
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .events import MemorySink
from .exporters import (
    export_event_stats,
    export_profiler,
    export_tracer,
    render_prometheus,
)
from .rollup import DEFAULT_TOP_K, FleetRollup, states_from_recorder
from .slo import SLOEngine
from .tsdb import QueryError

__all__ = [
    "ObsServer",
    "DEFAULT_HEALTHZ_AGENTS_LIMIT",
    "MAX_EVENT_TAIL",
    "PROMETHEUS_CONTENT_TYPE",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
DEFAULT_EVENT_TAIL = 100
#: Upper bound on ``/events?n=K``: a tail request beyond any sink's
#: retention is a client error, not an invitation to build a huge list.
MAX_EVENT_TAIL = 100_000
#: Fleet-size cutoff above which ``/healthz`` omits the per-agent map
#: (the bounded ``summary`` block is always present).
DEFAULT_HEALTHZ_AGENTS_LIMIT = 100


class ObsServer:
    """Serve one instrumentation bundle over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port (the resolved one is on
    :attr:`port` after :meth:`start`).  :meth:`stop` is graceful and
    idempotent; the object is also a context manager.
    """

    def __init__(
        self,
        obs: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        fleet_top_k: int = DEFAULT_TOP_K,
        healthz_agents_limit: int = DEFAULT_HEALTHZ_AGENTS_LIMIT,
    ) -> None:
        self.obs = obs
        self.host = host
        self.fleet_top_k = fleet_top_k
        self.healthz_agents_limit = healthz_agents_limit
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic = 0.0
        self._started_unix = 0.0
        # ThreadingHTTPServer handles each request on its own thread;
        # a bare += would race (read-modify-write is not atomic).
        self._requests_lock = threading.Lock()
        self._requests_served = 0
        # Serializes registry/profiler folds across handler threads —
        # see "Lock order" in the module docstring.  Acquired before
        # (never while holding) _requests_lock.
        self._registry_lock = threading.Lock()

    @property
    def requests_served(self) -> int:
        with self._requests_lock:
            return self._requests_served

    def _count_request(self) -> None:
        with self._requests_lock:
            self._requests_served += 1

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def uptime_seconds(self) -> float:
        if not self.running:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    def start(self) -> "ObsServer":
        if self.running:
            return self
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"obs-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd, self._thread = None, None
        if httpd is None:
            return
        httpd.shutdown()
        if thread is not None:
            thread.join(timeout=timeout)
        httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Endpoint payloads (also the testable surface, no sockets needed)
    # ------------------------------------------------------------------
    def metrics_text(self) -> Optional[str]:
        """The live scrape body, or None when the registry is disabled."""
        registry = self.obs.registry
        if not getattr(registry, "enabled", False):
            return None
        # Scrape-time folds mutate the registry; _registry_lock keeps
        # two concurrent scrapes (or a scrape racing /profile) from
        # interleaving family mutation.  See the module's lock order.
        with self._registry_lock:
            tracer = self.obs.tracer
            if getattr(tracer, "enabled", False):
                export_tracer(tracer, registry)
            profiler = getattr(self.obs, "profiler", None)
            if profiler is not None and getattr(profiler, "enabled", False):
                export_profiler(profiler, registry)
            export_event_stats(self.obs.events, registry)
            return render_prometheus(registry)

    def profile_document(self) -> Optional[Dict[str, Any]]:
        """The ``/profile`` JSON document, or None when profiling is
        off.  Document derivation reads every stage handle; the shared
        registry lock keeps it consistent with a racing ``/metrics``
        fold of the same counts."""
        profiler = getattr(self.obs, "profiler", None)
        if profiler is None or not getattr(profiler, "enabled", False):
            return None
        with self._registry_lock:
            return profiler.to_dict()

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` JSON document, with a derived ``status``:

        * ``alarming`` — an agent's alarm is currently up, or an alert
          rule is firing;
        * ``degraded`` — events have been dropped, periods ran in
          degraded mode, or an alert rule is pending;
        * ``ok`` — none of the above.
        """
        obs = self.obs
        recorder = getattr(obs, "recorder", None)
        agents = recorder.status() if recorder is not None else {}
        events = obs.events
        dropped = getattr(events, "dropped", 0)
        alerts = getattr(obs, "alerts", None)
        firing = alerts.firing() if alerts is not None else []
        pending = alerts.pending() if alerts is not None else []
        alarms_active = sum(
            1 for status in agents.values() if status["alarm"]
        )
        degraded_periods = sum(
            status.get("degraded_periods", 0) for status in agents.values()
        )
        if alarms_active or firing:
            status = "alarming"
        elif dropped or degraded_periods or pending:
            status = "degraded"
        else:
            status = "ok"
        # Continuous-operation counters for the soak watchdog:
        # uptime_periods is the longest per-agent observation streak,
        # checkpoints_restored the lifetime restore count.  The counter
        # family read happens under _registry_lock (documented order) —
        # a racing /metrics fold mutates sibling families in the same
        # registry dict.
        uptime_periods = max(
            (row["periods"] for row in agents.values()), default=0
        )
        checkpoints_restored = 0
        registry = obs.registry
        if getattr(registry, "enabled", False):
            with self._registry_lock:
                family = registry.get("syndog_checkpoints_restored_total")
                if family is not None:
                    checkpoints_restored = int(
                        sum(sample.value for sample in family.samples())
                    )
        # The bounded fleet summary: O(1) in fleet size, present at any
        # scale.  The full per-agent map only ships below the cutoff —
        # above it, /fleet is the O(K) view and /healthz stays a probe.
        degraded_agents = sum(
            1
            for row in agents.values()
            if not row["alarm"] and row.get("degraded_periods", 0)
        )
        summary = {
            "agents_total": len(agents),
            "ok": len(agents) - alarms_active - degraded_agents,
            "degraded": degraded_agents,
            "alarming": alarms_active,
            "quorum": 1.0,  # recorder tapes only exist for live agents
        }
        document: Dict[str, Any] = {
            "status": status,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "started_unix": self._started_unix,
            "requests_served": self.requests_served,
            "metrics_families": len(obs.registry),
            "events_emitted": getattr(events, "events_emitted", 0),
            "events_dropped": dropped,
            "alarm_contexts": getattr(recorder, "contexts_emitted", 0),
            "periods_observed": sum(
                status["periods"] for status in agents.values()
            ),
            "uptime_periods": uptime_periods,
            "checkpoints_restored": checkpoints_restored,
            "alarms_active": alarms_active,
            "degraded_periods": degraded_periods,
            "alerts_firing": firing,
            "alerts_pending": pending,
            "summary": summary,
        }
        if len(agents) <= self.healthz_agents_limit:
            document["agents"] = agents
        else:
            document["agents_omitted"] = len(agents)
        return document

    def fleet_document(self) -> Optional[Dict[str, Any]]:
        """The ``/fleet`` JSON document — the O(K·buckets) rollup of
        the flight recorder's live per-agent state — or None when the
        recorder is disabled (the handler maps it to a 503).

        Building the rollup reads every tape once (O(agents) work per
        scrape, like ``status()``), but the *document* stays O(K): four
        fixed-bucket digests, three ≤K-entry suspect rankings, one
        counter block.  The fold happens under ``_registry_lock`` per
        the documented order: the recorder is shared obs state and a
        scrape must not interleave with another handler's fold.
        """
        recorder = getattr(self.obs, "recorder", None)
        if recorder is None or not getattr(recorder, "enabled", False):
            return None
        with self._registry_lock:
            states = states_from_recorder(recorder)
            snapshots = recorder.last_snapshots()
        watermark = None
        for snapshot in snapshots.values():
            end_time = snapshot.get("end_time")
            if end_time is not None and (
                watermark is None or float(end_time) > watermark
            ):
                watermark = float(end_time)
        rollup = FleetRollup.from_states(
            states, k=self.fleet_top_k, watermark=watermark
        )
        return rollup.to_dict()

    def events_tail(
        self, n: int = DEFAULT_EVENT_TAIL, kind: Optional[str] = None
    ) -> Dict[str, Any]:
        """The ``/events`` JSON document: last *n* in-memory events."""
        events = self.obs.events
        sink = None
        for candidate in getattr(events, "sinks", lambda: [])():
            if isinstance(candidate, MemorySink):
                sink = candidate
                break
        if sink is None:
            return {
                "events": [],
                "count": 0,
                "emitted": getattr(events, "events_emitted", 0),
                "dropped": 0,
                "note": "no in-memory event sink attached",
            }
        selected = sink.of_kind(kind) if kind is not None else sink.events
        tail = selected[-max(0, n):] if n else []
        return {
            "events": tail,
            "count": len(tail),
            "emitted": getattr(events, "events_emitted", 0),
            "dropped": sink.dropped,
        }

    def query_result(
        self, expr: str, at: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """The ``/query`` JSON document, or None when the bundle has no
        telemetry history store.  Raises
        :class:`~repro.obs.tsdb.QueryError` on a malformed expression
        (the handler maps it to a 400)."""
        tsdb = getattr(self.obs, "tsdb", None)
        if tsdb is None or not getattr(tsdb, "enabled", False):
            return None
        if at is None:
            at = tsdb.last_time()
        result = tsdb.query(expr, at=at)
        return {
            "expr": expr,
            "at": at,
            "result": result,
            "count": len(result),
        }

    def slo_document(
        self, at: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """The ``/slo`` JSON document — the built-in SLO set evaluated
        as multi-window burn rates against the bundle's telemetry
        history store — or None when the store is disabled (the handler
        maps it to a 503).  Like ``/query``, the evaluation only reads
        the TSDB, so no server-side lock is needed."""
        tsdb = getattr(self.obs, "tsdb", None)
        if tsdb is None or not getattr(tsdb, "enabled", False):
            return None
        return SLOEngine().evaluate(tsdb, at=at)

    def alerts_document(self) -> Dict[str, Any]:
        """The ``/alerts`` JSON document (``{"enabled": false}`` when
        no alert manager is armed)."""
        alerts = getattr(self.obs, "alerts", None)
        if alerts is None:
            return {"enabled": False}
        return alerts.to_dict()


def _build_handler(server: ObsServer):
    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-obs/1.0"
        protocol_version = "HTTP/1.1"

        # The scrape server must never spam the run's stdout.
        def log_message(self, fmt: str, *args: Any) -> None:
            pass

        def _send(
            self, status: int, body: bytes, content_type: str
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
            self._send(status, body, "application/json; charset=utf-8")

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            server._count_request()
            parts = urlsplit(self.path)
            route = parts.path.rstrip("/") or "/"
            try:
                if route == "/metrics":
                    text = server.metrics_text()
                    if text is None:
                        self._send_json(
                            503, {"error": "metrics registry disabled"}
                        )
                        return
                    self._send(
                        200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
                    )
                elif route == "/healthz":
                    self._send_json(200, server.health())
                elif route == "/events":
                    query = parse_qs(parts.query)
                    n, kind = _parse_events_query(query)
                    self._send_json(200, server.events_tail(n=n, kind=kind))
                elif route == "/query":
                    query = parse_qs(parts.query)
                    expr, at = _parse_query_params(query)
                    payload = server.query_result(expr, at=at)
                    if payload is None:
                        self._send_json(
                            503, {"error": "telemetry history disabled"}
                        )
                        return
                    self._send_json(200, payload)
                elif route == "/alerts":
                    self._send_json(200, server.alerts_document())
                elif route == "/profile":
                    payload = server.profile_document()
                    if payload is None:
                        self._send_json(
                            503, {"error": "profiler disabled"}
                        )
                        return
                    self._send_json(200, payload)
                elif route == "/fleet":
                    payload = server.fleet_document()
                    if payload is None:
                        self._send_json(
                            503, {"error": "flight recorder disabled"}
                        )
                        return
                    self._send_json(200, payload)
                elif route == "/slo":
                    query = parse_qs(parts.query)
                    payload = server.slo_document(at=_parse_at(query))
                    if payload is None:
                        self._send_json(
                            503, {"error": "telemetry history disabled"}
                        )
                        return
                    self._send_json(200, payload)
                elif route == "/":
                    self._send_json(
                        200,
                        {
                            "service": "repro-syndog telemetry",
                            "endpoints": [
                                "/metrics",
                                "/healthz",
                                "/events",
                                "/query",
                                "/alerts",
                                "/profile",
                                "/fleet",
                                "/slo",
                            ],
                        },
                    )
                else:
                    self._send_json(404, {"error": f"no route {route!r}"})
            except ValueError as error:
                # Includes QueryError: malformed expressions are client
                # errors, not server faults.
                self._send_json(400, {"error": str(error)})
            except BrokenPipeError:  # scraper went away mid-response
                pass

        def do_HEAD(self) -> None:  # noqa: N802 - http.server API
            # Same routing and status codes as GET; _send suppresses
            # the body (probes use HEAD to stay cheap).
            self.do_GET()

    return _Handler


def _parse_events_query(
    query: Dict[str, list],
) -> Tuple[int, Optional[str]]:
    raw_n = query.get("n", [str(DEFAULT_EVENT_TAIL)])[-1]
    try:
        n = int(raw_n)
    except ValueError:
        raise ValueError(f"n must be an integer: {raw_n!r}") from None
    if n < 0:
        raise ValueError(f"n must be >= 0: {n}")
    if n > MAX_EVENT_TAIL:
        # An absurd tail (n=10^18) would otherwise allocate a huge
        # slice in the handler thread; no sink retains that much.
        raise ValueError(f"n must be <= {MAX_EVENT_TAIL}: {n}")
    kind = query.get("kind", [None])[-1]
    return n, kind


def _parse_at(query: Dict[str, list]) -> Optional[float]:
    raw_at = query.get("at", [None])[-1]
    if raw_at is None:
        return None
    try:
        at = float(raw_at)
    except ValueError:
        raise ValueError(f"at must be a number: {raw_at!r}") from None
    if math.isnan(at) or math.isinf(at):
        # float() happily parses "nan"/"inf", but an evaluation instant
        # must be a real point on the logical clock.
        raise ValueError(f"at must be finite: {raw_at!r}")
    return at


def _parse_query_params(
    query: Dict[str, list],
) -> Tuple[str, Optional[float]]:
    expr = query.get("expr", [None])[-1]
    if not expr:
        raise ValueError("missing required parameter: expr")
    return expr, _parse_at(query)
