"""Structured event logging with JSONL sinks.

Metrics answer "how much"; events answer "what happened, in order".
The detection pipeline emits one structured event per observation
period (the CUSUM trajectory an operator tails in production), plus
discrete events for alarm transitions, responses and experiment
trials.  Every event is a flat JSON-serializable dict with an ``event``
kind and a monotonically increasing ``seq``, so a JSONL stream can be
re-ordered, filtered with ``jq``, or replayed.

Sinks are write-only observers.  :class:`MemorySink` retains events
in-process (tests, summaries); :class:`JsonlSink` streams one JSON
object per line to a file — the format every log shipper understands.
:class:`NullEventLog` is the disabled default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Union

__all__ = [
    "EventLog",
    "JsonlSink",
    "MemorySink",
    "NullEventLog",
    "read_jsonl",
]

PathLike = Union[str, Path]
Event = Dict[str, Any]


class MemorySink:
    """Keeps events in a list (optionally bounded)."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: List[Event] = []
        self.max_events = max_events
        self.dropped = 0

    def write(self, event: Event) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def close(self) -> None:
        pass

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.get("event") == kind]

    def tail(self, n: int) -> List[Event]:
        """The last *n* retained events (what ``/events?n=K`` serves)."""
        if n <= 0:
            return []
        return self.events[-n:]


class JsonlSink:
    """Streams events to a file as JSON Lines.

    Accepts a path (opened and owned — closed by :meth:`close`) or an
    already-open text stream (borrowed — left open).  Keys are kept in
    insertion order: ``event`` and ``seq`` first, then the payload, so
    the raw file is human-scannable.
    """

    def __init__(self, target: Union[PathLike, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.events_written = 0

    def write(self, event: Event) -> None:
        self._stream.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class EventLog:
    """The emitting side: stamps ``event`` and ``seq``, fans out to
    every sink.  With no sinks it still counts emissions (cheap), so a
    summary can report how chatty a run was."""

    enabled = True

    def __init__(self, *sinks: Any) -> None:
        self._sinks: List[Any] = list(sinks)
        self._seq = 0

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def sinks(self) -> List[Any]:
        """The attached sinks (read-only view for exporters/servers)."""
        return list(self._sinks)

    @property
    def dropped(self) -> int:
        """Events silently dropped by bounded sinks — must be surfaced
        (``obs_events_dropped_total``), or event loss is invisible."""
        return sum(getattr(sink, "dropped", 0) for sink in self._sinks)

    def emit(self, kind: str, **fields: Any) -> Event:
        event: Event = {"event": kind, "seq": self._seq}
        event.update(fields)
        self._seq += 1
        for sink in self._sinks:
            sink.write(event)
        return event

    @property
    def events_emitted(self) -> int:
        return self._seq

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


class NullEventLog:
    """Disabled event log: ``emit`` does nothing and returns nothing."""

    enabled = False
    events_emitted = 0
    dropped = 0

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def sinks(self) -> List[Any]:
        return []

    def add_sink(self, sink: Any) -> None:
        raise ValueError("cannot attach a sink to the null event log; "
                         "build an enabled Instrumentation instead")

    def close(self) -> None:
        pass


def read_jsonl(path: PathLike) -> List[Event]:
    """Load a JSONL file back into event dicts (blank lines skipped)."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
