"""Dependency-free metrics primitives: Counter, Gauge, Histogram.

The reproduction's north star is a production-scale agent watching
heavy traffic, and a production agent is judged by what it exports.
This module is the core of the :mod:`repro.obs` layer: a tiny metrics
registry in the style of ``prometheus_client`` — but with zero
third-party dependencies, so the detection path never gains an import
it cannot satisfy on a bare router image.

Design rules, in priority order:

1. **Zero cost when disabled.**  The default registry everywhere is
   :class:`NullRegistry`; instrumented components bind its no-op
   instruments to ``None`` at construction and guard hot paths with a
   single ``is not None`` check.  Tier-1 numbers must not move.
2. **Get-or-create registration.**  Two SYN-dogs sharing one registry
   (a campaign, a federation) must land on the *same* time series, so
   :meth:`MetricsRegistry.counter` et al. return the existing family
   when the name is already registered (and raise on type mismatch).
3. **Prometheus-compatible semantics.**  Families may carry label
   names; ``labels(...)`` returns a cached child per label-value
   tuple; histograms keep cumulative-bucket semantics at export time
   (see :mod:`repro.obs.exporters`).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
]

#: perf_counter-scale latency buckets (seconds): 1 µs … 10 s, roughly
#: log-spaced — wide enough for both per-packet costs and whole trials.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)


class Sample:
    """One exported sample line: name suffix, label dict, value."""

    __slots__ = ("suffix", "labels", "value")

    def __init__(self, suffix: str, labels: Dict[str, str], value: float) -> None:
        self.suffix = suffix
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"Sample({self.suffix!r}, {self.labels!r}, {self.value!r})"


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")
    return name


class _Family:
    """Shared family machinery: label handling and child caching."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], "_Family"] = {}

    # ------------------------------------------------------------------
    def labels(self, *values: object, **kwargs: object):
        """Child instrument for one label-value combination (cached)."""
        if not self.labelnames:
            raise ValueError(f"{self.name} has no labels")
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kwargs[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values, "
                f"got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Family":
        raise NotImplementedError

    def _require_unlabeled(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; call .labels() first"
            )

    # ------------------------------------------------------------------
    def samples(self) -> Iterator[Sample]:
        """Flatten the family (all children) into exportable samples."""
        if self.labelnames:
            for key, child in self._children.items():
                labels = dict(zip(self.labelnames, key))
                for sample in child._own_samples():
                    merged = dict(labels)
                    merged.update(sample.labels)
                    yield Sample(sample.suffix, merged, sample.value)
        else:
            yield from self._own_samples()

    def _own_samples(self) -> Iterator[Sample]:
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing count (packets seen, alarms raised)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled()
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        self._require_unlabeled()
        return self._value

    def _own_samples(self) -> Iterator[Sample]:
        yield Sample("", {}, self._value)


class Gauge(_Family):
    """A value that goes both ways (current y_n, current K̄)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._require_unlabeled()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabeled()
        self._value -= amount

    @property
    def value(self) -> float:
        self._require_unlabeled()
        return self._value

    def _own_samples(self) -> Iterator[Sample]:
        yield Sample("", {}, self._value)


class Histogram(_Family):
    """A distribution with fixed buckets (latencies, per-trial wall
    clock).  Export follows Prometheus cumulative-bucket convention."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds
        self._bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._require_unlabeled()
        self._sum += value
        self._count += 1
        # Linear scan is fine: bucket lists are tiny and the scan
        # short-circuits at the first bound ≥ value.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._bucket_counts[i] += 1
                break

    def time(self) -> "_HistogramTimer":
        """``with histogram.time(): ...`` records the block's duration."""
        self._require_unlabeled()
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        self._require_unlabeled()
        return self._count

    @property
    def sum(self) -> float:
        self._require_unlabeled()
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile by linear interpolation over the
        cumulative buckets (the ``histogram_quantile`` convention).

        Returns None for an empty histogram.  Observations above the
        highest bucket cannot be interpolated; quantiles landing there
        return the highest finite bound — the estimate Prometheus
        itself gives for the +Inf bucket — or None when the histogram
        has no finite bound at all (a bare ``(+Inf,)`` bucket list),
        never ``inf`` itself.
        """
        self._require_unlabeled()
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for i, (bound, bucket_count) in enumerate(
            zip(self.buckets, self._bucket_counts)
        ):
            previous = cumulative
            cumulative += bucket_count
            if bucket_count and target <= cumulative:
                if bound == math.inf:
                    # An explicit +Inf bucket: fall back to the bound
                    # below it (nothing to interpolate toward).  With
                    # no finite bound at all the histogram knows
                    # nothing about magnitudes — say so with None
                    # rather than inventing 0.0.
                    return self.buckets[i - 1] if i > 0 else None
                if i > 0:
                    lower = self.buckets[i - 1]
                elif bound > 0:
                    lower = 0.0  # first positive bucket starts at zero
                else:
                    return bound  # all mass at/below a non-positive edge
                fraction = max(0.0, target - previous) / bucket_count
                return lower + (bound - lower) * fraction
        # Overflow: observations beyond the last finite bucket.
        bounds = [b for b in self.buckets if b != math.inf]
        return bounds[-1] if bounds else None

    def _own_samples(self) -> Iterator[Sample]:
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self._bucket_counts):
            cumulative += bucket_count
            yield Sample("_bucket", {"le": _format_bound(bound)}, float(cumulative))
        yield Sample("_bucket", {"le": "+Inf"}, float(self._count))
        yield Sample("_sum", {}, self._sum)
        yield Sample("_count", {}, float(self._count))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    text = repr(bound)
    return text


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """A live registry: get-or-create families, collect for export."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        family = self._families.get(name)
        if family is not None:
            if not isinstance(family, cls):
                raise ValueError(
                    f"{name} already registered as {family.kind}, "
                    f"not {cls.kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"{name} already registered with labels "
                    f"{family.labelnames}, not {tuple(labelnames)}"
                )
            return family
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------
    def collect(self) -> List[_Family]:
        """Registered families in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)


class _NullInstrument:
    """Absorbs every instrument operation; ``labels`` returns itself so
    pre-binding code needs no special-casing."""

    __slots__ = ()

    def labels(self, *values: object, **kwargs: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default, disabled registry: every factory hands back one
    shared no-op instrument and :attr:`enabled` is False, which lets
    instrumented components skip binding entirely."""

    enabled = False

    def counter(self, name, help="", labelnames=()):  # noqa: D401
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return _NULL_INSTRUMENT

    def collect(self) -> List[_Family]:
        return []

    def get(self, name: str) -> None:
        return None

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0
