"""Resource ledger: bounded-structure occupancy as time series.

Every observability structure in this repo is *bounded by design* —
the TSDB compacts past its retention, the flight recorder rings, alert
contexts live in a fixed deque, rollups hold K counters — but a claim
of boundedness is only production-grade once it is **measured over
days**.  The ledger does exactly that: :func:`collect_occupancy`
snapshots the live occupancy of each bounded structure, and
:func:`sample` appends those numbers into the TSDB itself as
``obs_ledger_*`` series.  A soak run then *proves* flat memory by
comparing per-day high-water marks of the ledger series
(:func:`ledger_high_water` / :func:`ledger_flatness`) — the
BENCH_soak.json gate in CI.

All ledger quantities are functions of logical state, not wall clock,
so ledger series merge and byte-compare across worker counts like any
other feed series.  Counters that grow *by contract* (compaction and
drop totals, alert transitions) are tracked for visibility but listed
in :data:`MONOTONE_SERIES` so the flatness gate skips them — a soak
that compacts every epoch must see those climb.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

__all__ = [
    "collect_occupancy",
    "sample",
    "ledger_high_water",
    "ledger_flatness",
    "MONOTONE_SERIES",
    "SATURATING_SERIES",
    "DAY_SECONDS",
]

#: Simulated seconds per ledger "day" bucket.
DAY_SECONDS = 86400.0

#: Ledger series that are cumulative counters — they grow for the
#: lifetime of the store by contract, so the flatness gate must not
#: treat their growth as a leak.
MONOTONE_SERIES: FrozenSet[str] = frozenset(
    {
        "obs_ledger_tsdb_compactions",
        "obs_ledger_tsdb_points_dropped",
        "obs_ledger_alert_transitions",
    }
)

#: Ledger series backed by a hard-capped structure (a ``deque`` with a
#: constant ``maxlen``) that fills slowly — e.g. alarm contexts arrive
#: a few per day, so a multi-day soak sees the deque still climbing
#: toward its small constant cap.  Structurally they cannot leak, so
#: the flatness gate skips them too (their caps are asserted in unit
#: tests instead).
SATURATING_SERIES: FrozenSet[str] = frozenset(
    {"obs_ledger_recorder_contexts"}
)


def collect_occupancy(
    obs: Any,
    alerts: Optional[Any] = None,
    events_baseline: int = 0,
    rollup: Optional[Any] = None,
) -> Dict[str, float]:
    """Current occupancy of every bounded structure, as a flat dict.

    *obs* is an :class:`~repro.obs.runtime.Instrumentation` bundle;
    *alerts* overrides ``obs.alerts`` (a soak passes its replayed
    manager).  *events_baseline* is subtracted from the emitted-event
    count so a long-lived log reports sink *depth since the last
    mark* — the quantity that must stay flat — rather than lifetime
    throughput.  Keys are the ``obs_ledger_*`` series names
    :func:`sample` writes.
    """
    tsdb = obs.tsdb
    recorder = obs.recorder
    occupancy: Dict[str, float] = {
        "obs_ledger_tsdb_points": float(tsdb.points_retained()),
        "obs_ledger_tsdb_series": float(len(tsdb.series())),
        "obs_ledger_tsdb_compactions": float(tsdb.compactions_total),
        "obs_ledger_tsdb_points_dropped": float(tsdb.points_dropped_total),
        "obs_ledger_recorder_ring": float(
            sum(len(recorder.window(agent)) for agent in recorder.agents)
        ),
        "obs_ledger_recorder_contexts": float(len(recorder.contexts)),
    }
    manager = alerts if alerts is not None else getattr(obs, "alerts", None)
    if manager is not None and getattr(manager, "enabled", True):
        occupancy["obs_ledger_alert_rules"] = float(len(manager.rules))
        occupancy["obs_ledger_alert_transitions"] = float(
            len(manager.transitions)
        )
    events = getattr(obs, "events", None)
    if events is not None and getattr(events, "enabled", True):
        occupancy["obs_ledger_event_sink_depth"] = float(
            events.events_emitted - events_baseline
        )
    if rollup is not None:
        occupancy["obs_ledger_rollup_digests"] = float(
            len(rollup.digests)
            + sum(len(topk) for topk in rollup.top.values())
        )
    return occupancy


def sample(
    obs: Any,
    t: float,
    alerts: Optional[Any] = None,
    events_baseline: int = 0,
    rollup: Optional[Any] = None,
    into: Optional[Any] = None,
    labels: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Take one ledger sample at logical time *t*: collect occupancy
    and append each quantity in sorted-name order (so
    first-registration series order is deterministic).

    Samples land in *into* when given, else in ``obs.tsdb`` —
    separating the **observed** store from the **recording** store
    matters when the observed one is itself under occupancy test (a
    self-sample would add a point per period to the structure it is
    measuring).  *labels* distinguishes ledgers of different bundles in
    one store (the soak labels its live-parent sample ``store=live``);
    *extra* merges additional pre-computed quantities (e.g. a per-epoch
    event count a replay knows but the bundle does not).  Returns the
    occupancy dict."""
    occupancy = collect_occupancy(
        obs, alerts=alerts, events_baseline=events_baseline, rollup=rollup
    )
    if extra:
        occupancy.update(extra)
    target = into if into is not None else obs.tsdb
    if getattr(target, "enabled", False):
        for name in sorted(occupancy):
            target.append(name, labels or {}, float(t), occupancy[name])
    return occupancy


def ledger_high_water(
    tsdb: Any, day_seconds: float = DAY_SECONDS
) -> Dict[str, Dict[int, float]]:
    """Per-series, per-simulated-day high-water marks of the ledger.

    Buckets every retained ``obs_ledger_*`` sample by
    ``int(t // day_seconds)`` and keeps the max per bucket.  Retention
    compaction thins *early* days first, but the max of a subsample is
    at most the true max, and the flatness gate only compares maxima —
    a leak still shows as growth.
    """
    marks: Dict[str, Dict[int, float]] = {}
    for series in tsdb.series():
        if not series.name.startswith("obs_ledger_"):
            continue
        key = series.name
        if series.labels:
            rendered = ",".join(f'{k}="{v}"' for k, v in series.labels)
            key = f"{series.name}{{{rendered}}}"
        per_day = marks.setdefault(key, {})
        for t, value in series.samples:
            day = int(t // day_seconds)
            if day not in per_day or value > per_day[day]:
                per_day[day] = value
    return marks


def ledger_flatness(
    tsdb: Any, day_seconds: float = DAY_SECONDS
) -> Dict[str, Any]:
    """The soak's memory-flatness verdict.

    For every non-monotone ledger series with samples in at least two
    day buckets, the relative growth of the high-water mark between
    the first and last simulated day.  ``max_growth`` is the worst
    over those series (0.0 when nothing grew or only one day is
    retained) — the number CI gates at 5%.
    """
    marks = ledger_high_water(tsdb, day_seconds=day_seconds)
    series: Dict[str, Any] = {}
    max_growth = 0.0
    exempt = MONOTONE_SERIES | SATURATING_SERIES
    for name in sorted(marks):
        per_day = marks[name]
        days = sorted(per_day)
        first, last = per_day[days[0]], per_day[days[-1]]
        if first > 0:
            growth = (last - first) / first
        else:
            growth = 0.0 if last <= 0 else float("inf")
        base = name.split("{", 1)[0]
        entry = {
            "first_day": days[0],
            "last_day": days[-1],
            "first_high_water": first,
            "last_high_water": last,
            "growth": round(growth, 9) if growth != float("inf") else None,
            "gated": base not in exempt and len(days) > 1,
        }
        series[name] = entry
        if entry["gated"]:
            max_growth = max(max_growth, growth)
    return {
        "day_seconds": day_seconds,
        "series": series,
        "max_growth": (
            round(max_growth, 9) if max_growth != float("inf") else None
        ),
    }
