"""Hot-path profiler: deterministic per-stage cost attribution.

The repo knows its end-to-end cost ("~5 µs/packet instrumented", from
``benchmarks/test_obs_overhead.py``) but, until now, not *where* those
microseconds go.  This module attributes wall time, CPU time, packet,
byte, and allocation counts to named pipeline stages:

======================  ================================================
stage                   attribution point
======================  ================================================
``pcap.parse``          one pcap record read + header decode
``classify``            the classifier three-step test per packet
``sniff.update``        one counting-sniffer update per packet
``cusum.step``          one normalizer + CUSUM period update
``federation.feed``     one member replay inside ``Federation.feed``
``merge.fold``          folding one shard result into the parent bundle
======================  ================================================

Two modes, one document shape:

``timers``
    Real clocks (``perf_counter_ns``/``process_time_ns``) and
    allocation deltas from the GC's gen-0 counter (see
    :func:`allocation_count`).  Per-packet stages time only every
    ``sample_every``-th call and extrapolate, so the enabled-path
    overhead stays within the benchmarked budget (``profiler_ratio``
    in ``BENCH_obs.json``).

``cost-model``
    No clocks at all.  Stage nanoseconds are *derived* from counts via
    the fixed per-op constants in :data:`COST_MODEL`.  Counts are
    worker-invariant (the sharded engine executes a fixed shard plan),
    so cost-model profile documents are byte-identical at any
    ``--workers`` — the same determinism contract every other artifact
    in this repo honors, and the oracle for the ROADMAP item 1 rewrite:
    a refactor that changes *what work happens per packet* changes the
    cost-model document even when wall clocks are too noisy to show it.

The document (:meth:`Profiler.to_dict`) exports to folded-stack
(flamegraph-ready) and callgrind formats via :func:`folded_stacks` and
:func:`callgrind_format`; both have parsers for round-trip tests.

Zero-cost-when-disabled: components bind a :class:`StageHandle` once at
construction when ``obs.profiler.enabled`` and keep ``None`` otherwise;
the hot path pays a single ``is not None`` check (benchmarked as
``profiler_disabled_ratio`` ≤ 1.02x).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple, Union


def allocation_count() -> int:
    """The GC's generation-0 allocation count — the O(1) allocation
    probe for timed sections.

    ``sys.getallocatedblocks`` would be the obvious probe, but it is
    O(heap): it walks every obmalloc pool, and on a warm heap (the
    repro package plus a packet trace resident) one read costs ~6 µs —
    ~40x the clocks it sits next to, and enough on its own to blow the
    sampled path's 1.15x budget.  The gen-0 count is a pair of pointer
    reads: it counts GC-tracked (container) allocations since the last
    gen-0 collection.  Deltas must be clamped at 0 by callers because a
    collection between two reads resets the counter; the occasional
    clamped sample is noise the calls/timed_calls extrapolation already
    absorbs.
    """
    return gc.get_count()[0]

__all__ = [
    "StageCost",
    "COST_MODEL",
    "DEFAULT_COST",
    "PIPELINE_STAGES",
    "StageHandle",
    "Profiler",
    "NullProfiler",
    "allocation_count",
    "merge_stage_rows",
    "folded_stacks",
    "parse_folded",
    "write_folded",
    "callgrind_format",
    "parse_callgrind",
    "write_callgrind",
    "write_profile_json",
]


class StageCost(NamedTuple):
    """Fixed nominal costs for one stage in cost-model mode.

    The constants are *fictional but stable*: loosely calibrated to the
    measured ~5 µs/packet pipeline so the relative shape of a cost-model
    flamegraph resembles a timed one, but their real job is determinism
    — the same counts always derive the same nanoseconds.
    """

    per_call_ns: int = 100
    per_packet_ns: int = 10
    per_byte_ns: int = 0
    allocs_per_call: int = 1


#: The canonical pipeline stages, in pipeline order.
PIPELINE_STAGES: Tuple[str, ...] = (
    "pcap.parse",
    "fastpath.parse",
    "classify",
    "fastpath.classify",
    "sniff.update",
    "cusum.step",
    "federation.feed",
    "merge.fold",
)

#: Fixed per-op costs (cost-model mode).  Change these and every
#: committed cost-model document changes — treat as part of the format.
COST_MODEL: Dict[str, StageCost] = {
    "pcap.parse": StageCost(per_call_ns=400, per_packet_ns=0, per_byte_ns=2, allocs_per_call=4),
    # Columnar stages run once per record *block*, not per packet: a
    # large per-call constant plus a small per-packet slope mirrors the
    # measured batched shape (BENCH_throughput.json).
    "fastpath.parse": StageCost(per_call_ns=20000, per_packet_ns=30, per_byte_ns=0, allocs_per_call=12),
    "fastpath.classify": StageCost(per_call_ns=30000, per_packet_ns=60, per_byte_ns=0, allocs_per_call=40),
    "classify": StageCost(per_call_ns=150, per_packet_ns=0, per_byte_ns=0, allocs_per_call=1),
    "sniff.update": StageCost(per_call_ns=250, per_packet_ns=0, per_byte_ns=0, allocs_per_call=0),
    "cusum.step": StageCost(per_call_ns=1500, per_packet_ns=0, per_byte_ns=0, allocs_per_call=6),
    "federation.feed": StageCost(per_call_ns=2000, per_packet_ns=50, per_byte_ns=0, allocs_per_call=8),
    "merge.fold": StageCost(per_call_ns=5000, per_packet_ns=100, per_byte_ns=0, allocs_per_call=16),
}

DEFAULT_COST = StageCost()

_SNAPSHOT_FIELDS = (
    "calls", "packets", "bytes", "wall_ns", "cpu_ns", "allocs", "timed_calls",
)


class StageHandle:
    """Accumulator for one named stage; bind once, call on the hot path.

    Counting (``add``) is three integer additions.  Timing happens only
    on sampled calls: ``sample()`` tells per-packet callers whether to
    read clocks this time; ``begin()``/``end()`` wrap coarse per-period
    stages.  In cost-model mode ``sample()`` is always False and
    ``begin()`` always returns None, so no clock is ever read.

    All count fields plus ``every``/``countdown`` are public: per-packet
    callers are expected to inline both the countdown test
    (``handle.countdown == 1`` is this call sampled, then reset to
    ``every`` / decrement) and the untimed accumulation (three ``+=``)
    rather than pay three method calls per packet.  The inline form and
    ``sample()``/``add()`` are interchangeable — same state transitions.
    """

    __slots__ = (
        "name", "calls", "packets", "bytes", "wall_ns", "cpu_ns",
        "allocs", "timed_calls", "every", "countdown",
    )

    def __init__(self, name: str, sample_every: int) -> None:
        self.name = name
        self.calls = 0
        self.packets = 0
        self.bytes = 0
        self.wall_ns = 0
        self.cpu_ns = 0
        self.allocs = 0
        self.timed_calls = 0
        # 0 means "never time" (cost-model mode).
        self.every = max(0, int(sample_every))
        self.countdown = self.every

    def sample(self) -> bool:
        """True when this call should read clocks (timers mode only)."""
        if self.every == 0:
            return False
        self.countdown -= 1
        if self.countdown > 0:
            return False
        self.countdown = self.every
        return True

    def add(self, packets: int = 1, nbytes: int = 0) -> None:
        """Account one untimed call."""
        self.calls += 1
        self.packets += packets
        self.bytes += nbytes

    def add_timed(
        self,
        wall_ns: int,
        cpu_ns: int,
        allocs: int,
        packets: int = 1,
        nbytes: int = 0,
    ) -> None:
        """Account one call whose clocks the caller already read."""
        self.calls += 1
        self.packets += packets
        self.bytes += nbytes
        self.wall_ns += wall_ns
        self.cpu_ns += cpu_ns
        self.allocs += allocs
        self.timed_calls += 1

    def begin(self) -> Optional[Tuple[int, int, int]]:
        """Start a coarse-stage measurement; None when untimed."""
        if not self.sample():
            return None
        return (
            gc.get_count()[0],
            time.process_time_ns(),
            time.perf_counter_ns(),
        )

    def end(
        self,
        token: Optional[Tuple[int, int, int]],
        packets: int = 0,
        nbytes: int = 0,
    ) -> None:
        """Finish the measurement started by :meth:`begin`."""
        if token is None:
            self.add(packets, nbytes)
            return
        wall = time.perf_counter_ns() - token[2]
        cpu = time.process_time_ns() - token[1]
        # Clamp: a gen-0 collection between begin and end resets the
        # counter (see allocation_count).
        allocs = max(0, gc.get_count()[0] - token[0])
        self.add_timed(wall, cpu, allocs, packets, nbytes)


class Profiler:
    """Per-stage cost accounting with a deterministic document shape.

    Parameters
    ----------
    mode:
        ``"timers"`` for real clocks, ``"cost-model"`` for fixed per-op
        derivation (see module docstring).
    sample_every:
        In timers mode, per-packet stages time every N-th call and
        extrapolate; coarse stages (created with ``sample_every=1``)
        time every call.
    """

    enabled = True

    def __init__(self, mode: str = "cost-model", sample_every: int = 64) -> None:
        if mode not in ("cost-model", "timers"):
            raise ValueError(
                f"unknown profiler mode {mode!r}; use 'cost-model' or 'timers'"
            )
        self.mode = mode
        self.sample_every = max(1, int(sample_every))
        self._stages: Dict[str, StageHandle] = {}

    def __len__(self) -> int:
        return len(self._stages)

    def stage(self, name: str, sample_every: Optional[int] = None) -> StageHandle:
        """Get-or-create the accumulator for *name* (bind-once point).

        ``sample_every`` overrides the profiler default for this stage
        (pass 1 for coarse per-period stages); it only applies when the
        handle is first created, and is forced to 0 (never time) in
        cost-model mode.
        """
        handle = self._stages.get(name)
        if handle is None:
            if self.mode == "cost-model":
                every = 0
            else:
                every = self.sample_every if sample_every is None else sample_every
            handle = StageHandle(name, every)
            self._stages[name] = handle
        return handle

    def stages(self) -> List[StageHandle]:
        """All handles, sorted by stage name."""
        return [self._stages[name] for name in sorted(self._stages)]

    # ------------------------------------------------------------------
    # Derived documents
    # ------------------------------------------------------------------
    def _derive(self, handle: StageHandle) -> Dict[str, Any]:
        calls = handle.calls
        if self.mode == "cost-model":
            cost = COST_MODEL.get(handle.name, DEFAULT_COST)
            ns_total = (
                cost.per_call_ns * calls
                + cost.per_packet_ns * handle.packets
                + cost.per_byte_ns * handle.bytes
            )
            cpu_ns = ns_total
            allocs = cost.allocs_per_call * calls
            timed = 0
        elif handle.timed_calls == 0:
            ns_total = cpu_ns = allocs = 0
            timed = 0
        else:
            # Extrapolate sampled clocks to the full call count.
            scale = calls / handle.timed_calls
            ns_total = int(handle.wall_ns * scale)
            cpu_ns = int(handle.cpu_ns * scale)
            allocs = int(handle.allocs * scale)
            timed = handle.timed_calls
        return {
            "stage": handle.name,
            "calls": calls,
            "packets": handle.packets,
            "bytes": handle.bytes,
            "ns_total": ns_total,
            "cpu_ns_total": cpu_ns,
            "allocs": allocs,
            "timed_calls": timed,
            "ns_per_call": round(ns_total / calls, 1) if calls else 0.0,
            "ns_per_packet": (
                round(ns_total / handle.packets, 1) if handle.packets else 0.0
            ),
        }

    def stage_documents(self) -> List[Dict[str, Any]]:
        """Per-stage rows with derived nanoseconds, sorted by name."""
        return [self._derive(h) for h in self.stages() if h.calls]

    def to_dict(self) -> Dict[str, Any]:
        """The profile document: stable key order, derived totals.

        In cost-model mode this document is a pure function of the
        stage counts — the byte-identity artifact the CI profile-smoke
        job diffs across ``--workers``.
        """
        rows = self.stage_documents()
        return {
            "mode": self.mode,
            "sample_every": self.sample_every,
            "stages": rows,
            "total_ns": sum(row["ns_total"] for row in rows),
            "total_calls": sum(row["calls"] for row in rows),
        }

    # ------------------------------------------------------------------
    # Shard capture / merge (counts only — derivation happens at export)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Raw counts for shipping a shard's profiler to the parent."""
        return {
            name: {field: getattr(handle, field) for field in _SNAPSHOT_FIELDS}
            for name, handle in sorted(self._stages.items())
            if handle.calls
        }

    def merge_from(self, snapshot: Dict[str, Dict[str, int]]) -> None:
        """Fold a :meth:`to_snapshot` dict into this profiler.

        Addition is commutative, but shards are folded in deterministic
        ``merge_order`` anyway, matching every other obs merge.
        """
        for name in sorted(snapshot):
            handle = self.stage(name)
            entry = snapshot[name]
            for field in _SNAPSHOT_FIELDS:
                setattr(handle, field, getattr(handle, field) + int(entry.get(field, 0)))


class _NullStageHandle:
    """Inert stage handle; every operation is a no-op."""

    __slots__ = ()

    def sample(self) -> bool:
        return False

    def add(self, packets: int = 1, nbytes: int = 0) -> None:
        pass

    def add_timed(self, wall_ns, cpu_ns, allocs, packets=1, nbytes=0) -> None:
        pass

    def begin(self) -> None:
        return None

    def end(self, token, packets: int = 0, nbytes: int = 0) -> None:
        pass


_NULL_HANDLE = _NullStageHandle()


class NullProfiler:
    """Disabled profiler: components bind no handles and pay nothing."""

    enabled = False
    mode: Optional[str] = None
    sample_every = 0

    def __len__(self) -> int:
        return 0

    def stage(self, name: str, sample_every: Optional[int] = None) -> _NullStageHandle:
        return _NULL_HANDLE

    def stages(self) -> List[StageHandle]:
        return []

    def stage_documents(self) -> List[Dict[str, Any]]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": None,
            "sample_every": 0,
            "stages": [],
            "total_ns": 0,
            "total_calls": 0,
        }

    def to_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {}

    def merge_from(self, snapshot: Dict[str, Dict[str, int]]) -> None:
        pass


# ----------------------------------------------------------------------
# Document helpers
# ----------------------------------------------------------------------
def merge_stage_rows(
    documents: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Sum per-stage rows across profile documents (multi-run reports).

    Counts and totals add; per-call / per-packet rates are re-derived
    from the sums.  Rows come back sorted by stage name.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for document in documents:
        for row in document.get("stages", []):
            into = merged.setdefault(
                row["stage"],
                {
                    "stage": row["stage"],
                    "calls": 0,
                    "packets": 0,
                    "bytes": 0,
                    "ns_total": 0,
                    "cpu_ns_total": 0,
                    "allocs": 0,
                    "timed_calls": 0,
                },
            )
            for field in (
                "calls", "packets", "bytes", "ns_total",
                "cpu_ns_total", "allocs", "timed_calls",
            ):
                into[field] += int(row.get(field, 0))
    rows = []
    for name in sorted(merged):
        row = merged[name]
        row["ns_per_call"] = (
            round(row["ns_total"] / row["calls"], 1) if row["calls"] else 0.0
        )
        row["ns_per_packet"] = (
            round(row["ns_total"] / row["packets"], 1) if row["packets"] else 0.0
        )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Folded-stack (flamegraph) export
# ----------------------------------------------------------------------
def folded_stacks(document: Dict[str, Any], root: str = "syndog") -> str:
    """Render a profile document as folded stacks (``a;b;c value``).

    Dotted stage names become frame hierarchies (``pcap.parse`` →
    ``syndog;pcap;parse``), so ``flamegraph.pl prof.folded`` or any
    folded-stack viewer renders the pipeline directly.  An empty
    profile renders as the empty string.
    """
    lines = []
    for row in document.get("stages", []):
        frames = [root] + row["stage"].split(".")
        lines.append(f"{';'.join(frames)} {row['ns_total']}")
    return "".join(line + "\n" for line in lines)


def parse_folded(text: str) -> Dict[str, int]:
    """Parse folded stacks back into ``{stack: value}`` (round-trips)."""
    stacks: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed folded-stack line: {line!r}")
        stacks[stack] = stacks.get(stack, 0) + int(value)
    return stacks


def write_folded(
    document: Dict[str, Any], path: Union[str, Path], root: str = "syndog"
) -> int:
    """Write folded stacks to *path*; returns the number of stacks."""
    text = folded_stacks(document, root=root)
    Path(path).write_text(text, encoding="utf-8")
    return len(text.splitlines())


# ----------------------------------------------------------------------
# Callgrind export
# ----------------------------------------------------------------------
_CALLGRIND_EVENTS = ("Ns", "Calls", "Packets", "Bytes", "Allocs")
_CALLGRIND_FIELDS = ("ns_total", "calls", "packets", "bytes", "allocs")


def callgrind_format(document: Dict[str, Any], root: str = "syndog") -> str:
    """Render a profile document in callgrind format.

    One ``fn=`` record per stage, with a five-event cost line
    (nanoseconds, calls, packets, bytes, allocations) that kcachegrind
    and ``callgrind_annotate`` read directly.
    """
    mode = document.get("mode") or "disabled"
    lines = [
        "# callgrind format — repro.obs.profiler",
        "version: 1",
        f"creator: repro profiler (mode={mode})",
        f"events: {' '.join(_CALLGRIND_EVENTS)}",
        "",
        f"fl={root}/pipeline",
    ]
    for row in document.get("stages", []):
        costs = " ".join(str(int(row[field])) for field in _CALLGRIND_FIELDS)
        lines.append(f"fn={row['stage']}")
        lines.append(f"1 {costs}")
    totals = [0] * len(_CALLGRIND_FIELDS)
    for row in document.get("stages", []):
        for index, field in enumerate(_CALLGRIND_FIELDS):
            totals[index] += int(row[field])
    lines.append("")
    lines.append(f"summary: {' '.join(str(total) for total in totals)}")
    return "".join(line + "\n" for line in lines)


def parse_callgrind(text: str) -> Dict[str, Any]:
    """Parse callgrind text back into events + per-stage costs."""
    events: List[str] = []
    stages: Dict[str, Dict[str, int]] = {}
    summary: List[int] = []
    current: Optional[str] = None
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("events:"):
            events = line.split(":", 1)[1].split()
        elif line.startswith("fn="):
            current = line[3:]
        elif line.startswith("summary:"):
            summary = [int(token) for token in line.split(":", 1)[1].split()]
        elif current is not None and line[0].isdigit():
            values = [int(token) for token in line.split()]
            costs = stages.setdefault(
                current, {field: 0 for field in _CALLGRIND_FIELDS}
            )
            # values[0] is the position (line number); costs follow.
            for field, value in zip(_CALLGRIND_FIELDS, values[1:]):
                costs[field] += value
    return {"events": events, "stages": stages, "summary": summary}


def write_callgrind(
    document: Dict[str, Any], path: Union[str, Path], root: str = "syndog"
) -> int:
    """Write a callgrind file; returns the number of stages exported."""
    Path(path).write_text(callgrind_format(document, root=root), encoding="utf-8")
    return len(document.get("stages", []))


def write_profile_json(document: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write the canonical JSON form (sorted keys, trailing newline) —
    the exact bytes the CI byte-diff compares across ``--workers``."""
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
