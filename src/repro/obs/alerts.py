"""Declarative alerting over the telemetry store: watch the watchers.

A SYN-dog fleet is itself a monitoring system, and production
monitoring systems page *about themselves*: event loss creeping up,
periods degrading, a CUSUM statistic hovering just under the threshold
without ever crossing it.  This module evaluates declarative rules —
PromQL-lite expressions from :mod:`repro.obs.tsdb` plus a ``for``
persistence requirement — against the time-series store, with the
standard three-phase lifecycle:

``inactive → pending → firing → resolved``
    A rule whose expression returns a non-empty vector becomes
    *pending*; after ``for_periods`` consecutive true evaluations it
    *fires* (emitting an ``alert`` event into the JSONL stream and
    capturing flight-recorder context when one is bound); when the
    expression goes false a firing alert *resolves* and a pending one
    is *cancelled*.  End-of-stream :meth:`AlertManager.close` resolves
    anything still firing at the final watermark — a replayed finite
    trace has no "still firing" state, only a history of transitions.

Two evaluation modes share the same state machine:

* **live** — the detector calls :meth:`AlertManager.evaluate` once per
  observation period (monotone watermark, duplicate times ignored).
  This is the operational view the ``/alerts`` endpoint serves.
* **replay** — :func:`replay_rules` walks every distinct sample time
  of a (possibly worker-merged) TSDB in order.  Because feed samples
  carry only logical time, a replay over the merged store is
  byte-identical for every ``--workers N`` — the canonical alerts
  document the chaos CLI writes and CI diffs.

Builtin rules (:func:`builtin_rules`) cover the failure modes earlier
PRs made observable: event drops, degraded periods, worker crashes and
the near-threshold CUSUM watermark.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Union

from .tsdb import QueryError, TimeSeriesDB, parse_query

__all__ = [
    "AlertRule",
    "AlertManager",
    "NullAlertManager",
    "builtin_rules",
    "fleet_rules",
    "profiler_rules",
    "rules_from_dicts",
    "rules_from_file",
    "replay_rules",
]

#: Flight-recorder snapshots included per agent in a firing context.
_CONTEXT_WINDOW_TAIL = 8

#: Firing contexts the manager retains for the live server.
_CONTEXT_RETENTION = 64

_STATES = ("inactive", "pending", "firing")
_TRANSITIONS = ("pending", "firing", "resolved", "cancelled")


class AlertRule:
    """One declarative rule: an expression plus persistence and routing.

    Parameters
    ----------
    name:
        Unique rule identifier (appears in transitions and events).
    expr:
        A PromQL-lite expression (see :mod:`repro.obs.tsdb`); the rule
        is *true* at time t when the expression's filtered vector is
        non-empty.
    for_periods:
        Consecutive true evaluations required before the rule fires
        (``1`` fires immediately; mirrors PromQL's ``for:`` but counted
        in evaluation watermarks — i.e. observation periods — rather
        than wall time, which a deterministic replay does not have).
    severity:
        Free-form routing hint (``warn`` / ``page``).
    description:
        Human-readable annotation carried into the alerts document.
    """

    __slots__ = ("name", "expr", "for_periods", "severity", "description")

    def __init__(
        self,
        name: str,
        expr: str,
        for_periods: int = 1,
        severity: str = "warn",
        description: str = "",
    ) -> None:
        if not name:
            raise ValueError("alert rule needs a name")
        if for_periods < 1:
            raise ValueError(
                f"for_periods must be >= 1 for rule {name!r}: {for_periods}"
            )
        parse_query(expr)  # fail fast on malformed expressions
        self.name = name
        self.expr = expr
        self.for_periods = int(for_periods)
        self.severity = severity
        self.description = description

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "expr": self.expr,
            "for_periods": self.for_periods,
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AlertRule":
        return cls(
            name=raw["name"],
            expr=raw["expr"],
            for_periods=int(raw.get("for_periods", raw.get("for", 1))),
            severity=raw.get("severity", "warn"),
            description=raw.get("description", ""),
        )

    def __repr__(self) -> str:
        return f"AlertRule({self.name!r}, {self.expr!r}, for={self.for_periods})"


class AlertManager:
    """Evaluates rules against a TSDB and tracks alert lifecycles.

    The manager is deterministic by construction: state depends only
    on the rule list and the sequence of evaluated watermarks, never on
    wall time.  Transitions are recorded as plain dicts
    ``{"rule", "to", "t", "value"}`` — the full auditable history the
    ``/alerts`` endpoint and ``repro alerts`` serve.
    """

    enabled = True

    def __init__(
        self,
        rules: Sequence[AlertRule] = (),
        tsdb: Optional[Any] = None,
        events: Optional[Any] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self._rules: List[AlertRule] = []
        self._states: Dict[str, Dict[str, Any]] = {}
        self._tsdb = tsdb
        self._events = events
        self._recorder = recorder
        self._last_t: Optional[float] = None
        self.closed = False
        self.evaluations = 0
        self.transitions: List[Dict[str, Any]] = []
        self.rule_errors: Dict[str, str] = {}
        self.contexts: Deque[Dict[str, Any]] = deque(maxlen=_CONTEXT_RETENTION)
        self._subscribers: List[Any] = []
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    def bind(
        self,
        tsdb: Optional[Any] = None,
        events: Optional[Any] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        """Late wiring by :class:`~repro.obs.runtime.Instrumentation`."""
        if tsdb is not None:
            self._tsdb = tsdb
        if events is not None:
            self._events = events
        if recorder is not None:
            self._recorder = recorder

    def subscribe(self, callback: Any) -> None:
        """Register ``callback(transition_dict)``, invoked synchronously
        on every lifecycle transition (:meth:`evaluate` and
        :meth:`close` alike) — the hook a
        :class:`~repro.defense.response.ResponseEngine` attaches to.
        Callbacks must not re-enter the manager."""
        if not callable(callback):
            raise TypeError(f"subscriber must be callable: {callback!r}")
        self._subscribers.append(callback)

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._states:
            raise ValueError(f"duplicate alert rule name: {rule.name!r}")
        self._rules.append(rule)
        self._states[rule.name] = {
            "state": "inactive",
            "since": None,
            "consecutive": 0,
            "last_value": None,
            "fired_count": 0,
            "resolved_count": 0,
        }

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules)

    def firing(self) -> List[str]:
        """Names of currently firing rules, sorted."""
        return sorted(
            name
            for name, state in self._states.items()
            if state["state"] == "firing"
        )

    def pending(self) -> List[str]:
        return sorted(
            name
            for name, state in self._states.items()
            if state["state"] == "pending"
        )

    # ------------------------------------------------------------------
    def evaluate(self, t: float) -> List[Dict[str, Any]]:
        """Evaluate every rule at watermark *t*; returns the transitions
        this step produced.  Out-of-order or duplicate watermarks are
        ignored (periods from a second grid item replaying earlier
        logical times must not rewind alert state)."""
        if self.closed or self._tsdb is None or not getattr(
            self._tsdb, "enabled", False
        ):
            return []
        if self._last_t is not None and t <= self._last_t:
            return []
        self._last_t = t
        self.evaluations += 1

        produced: List[Dict[str, Any]] = []
        for rule in self._rules:
            try:
                vector = self._tsdb.query(rule.expr, at=t)
            except QueryError as exc:
                self.rule_errors[rule.name] = str(exc)
                vector = []
            state = self._states[rule.name]
            if vector:
                value = max(entry["value"] for entry in vector)
                state["consecutive"] += 1
                state["last_value"] = value
                if state["state"] == "inactive":
                    state["since"] = t
                    if state["consecutive"] >= rule.for_periods:
                        produced.append(self._transition(rule, "firing", t, value))
                    else:
                        state["state"] = "pending"
                        produced.append(self._transition(rule, "pending", t, value))
                elif (
                    state["state"] == "pending"
                    and state["consecutive"] >= rule.for_periods
                ):
                    produced.append(self._transition(rule, "firing", t, value))
            else:
                state["consecutive"] = 0
                if state["state"] == "pending":
                    produced.append(self._transition(rule, "cancelled", t, None))
                elif state["state"] == "firing":
                    produced.append(self._transition(rule, "resolved", t, None))
        return produced

    def close(self, t: Optional[float] = None) -> List[Dict[str, Any]]:
        """End of stream: resolve firing alerts, cancel pending ones.

        A finite replayed trace ends; alerts that never went false
        (e.g. ``events_dropping`` on a sink that, once full, drops
        forever) are closed out at the final watermark so the
        transition history always terminates.  Idempotent.
        """
        if self.closed:
            return []
        self.closed = True
        if t is None:
            t = self._last_t if self._last_t is not None else 0.0
        produced: List[Dict[str, Any]] = []
        for rule in self._rules:
            state = self._states[rule.name]
            if state["state"] == "firing":
                produced.append(self._transition(rule, "resolved", t, None))
            elif state["state"] == "pending":
                produced.append(self._transition(rule, "cancelled", t, None))
        return produced

    # ------------------------------------------------------------------
    def _transition(
        self, rule: AlertRule, to: str, t: float, value: Optional[float]
    ) -> Dict[str, Any]:
        state = self._states[rule.name]
        state["state"] = "firing" if to == "firing" else (
            "pending" if to == "pending" else "inactive"
        )
        if to == "firing":
            state["fired_count"] += 1
        elif to == "resolved":
            state["resolved_count"] += 1
        if to in ("resolved", "cancelled"):
            state["since"] = None
            state["consecutive"] = 0
        record = {
            "rule": rule.name,
            "severity": rule.severity,
            "to": to,
            "t": t,
            "value": value,
        }
        self.transitions.append(record)
        if self._events is not None and getattr(self._events, "enabled", False):
            self._events.emit(
                "alert",
                rule=rule.name,
                severity=rule.severity,
                to=to,
                time=t,
                value=value,
                expr=rule.expr,
            )
        if to == "firing":
            self._capture_context(rule, t, value)
        for callback in self._subscribers:
            callback(record)
        return record

    def _capture_context(
        self, rule: AlertRule, t: float, value: Optional[float]
    ) -> None:
        """Freeze flight-recorder state the moment a rule fires — the
        "what was every detector doing" snapshot an operator wants
        attached to the page."""
        recorder = self._recorder
        if recorder is None or not getattr(recorder, "enabled", False):
            return
        context = {
            "rule": rule.name,
            "t": t,
            "value": value,
            "status": recorder.status(),
            "windows": {
                agent: recorder.window(agent)[-_CONTEXT_WINDOW_TAIL:]
                for agent in recorder.agents
            },
        }
        self.contexts.append(context)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The deterministic alerts document (``/alerts``,
        ``repro alerts --json``, the chaos ``--alerts-out`` artifact).

        Contains rules, per-rule lifecycle state and the full
        transition history; excludes live-only context captures so a
        replayed document matches a live one sample-for-sample.
        """
        return {
            "enabled": True,
            "closed": self.closed,
            "evaluations": self.evaluations,
            "rules": [rule.to_dict() for rule in self._rules],
            "states": {
                name: dict(self._states[name]) for name in sorted(self._states)
            },
            "firing": self.firing(),
            "pending": self.pending(),
            "transitions": list(self.transitions),
            "rule_errors": dict(sorted(self.rule_errors.items())),
        }

    def __repr__(self) -> str:
        return (
            f"AlertManager(rules={len(self._rules)}, "
            f"firing={self.firing()}, transitions={len(self.transitions)})"
        )


class NullAlertManager:
    """The disabled default: no rules, no state, no cost."""

    enabled = False
    closed = False
    evaluations = 0
    transitions: List[Dict[str, Any]] = []
    rule_errors: Dict[str, str] = {}
    contexts: Deque[Dict[str, Any]] = deque()

    @property
    def rules(self) -> List[AlertRule]:
        return []

    def bind(self, tsdb=None, events=None, recorder=None) -> None:
        pass

    def subscribe(self, callback: Any) -> None:
        pass

    def add_rule(self, rule: AlertRule) -> None:
        raise ValueError(
            "cannot add rules to the null alert manager; build an "
            "AlertManager (e.g. enabled_instrumentation(alert_rules=...))"
        )

    def firing(self) -> List[str]:
        return []

    def pending(self) -> List[str]:
        return []

    def evaluate(self, t: float) -> List[Dict[str, Any]]:
        return []

    def close(self, t: Optional[float] = None) -> List[Dict[str, Any]]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"enabled": False}


# ----------------------------------------------------------------------
# Rule construction helpers
# ----------------------------------------------------------------------
def builtin_rules(
    threshold: float = 1.05,
    watermark: float = 0.8,
    window: str = "5m",
    for_periods: int = 2,
    profile_baseline: Optional[Dict[str, Any]] = None,
    fleet: bool = True,
    slo: bool = False,
) -> List[AlertRule]:
    """The standard watch-the-watchers rule set.

    ``threshold`` is the detector's CUSUM threshold N (pass
    ``parameters.threshold``); the near-threshold rule pages when y_n's
    recent maximum exceeds ``watermark * N`` — i.e. *before* an alarm,
    while there is still time to look.

    ``profile_baseline`` (a ``BENCH_profile.json`` document or a bare
    ``{stage: ns_per_packet}`` mapping) additionally arms the per-stage
    overhead-regression rules from :func:`profiler_rules`.

    ``fleet`` (default True) appends the fleet-level rules from
    :func:`fleet_rules`; they watch the ``fleet_*`` rollup series a
    :class:`~repro.router.fleet.Federation` emits and stay inactive on
    single-agent runs, where those series never exist.

    ``slo`` appends the budget burn / exhaustion rules from
    :func:`repro.obs.slo.slo_rules` over the builtin objectives.  Like
    the fleet rules they page off indicator series
    (``slo_burning{slo=...}`` / ``slo_budget_consumed{slo=...}``) and
    stay inactive until an :class:`~repro.obs.slo.SLOEngine` records
    them — the soak campaign's standing configuration.
    """
    rules = _builtin_core_rules(threshold, watermark, window, for_periods)
    if fleet:
        rules.extend(fleet_rules(threshold, watermark=watermark, window=window))
    if profile_baseline:
        rules.extend(profiler_rules(profile_baseline))
    if slo:
        # Local import: repro.obs.slo imports AlertRule from this module.
        from .slo import slo_rules

        rules.extend(slo_rules())
    return rules


def fleet_rules(
    threshold: float = 1.05,
    min_quorum: float = 0.9,
    max_alarm_fraction: float = 0.5,
    watermark: float = 0.8,
    window: str = "5m",
    for_periods: int = 1,
) -> List[AlertRule]:
    """Fleet-level rules over the rollup series
    (:mod:`repro.obs.rollup` via :class:`~repro.router.fleet.Federation`).

    These watch the *reduction*, not the agents: evaluating them is
    O(1) in fleet size because the federation already folded the fleet
    into the ``fleet_*`` samples.  ``fleet_cusum_p99_near_threshold``
    is the fleet analogue of ``cusum_near_threshold`` — it pages when
    the 99th-percentile CUSUM across agents approaches the alarm
    threshold N, i.e. when a broad slice of the fleet (not one noisy
    agent) is trending toward alarm.
    """
    return [
        AlertRule(
            name="fleet_quorum_low",
            expr=f"last_over_time(fleet_quorum[{window}]) < {min_quorum!r}",
            for_periods=for_periods,
            severity="page",
            description=(
                f"less than {min_quorum * 100:.0f}% of federation members "
                "are alive — absence of alarms is not evidence of health"
            ),
        ),
        AlertRule(
            name="fleet_alarm_fraction_high",
            expr=(
                f"last_over_time(fleet_alarm_fraction[{window}]) > "
                f"{max_alarm_fraction!r}"
            ),
            for_periods=for_periods,
            severity="page",
            description=(
                f"more than {max_alarm_fraction * 100:.0f}% of the fleet "
                "is alarming at once — a coordinated flood or a "
                "systematic false-positive source"
            ),
        ),
        AlertRule(
            name="fleet_cusum_p99_near_threshold",
            expr=(
                f"max_over_time(fleet_cusum_p99[{window}]) > "
                f"{watermark!r} * {threshold!r}"
            ),
            for_periods=for_periods,
            severity="warn",
            description=(
                "the fleet's 99th-percentile CUSUM is within "
                f"{(1 - watermark) * 100:.0f}% of the alarm threshold — "
                "a fleet-wide drift, not a single hot agent"
            ),
        ),
    ]


def _builtin_core_rules(
    threshold: float,
    watermark: float,
    window: str,
    for_periods: int,
) -> List[AlertRule]:
    return [
        AlertRule(
            name="cusum_near_threshold",
            expr=(
                f"max_over_time(syndog_cusum[{window}]) > "
                f"{watermark!r} * {threshold!r}"
            ),
            for_periods=for_periods,
            severity="warn",
            description=(
                "CUSUM statistic y_n has been within "
                f"{(1 - watermark) * 100:.0f}% of the alarm threshold "
                f"over the last {window}"
            ),
        ),
        AlertRule(
            name="events_dropping",
            expr="rate(obs_events_dropped_total[2m]) > 0",
            for_periods=1,
            severity="warn",
            description=(
                "bounded event sinks are dropping events — telemetry "
                "history is incomplete from here on"
            ),
        ),
        AlertRule(
            name="degraded_periods",
            expr=f"sum_over_time(syndog_degraded[{window}]) > 0",
            for_periods=1,
            severity="warn",
            description=(
                "the detector interpolated missing observation periods "
                f"within the last {window}"
            ),
        ),
        AlertRule(
            name="worker_crashes",
            expr="increase(federation_member_failures_total[10m]) > 0",
            for_periods=1,
            severity="page",
            description="federation members failed and were restarted",
        ),
        AlertRule(
            name="worker_retries",
            expr="last_over_time(parallel_worker_retries_total[10m]) > 0",
            for_periods=1,
            severity="page",
            description=(
                "the sharded execution engine rescheduled crashed workers"
            ),
        ),
    ]


def profiler_rules(
    baseline: Dict[str, Any],
    tolerance: float = 1.5,
    window: str = "10m",
    for_periods: int = 2,
) -> List[AlertRule]:
    """Per-stage overhead-regression rules over the profiler's series.

    *baseline* is either a ``BENCH_profile.json`` document (its
    ``stages`` rows carry ``ns_per_packet``) or a bare
    ``{stage: ns_per_packet}`` mapping.  One rule per stage fires when
    the live ``stage_ns_per_packet{stage=...}`` (fed by the TSDB's
    per-period profiler snapshot) stays above ``tolerance`` times the
    baseline — the standing perf telemetry that catches a hot-path
    regression stage by stage instead of as one blurred end-to-end
    number.
    """
    costs: Dict[str, float] = {}
    for row in baseline.get("stages", []) if "stages" in baseline else []:
        costs[str(row["stage"])] = float(row["ns_per_packet"])
    if not costs:
        costs = {
            str(stage): float(value)
            for stage, value in baseline.items()
            if isinstance(value, (int, float))
        }
    rules = []
    for stage in sorted(costs):
        budget = costs[stage] * tolerance
        slug = stage.replace(".", "_")
        rules.append(
            AlertRule(
                name=f"stage_overhead_{slug}",
                expr=(
                    f'min_over_time(stage_ns_per_packet{{stage="{stage}"}}'
                    f"[{window}]) > {budget!r}"
                ),
                for_periods=for_periods,
                severity="warn",
                description=(
                    f"pipeline stage {stage} has cost more than "
                    f"{tolerance:g}x its committed baseline "
                    f"({costs[stage]:g} ns/packet) over the last {window}"
                ),
            )
        )
    return rules


def rules_from_dicts(raw: Iterable[Dict[str, Any]]) -> List[AlertRule]:
    return [AlertRule.from_dict(entry) for entry in raw]


def rules_from_file(path: Union[str, Path]) -> List[AlertRule]:
    """Load rules from a JSON file: either a bare list of rule dicts or
    ``{"rules": [...]}``."""
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if isinstance(document, dict):
        document = document.get("rules", [])
    if not isinstance(document, list):
        raise ValueError(f"rules file {path} must hold a list of rules")
    return rules_from_dicts(document)


def replay_rules(
    rules: Sequence[AlertRule],
    tsdb: Union[TimeSeriesDB, Any],
    recorder: Optional[Any] = None,
) -> AlertManager:
    """Deterministically re-evaluate *rules* over a TSDB's full history.

    Walks every distinct sample time ascending, then closes the manager
    at the final watermark.  This is the canonical alerts document: the
    same merged store yields the same bytes whether the samples came
    from one process or N workers.
    """
    manager = AlertManager(rules=rules, tsdb=tsdb, recorder=recorder)
    for t in tsdb.watermarks():
        manager.evaluate(t)
    manager.close()
    return manager
