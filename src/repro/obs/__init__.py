"""Observability for the detection path: metrics, tracing, events.

The paper's agent is O(1)-state and meant to sit on a busy leaf router;
operating one means watching it.  This package is a dependency-free
observability layer threaded through the whole pipeline —
classification, sniffing, CUSUM, routers, experiments — with two
export formats (Prometheus text exposition and JSONL event streams)
and a hard rule: **zero cost when disabled**.  The default everywhere
is :data:`~repro.obs.runtime.NULL_INSTRUMENTATION`; components bind
no-op instruments to ``None`` at construction so the hot path pays a
single pointer check.

Modules
-------
``metrics``
    Counter / Gauge / Histogram families with labeled children and a
    get-or-create :class:`MetricsRegistry` (plus the no-op
    :class:`NullRegistry`).
``tracing``
    perf_counter span timers with per-name aggregates.
``events``
    Structured events fanned out to JSONL / in-memory sinks.
``exporters``
    Prometheus text rendering + parsing, JSONL views, tracer folding.
``runtime``
    The :class:`Instrumentation` bundle, the process-wide default, and
    the ``instrumented(...)`` scope manager.
``recorder``
    The per-agent flight recorder: detector-state ring buffers and
    self-describing ``alarm_context`` events.
``server``
    The live scrape endpoint: ``/metrics`` + ``/healthz`` + ``/events``
    from a daemon-thread HTTP server.
``analyze``
    Offline forensics over events JSONL (``repro report``): alarm
    timelines, detection latency, false-alarm counts, CUSUM traces.
``merge``
    Folding per-shard registries/event groups from
    :mod:`repro.parallel` workers into the parent bundle, plus the
    deterministic (wall-clock-free) projections that byte-identity
    tests compare.
``tsdb``
    Bounded in-memory telemetry history: every per-period detector
    sample plus registry snapshots, with deterministic downsampling,
    worker-merge support and a PromQL-lite query engine.
``alerts``
    Declarative alert rules over the history store:
    pending→firing→resolved lifecycle, builtin watch-the-watchers
    rules, live evaluation and deterministic replay.
``profiler``
    Hot-path per-stage cost attribution (wall/CPU time, packets,
    bytes, allocations) with a deterministic cost-model mode and
    folded-stack / callgrind exports.
``rollup``
    Fleet-scale telemetry: mergeable fixed-bucket quantile digests,
    Space-Saving top-K suspect rankings and population counters —
    the O(K) ``/fleet`` document and the ``repro fleet`` backend.
"""

from .alerts import (
    AlertManager,
    AlertRule,
    NullAlertManager,
    builtin_rules,
    profiler_rules,
    replay_rules,
    rules_from_dicts,
    rules_from_file,
)

from .analyze import (
    AgentTimeline,
    AlarmSpan,
    EventsReport,
    analyze_events,
    analyze_files,
    render_report,
)
from .events import (
    EventLog,
    JsonlSink,
    MemorySink,
    NullEventLog,
    read_jsonl,
)
from .exporters import (
    chrome_trace,
    export_event_stats,
    export_profiler,
    export_tracer,
    parse_prometheus_text,
    registry_to_dicts,
    render_prometheus,
    summarize_histograms,
    write_chrome_trace,
    write_prometheus,
)
from .merge import (
    canonical_event,
    canonical_events,
    deterministic_families,
    merge_event_groups,
    merge_rollup_snapshots,
    merge_snapshot,
    merge_snapshots,
    merge_tsdb_snapshots,
    merged_registry,
    registry_snapshot,
    render_deterministic,
    rollup_snapshot,
    tsdb_snapshot,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .profiler import (
    COST_MODEL,
    PIPELINE_STAGES,
    NullProfiler,
    Profiler,
    StageCost,
    StageHandle,
    callgrind_format,
    folded_stacks,
    merge_stage_rows,
    parse_callgrind,
    parse_folded,
    write_callgrind,
    write_folded,
    write_profile_json,
)
from .recorder import FlightRecorder, NullFlightRecorder
from .rollup import (
    DEFAULT_TOP_K,
    AgentState,
    FleetRollup,
    QuantileDigest,
    SpaceSavingTopK,
    rollup_from_events,
    states_from_events,
    states_from_recorder,
    synthetic_fleet_states,
)
from .runtime import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    enabled_instrumentation,
    get_instrumentation,
    instrumented,
    resolve_instrumentation,
    set_instrumentation,
)
from .server import ObsServer
from .tracing import NullTracer, SpanRecord, SpanStats, Tracer
from .tsdb import (
    NullTSDB,
    QueryError,
    TimeSeriesDB,
    canonical_tsdb,
    merge_tsdb,
    parse_query,
    tsdb_from_events,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    # tracing
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "SpanStats",
    # events
    "EventLog",
    "JsonlSink",
    "MemorySink",
    "NullEventLog",
    "read_jsonl",
    # exporters
    "render_prometheus",
    "write_prometheus",
    "parse_prometheus_text",
    "registry_to_dicts",
    "export_tracer",
    "export_event_stats",
    "summarize_histograms",
    "chrome_trace",
    "write_chrome_trace",
    # merge
    "registry_snapshot",
    "merge_snapshot",
    "merge_snapshots",
    "merged_registry",
    "deterministic_families",
    "render_deterministic",
    "canonical_event",
    "canonical_events",
    "merge_event_groups",
    "tsdb_snapshot",
    "merge_tsdb_snapshots",
    "rollup_snapshot",
    "merge_rollup_snapshots",
    # rollup
    "FleetRollup",
    "QuantileDigest",
    "SpaceSavingTopK",
    "AgentState",
    "DEFAULT_TOP_K",
    "states_from_recorder",
    "states_from_events",
    "rollup_from_events",
    "synthetic_fleet_states",
    # tsdb
    "TimeSeriesDB",
    "NullTSDB",
    "QueryError",
    "parse_query",
    "tsdb_from_events",
    "merge_tsdb",
    "canonical_tsdb",
    # alerts
    "AlertRule",
    "AlertManager",
    "NullAlertManager",
    "builtin_rules",
    "profiler_rules",
    "rules_from_dicts",
    "rules_from_file",
    "replay_rules",
    # profiler
    "Profiler",
    "NullProfiler",
    "StageHandle",
    "StageCost",
    "COST_MODEL",
    "PIPELINE_STAGES",
    "merge_stage_rows",
    "folded_stacks",
    "parse_folded",
    "write_folded",
    "callgrind_format",
    "parse_callgrind",
    "write_callgrind",
    "write_profile_json",
    "export_profiler",
    # recorder
    "FlightRecorder",
    "NullFlightRecorder",
    # server
    "ObsServer",
    # analyze
    "AlarmSpan",
    "AgentTimeline",
    "EventsReport",
    "analyze_events",
    "analyze_files",
    "render_report",
    # runtime
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "enabled_instrumentation",
    "get_instrumentation",
    "set_instrumentation",
    "instrumented",
    "resolve_instrumentation",
]
