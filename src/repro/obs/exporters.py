"""Render a :class:`~repro.obs.metrics.MetricsRegistry` for the outside
world.

Two formats:

* **Prometheus text exposition** (`# HELP` / `# TYPE` / sample lines
  with escaped labels) — what a scrape endpoint or node-exporter
  textfile collector consumes.  :func:`parse_prometheus_text` is the
  matching minimal parser, used by the test-suite to prove the output
  is machine-readable and by tooling that wants the numbers back.
* **JSONL** via :func:`registry_to_dicts` — one dict per sample, for
  shipping metrics down the same pipe as the event log.

:func:`export_tracer` folds a :class:`~repro.obs.tracing.Tracer`'s
aggregate span profile into a registry as ``trace_span_*`` families so
one scrape carries both metrics and timings.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .metrics import Histogram, MetricsRegistry
from .tracing import Tracer

__all__ = [
    "render_prometheus",
    "write_prometheus",
    "parse_prometheus_text",
    "registry_to_dicts",
    "export_tracer",
    "export_event_stats",
    "export_profiler",
    "summarize_histograms",
    "chrome_trace",
    "write_chrome_trace",
]

PathLike = Union[str, Path]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            lines.append(
                f"{family.name}{sample.suffix}"
                f"{_render_labels(sample.labels)} "
                f"{_format_value(sample.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> int:
    """Write the exposition file; returns the number of sample lines.

    The write is atomic (temp file in the same directory, then
    ``os.replace``) so a concurrent file-based scraper or ``tail``
    never observes a partially written metrics file.
    """
    text = render_prometheus(registry)
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


# ----------------------------------------------------------------------
# Parsing (round-trip validation and tooling)
# ----------------------------------------------------------------------
def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {text[eq:]!r}")
        j = eq + 2
        value_chars: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                escaped = text[j]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
            else:
                value_chars.append(text[j])
            j += 1
        labels[name] = "".join(value_chars)
        i = j + 1
    return labels


def parse_prometheus_text(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` tuples.

    Raises ValueError on malformed sample lines — which is exactly what
    makes it useful as an acceptance check for the renderer.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            brace = line.index("{")
            name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed sample line: {line!r}")
            name, value_text = parts[0], parts[1]
            labels = {}
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"malformed metric name: {name!r}")
        value_text = value_text.split()[0]  # ignore optional timestamp
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        samples.append((name, labels, value))
    return samples


# ----------------------------------------------------------------------
# Registry → dicts (JSONL-friendly)
# ----------------------------------------------------------------------
def registry_to_dicts(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """One dict per sample — the JSONL view of a scrape."""
    rows: List[Dict[str, Any]] = []
    for family in registry.collect():
        for sample in family.samples():
            rows.append(
                {
                    "metric": family.name + sample.suffix,
                    "type": family.kind,
                    "labels": dict(sample.labels),
                    "value": sample.value,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Histogram summaries (quantile view of a scrape)
# ----------------------------------------------------------------------
def summarize_histograms(
    registry: MetricsRegistry,
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99),
) -> List[Dict[str, Any]]:
    """One row per histogram child: count, sum, mean and interpolated
    quantiles (p50/p95/p99 by default).  Empty histograms are skipped —
    there is nothing to estimate."""
    rows: List[Dict[str, Any]] = []
    for family in registry.collect():
        if not isinstance(family, Histogram):
            continue
        children: List[Tuple[Dict[str, str], Histogram]]
        if family.labelnames:
            children = [
                (dict(zip(family.labelnames, key)), child)
                for key, child in family._children.items()
            ]
        else:
            children = [({}, family)]
        for labels, child in children:
            if child.count == 0:
                continue
            row: Dict[str, Any] = {
                "metric": family.name,
                "labels": labels,
                "count": child.count,
                "sum": child.sum,
                "mean": child.sum / child.count,
            }
            for q in quantiles:
                row[f"p{round(q * 100):d}"] = child.quantile(q)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Event log → registry (loss accounting)
# ----------------------------------------------------------------------
def export_event_stats(events: Any, registry: MetricsRegistry) -> None:
    """Fold the event log's emission/loss counters into *registry* as
    ``obs_events_emitted_total`` / ``obs_events_dropped_total`` so a
    scrape (or the final ``.prom``) makes silent event loss visible.
    Idempotent, like :func:`export_tracer`."""
    if not getattr(events, "enabled", False):
        return
    emitted = registry.counter(
        "obs_events_emitted_total", "Structured events emitted this run"
    )
    emitted.inc(events.events_emitted - emitted.value)
    dropped = registry.counter(
        "obs_events_dropped_total",
        "Events dropped by bounded sinks (silent loss made visible)",
    )
    dropped.inc(getattr(events, "dropped", 0) - dropped.value)


# ----------------------------------------------------------------------
# Profiler → registry
# ----------------------------------------------------------------------
def export_profiler(profiler: Any, registry: MetricsRegistry) -> None:
    """Fold the profiler's per-stage attribution into *registry* as
    ``profile_stage_ns_total`` / ``_calls_total`` / ``_packets_total``
    families labeled by stage, so one scrape carries the cost profile.
    Idempotent, like :func:`export_tracer`.  Like ``trace_span_*``,
    these families are excluded from the deterministic projection in
    :mod:`repro.obs.merge` (timers-mode nanoseconds are wall clock)."""
    rows = profiler.stage_documents()
    if not rows:
        return
    ns = registry.counter(
        "profile_stage_ns_total",
        "Attributed nanoseconds per pipeline stage",
        ("stage",),
    )
    calls = registry.counter(
        "profile_stage_calls_total", "Calls per pipeline stage", ("stage",)
    )
    packets = registry.counter(
        "profile_stage_packets_total",
        "Packets attributed per pipeline stage",
        ("stage",),
    )
    for row in rows:
        child = ns.labels(row["stage"])
        child.inc(row["ns_total"] - child.value)  # idempotent re-export
        child = calls.labels(row["stage"])
        child.inc(row["calls"] - child.value)
        child = packets.labels(row["stage"])
        child.inc(row["packets"] - child.value)


# ----------------------------------------------------------------------
# Tracer → registry
# ----------------------------------------------------------------------
def export_tracer(tracer: Tracer, registry: MetricsRegistry) -> None:
    """Fold the tracer's aggregate profile into *registry* as
    ``trace_span_count`` / ``_seconds_total`` / ``_seconds_max`` /
    ``_seconds_mean`` families labeled by span name."""
    stats = tracer.stats()
    if not stats:
        return
    count = registry.counter(
        "trace_span_count", "Finished spans per name", ("span",)
    )
    total = registry.gauge(
        "trace_span_seconds_total", "Total time in span", ("span",)
    )
    peak = registry.gauge(
        "trace_span_seconds_max", "Slowest single span", ("span",)
    )
    mean = registry.gauge(
        "trace_span_seconds_mean", "Mean span duration", ("span",)
    )
    for name in sorted(stats):
        entry = stats[name]
        child = count.labels(name)
        child.inc(entry.count - child.value)  # idempotent re-export
        total.labels(name).set(entry.total_seconds)
        peak.labels(name).set(entry.max_seconds)
        mean.labels(name).set(entry.mean_seconds)


# ----------------------------------------------------------------------
# Tracer → Chrome trace events (chrome://tracing / Perfetto)
# ----------------------------------------------------------------------
def chrome_trace(tracer: Tracer, pid: int = 0, tid: int = 0) -> Dict[str, Any]:
    """The tracer's raw span ring as a Chrome trace-event document.

    Complete events (``"ph": "X"``) with microsecond timestamps
    relative to the tracer's epoch — load the JSON straight into
    ``chrome://tracing`` or https://ui.perfetto.dev to see the span
    profile on a real timeline instead of as folded aggregates.
    """
    events = [
        {
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "pid": pid,
            "tid": tid,
        }
        for record in tracer.records()
    ]
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path: PathLike, pid: int = 0, tid: int = 0
) -> int:
    """Write :func:`chrome_trace` to *path* (atomically, like
    :func:`write_prometheus`); returns the number of trace events."""
    document = chrome_trace(tracer, pid=pid, tid=tid)
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=1)
            stream.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(document["traceEvents"])
