"""Declarative SLOs with multi-window burn-rate evaluation.

A soak run (and a production fleet) is judged against *objectives*,
not raw counters: "at most 1% of quiet periods may carry a false
alarm", "the detector must catch 95% of floods within its latency
target", "event loss stays under 0.1%".  This module turns those
sentences into data: an :class:`SLOSpec` names a *bad-event* and a
*total-event* query over the existing :class:`~repro.obs.tsdb.
TimeSeriesDB`, plus an error budget (the allowed bad fraction), and
the :class:`SLOEngine` evaluates it the way production SRE practice
does — as **multi-window burn rates** (Google SRE workbook, ch. 5):

    burn_rate(W) = (bad(W) / total(W)) / budget

A burn rate of 1.0 consumes the budget exactly at the sustainable
pace; a pair of windows (one short, one long) must *both* exceed a
pair threshold before the SLO counts as *burning* — the short window
gives fast reaction, the long window suppresses blips.  On top of the
pairs the engine reports total budget consumption over the whole
retained horizon, so a soak's final verdict distinguishes ``ok`` /
``burning`` / ``exhausted`` / ``no_data`` per objective.

Everything is evaluated over logical-time feed samples, so — like the
alerts replay — the same merged store yields byte-identical SLO
documents at any ``--workers``.  :meth:`SLOEngine.record` writes the
computed ``slo_burning{slo=...}`` / ``slo_budget_consumed{slo=...}``
indicator series back into the store, which is what lets plain
PromQL-lite alert rules (:func:`slo_rules`, wired through
:func:`repro.obs.alerts.builtin_rules` with ``slo=True``) page on
budget exhaustion without needing vector division in the query
language.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .alerts import AlertRule

__all__ = [
    "SLOSpec",
    "SLOEngine",
    "builtin_slos",
    "slo_rules",
    "DEFAULT_BURN_WINDOWS",
]

#: Multi-window burn-rate pairs ``(short_seconds, long_seconds,
#: threshold)`` — the standard fast/mid/slow ladder, in simulated
#: seconds (periods are t0 = 20 s, so the 1 h window spans 180
#: periods).  A pair trips only when *both* its windows burn faster
#: than the threshold.
DEFAULT_BURN_WINDOWS: Tuple[Tuple[float, float, float], ...] = (
    (300.0, 3600.0, 14.4),     # 5 m / 1 h  — page-fast
    (3600.0, 21600.0, 6.0),    # 1 h / 6 h  — page-slow
    (21600.0, 86400.0, 1.0),   # 6 h / 1 d  — ticket
)

#: Float rounding for canonical SLO documents (matches the chaos/soak
#: report convention).
_ROUND = 9


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), _ROUND)


class SLOSpec:
    """One declarative objective over the time-series store.

    Parameters
    ----------
    name:
        Unique objective identifier (labels the indicator series).
    description:
        The human sentence the spec encodes.
    budget:
        Allowed bad fraction in ``(0, 1)`` — the error budget.
    bad_exprs / total_exprs:
        Parallel candidate lists of PromQL-lite range expressions with
        a ``{window}`` placeholder (filled with e.g. ``3600s``).  The
        engine uses the first candidate *pair* whose total expression
        returns data — letting one spec prefer ground-truth series a
        soak feeds (``soak_false_alarm``) and fall back to live
        detector series (``syndog_alarm_active``) outside a soak.
    windows:
        Burn-rate pairs, see :data:`DEFAULT_BURN_WINDOWS`.
    """

    __slots__ = (
        "name", "description", "budget", "bad_exprs", "total_exprs",
        "windows",
    )

    def __init__(
        self,
        name: str,
        description: str,
        budget: float,
        bad_exprs: Sequence[str],
        total_exprs: Sequence[str],
        windows: Sequence[Tuple[float, float, float]] = DEFAULT_BURN_WINDOWS,
    ) -> None:
        if not name:
            raise ValueError("SLO spec needs a name")
        if not 0.0 < budget < 1.0:
            raise ValueError(
                f"budget must be a fraction in (0, 1) for {name!r}: {budget}"
            )
        if len(bad_exprs) != len(total_exprs) or not bad_exprs:
            raise ValueError(
                f"{name!r} needs matched, non-empty bad/total expression "
                f"lists: {len(bad_exprs)} vs {len(total_exprs)}"
            )
        self.name = name
        self.description = description
        self.budget = float(budget)
        self.bad_exprs = tuple(bad_exprs)
        self.total_exprs = tuple(total_exprs)
        self.windows = tuple(
            (float(short), float(long), float(threshold))
            for short, long, threshold in windows
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "budget": self.budget,
            "bad_exprs": list(self.bad_exprs),
            "total_exprs": list(self.total_exprs),
            "windows": [list(pair) for pair in self.windows],
        }

    def __repr__(self) -> str:
        return f"SLOSpec({self.name!r}, budget={self.budget})"


def builtin_slos(
    detection_budget: float = 0.05,
    false_alarm_budget: float = 0.01,
    degraded_budget: float = 0.02,
    event_loss_budget: float = 0.001,
) -> List[SLOSpec]:
    """The four standing objectives a soak judges the detector by.

    * **detection_latency** — at most ``detection_budget`` of attack
      windows may be missed or detected later than the latency target
      (the soak feeds one ``soak_detection_miss`` sample per attack
      window; Eq. 8 says every in-scope flood is detectable).
    * **false_alarm_budget** — CUSUM's bounded false-alarm guarantee,
      measured: at most ``false_alarm_budget`` of quiet periods may
      carry an alarm.  Prefers the soak's ground-truth
      ``soak_false_alarm`` indicator; outside a soak every alarm-active
      period counts against the budget.
    * **availability** — at most ``degraded_budget`` of periods may run
      degraded (carried-forward or held counts).
    * **event_loss** — bounded sinks may drop at most
      ``event_loss_budget`` of emitted events.
    """
    return [
        SLOSpec(
            name="detection_latency",
            description=(
                "attack windows detected within the latency target "
                f"(miss budget {detection_budget:g})"
            ),
            budget=detection_budget,
            bad_exprs=("sum_over_time(soak_detection_miss[{window}])",),
            total_exprs=("count_over_time(soak_detection_miss[{window}])",),
        ),
        SLOSpec(
            name="false_alarm_budget",
            description=(
                "quiet periods free of false alarms "
                f"(false-alarm budget {false_alarm_budget:g})"
            ),
            budget=false_alarm_budget,
            bad_exprs=(
                "sum_over_time(soak_false_alarm[{window}])",
                "sum_over_time(syndog_alarm_active[{window}])",
            ),
            total_exprs=(
                "count_over_time(soak_false_alarm[{window}])",
                "count_over_time(syndog_alarm_active[{window}])",
            ),
        ),
        SLOSpec(
            name="availability",
            description=(
                "periods observed rather than degraded "
                f"(degraded-time budget {degraded_budget:g})"
            ),
            budget=degraded_budget,
            bad_exprs=("sum_over_time(syndog_degraded[{window}])",),
            total_exprs=("count_over_time(syndog_degraded[{window}])",),
        ),
        SLOSpec(
            name="event_loss",
            description=(
                "emitted events retained by bounded sinks "
                f"(loss budget {event_loss_budget:g})"
            ),
            budget=event_loss_budget,
            bad_exprs=("increase(obs_events_dropped_total[{window}])",),
            total_exprs=("increase(obs_events_emitted_total[{window}])",),
        ),
    ]


class SLOEngine:
    """Evaluates a spec list against a TSDB and records indicators."""

    def __init__(self, specs: Optional[Sequence[SLOSpec]] = None) -> None:
        specs = list(specs) if specs is not None else builtin_slos()
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.specs: Tuple[SLOSpec, ...] = tuple(specs)

    # ------------------------------------------------------------------
    def _ratio(
        self, tsdb: Any, spec: SLOSpec, window: float, at: float
    ) -> Tuple[Optional[float], Optional[float]]:
        """``(bad, total)`` over the trailing *window*, from the first
        candidate expression pair whose total returns data."""
        token = f"{int(window)}s"
        for bad_expr, total_expr in zip(spec.bad_exprs, spec.total_exprs):
            total_vector = tsdb.query(
                total_expr.format(window=token), at=at
            )
            if not total_vector:
                continue
            total = sum(entry["value"] for entry in total_vector)
            bad_vector = tsdb.query(bad_expr.format(window=token), at=at)
            bad = sum(entry["value"] for entry in bad_vector)
            return bad, total
        return None, None

    def _burn(
        self, tsdb: Any, spec: SLOSpec, window: float, at: float
    ) -> Optional[float]:
        bad, total = self._ratio(tsdb, spec, window, at)
        if total is None or total <= 0.0:
            return None
        return (bad / total) / spec.budget

    # ------------------------------------------------------------------
    def evaluate(
        self, tsdb: Any, at: Optional[float] = None
    ) -> Dict[str, Any]:
        """The SLO document at watermark *at* (default: newest sample).

        Per spec: every burn-window pair with both rates, whether the
        pair breached, total budget consumption over the full retained
        horizon, and a verdict in ``ok`` / ``burning`` / ``exhausted``
        / ``no_data``.  The overall verdict is the worst per-spec one.
        """
        if at is None:
            at = tsdb.last_time()
        slos: List[Dict[str, Any]] = []
        for spec in self.specs:
            if at is None:
                slos.append(self._no_data(spec))
                continue
            windows = []
            burning = False
            for short, long_, threshold in spec.windows:
                short_burn = self._burn(tsdb, spec, short, at)
                long_burn = self._burn(tsdb, spec, long_, at)
                breached = (
                    short_burn is not None
                    and long_burn is not None
                    and short_burn > threshold
                    and long_burn > threshold
                )
                burning = burning or breached
                windows.append(
                    {
                        "short_seconds": short,
                        "long_seconds": long_,
                        "threshold": threshold,
                        "short_burn": _round(short_burn),
                        "long_burn": _round(long_burn),
                        "breached": breached,
                    }
                )
            # Full-horizon budget consumption: one window reaching back
            # past every retained sample.
            horizon = at + 1.0
            bad, total = self._ratio(tsdb, spec, horizon, at)
            if total is None or total <= 0.0:
                slos.append(self._no_data(spec, windows))
                continue
            consumed = (bad / total) / spec.budget
            verdict = "ok"
            if consumed >= 1.0:
                verdict = "exhausted"
            elif burning:
                verdict = "burning"
            slos.append(
                {
                    "name": spec.name,
                    "description": spec.description,
                    "budget": spec.budget,
                    "verdict": verdict,
                    "bad": _round(bad),
                    "total": _round(total),
                    "budget_consumed": _round(consumed),
                    "windows": windows,
                }
            )
        order = {"no_data": 0, "ok": 1, "burning": 2, "exhausted": 3}
        worst = "no_data"
        for entry in slos:
            if order[entry["verdict"]] > order[worst]:
                worst = entry["verdict"]
        return {
            "at": None if at is None else _round(at),
            "verdict": worst,
            "slos": slos,
        }

    @staticmethod
    def _no_data(
        spec: SLOSpec, windows: Optional[List[Dict[str, Any]]] = None
    ) -> Dict[str, Any]:
        return {
            "name": spec.name,
            "description": spec.description,
            "budget": spec.budget,
            "verdict": "no_data",
            "bad": None,
            "total": None,
            "budget_consumed": None,
            "windows": windows or [],
        }

    # ------------------------------------------------------------------
    def record(
        self, tsdb: Any, document: Optional[Dict[str, Any]] = None,
        at: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evaluate (unless *document* is given) and append the
        indicator series — ``slo_burning{slo=...}`` (1.0 while any
        burn-window pair is breached) and
        ``slo_budget_consumed{slo=...}`` — at the document's watermark.
        These are plain feed samples: computed from logical-time
        samples only, they merge and replay deterministically, and
        :func:`slo_rules` pages off them."""
        if document is None:
            document = self.evaluate(tsdb, at=at)
        t = document.get("at")
        if t is None:
            return document
        for entry in document["slos"]:
            if entry["verdict"] == "no_data":
                continue
            labels = {"slo": entry["name"]}
            tsdb.append(
                "slo_burning", labels, float(t),
                1.0 if entry["verdict"] in ("burning", "exhausted") else 0.0,
            )
            tsdb.append(
                "slo_budget_consumed", labels, float(t),
                float(entry["budget_consumed"]),
            )
        return document


def slo_rules(
    specs: Optional[Sequence[SLOSpec]] = None,
    window: str = "1h",
) -> List[AlertRule]:
    """Budget-exhaustion alert rules over the recorded indicator series.

    Two rules per objective: ``slo_<name>_burn`` pages while a
    multi-window pair is breached (the engine already encoded the
    two-window AND into ``slo_burning``), and
    ``slo_<name>_budget_exhausted`` pages once total consumption
    reaches the full budget.  Inactive until an
    :meth:`SLOEngine.record` pass has fed the series — the same
    stays-quiet contract as the fleet rules on single-agent runs.
    """
    if specs is None:
        specs = builtin_slos()
    rules: List[AlertRule] = []
    for spec in specs:
        rules.append(
            AlertRule(
                name=f"slo_{spec.name}_burn",
                expr=(
                    f'last_over_time(slo_burning{{slo="{spec.name}"}}'
                    f"[{window}]) > 0"
                ),
                for_periods=1,
                severity="page",
                description=(
                    f"SLO {spec.name} is burning its error budget "
                    "faster than a multi-window threshold allows"
                ),
            )
        )
        rules.append(
            AlertRule(
                name=f"slo_{spec.name}_budget_exhausted",
                expr=(
                    f'last_over_time(slo_budget_consumed{{slo="{spec.name}"}}'
                    f"[{window}]) >= 1"
                ),
                for_periods=1,
                severity="page",
                description=(
                    f"SLO {spec.name} has consumed its entire error "
                    f"budget ({spec.budget:g})"
                ),
            )
        )
    return rules
