"""Merging per-shard observability into one registry / event stream.

Worker processes cannot share a :class:`~repro.obs.metrics.MetricsRegistry`
with the parent, so each shard instruments its own and ships a plain-
dict **snapshot** home; the parent folds the snapshots into its live
registry.  The merge semantics per instrument kind:

* **Counter** — summation.  Counter increments are (integer-valued)
  event counts, so merging is exact, associative and commutative.
* **Histogram** — per-bucket count summation plus ``sum``/``count``
  accumulation.  Bucket counts are integers (exact); ``sum`` is a
  float accumulated **in merge order**, which the engine fixes to
  shard-index order so a merged export is deterministic for a given
  plan.
* **Gauge** — last-write-wins in merge order.  A gauge is a point
  sample, not a flow; per-shard gauges are only meaningful when each
  label set is written by exactly one shard (per-agent gauges), and
  fleet-level summary gauges must be recomputed by the parent after
  the merge.

Events merge by **logical order**: every shard returns its events
grouped per grid item, and :func:`merge_event_groups` re-emits them in
grid-index order with freshly stamped ``seq`` — exactly the stream a
serial run would have written.

Byte-identity caveat: wall-clock measurements (``*_seconds*``
histograms, ``trace_span_*`` families, per-event ``wall_seconds``
fields) are real timings and differ between *any* two runs, serial or
not.  :func:`deterministic_families` / :func:`canonical_event` strip
exactly that nondeterministic surface, so equivalence tests — and CI —
can assert byte-identity on everything else.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "registry_snapshot",
    "merge_snapshot",
    "merge_snapshots",
    "merged_registry",
    "deterministic_families",
    "render_deterministic",
    "canonical_event",
    "canonical_events",
    "merge_event_groups",
    "tsdb_snapshot",
    "merge_tsdb_snapshots",
    "rollup_snapshot",
    "merge_rollup_snapshots",
    "NONDETERMINISTIC_EVENT_FIELDS",
]

Snapshot = List[Dict[str, Any]]
Event = Dict[str, Any]

#: Event payload fields that carry wall-clock measurements and can
#: never be identical between two runs.  ``span_seconds`` is the soak
#: epoch event's per-span wall-clock aggregate (repro.experiments.soak).
NONDETERMINISTIC_EVENT_FIELDS: Tuple[str, ...] = (
    "wall_seconds", "seconds", "span_seconds",
)

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# ----------------------------------------------------------------------
# Registry → snapshot
# ----------------------------------------------------------------------
def _family_values(family: Any) -> Dict[str, Any]:
    """One family child's state as plain JSON-able values."""
    if isinstance(family, Histogram):
        return {
            "bucket_counts": list(family._bucket_counts),
            "sum": family._sum,
            "count": family._count,
        }
    return {"value": family._value}


def registry_snapshot(registry: MetricsRegistry) -> Snapshot:
    """The registry as a list of plain dicts, in registration order.

    Registration order is preserved so a merged registry exports its
    families in the same order a serial run would (the Prometheus
    renderer walks registration order).
    """
    snapshot: Snapshot = []
    for family in registry.collect():
        entry: Dict[str, Any] = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
        }
        if isinstance(family, Histogram):
            entry["buckets"] = list(family.buckets)
        if family.labelnames:
            entry["children"] = [
                {"labels": list(key), **_family_values(child)}
                for key, child in family._children.items()
            ]
        else:
            entry.update(_family_values(family))
        snapshot.append(entry)
    return snapshot


# ----------------------------------------------------------------------
# Snapshot → registry
# ----------------------------------------------------------------------
def _merge_values(target: Any, values: Dict[str, Any]) -> None:
    if isinstance(target, Counter):
        target._value += values["value"]
    elif isinstance(target, Gauge):
        target._value = float(values["value"])  # last write wins
    elif isinstance(target, Histogram):
        counts = values["bucket_counts"]
        if len(counts) != len(target._bucket_counts):
            raise ValueError(
                f"{target.name}: bucket count mismatch "
                f"({len(counts)} vs {len(target._bucket_counts)})"
            )
        for i, count in enumerate(counts):
            target._bucket_counts[i] += count
        target._sum += values["sum"]
        target._count += values["count"]
    else:  # pragma: no cover - the registry only builds the three kinds
        raise TypeError(f"cannot merge into {type(target).__name__}")


def merge_snapshot(registry: MetricsRegistry, snapshot: Snapshot) -> None:
    """Fold one shard snapshot into *registry* (get-or-create families,
    accumulate children)."""
    for entry in snapshot:
        cls = _KINDS.get(entry["kind"])
        if cls is None:
            raise ValueError(f"unknown family kind {entry['kind']!r}")
        kwargs = {}
        if cls is Histogram:
            kwargs["buckets"] = tuple(entry["buckets"])
        factory = {
            Counter: registry.counter,
            Gauge: registry.gauge,
            Histogram: registry.histogram,
        }[cls]
        family = factory(
            entry["name"], entry["help"], tuple(entry["labelnames"]), **kwargs
        )
        if entry["labelnames"]:
            for child_entry in entry["children"]:
                child = family.labels(*child_entry["labels"])
                _merge_values(child, child_entry)
        else:
            _merge_values(family, entry)


def merge_snapshots(
    registry: MetricsRegistry, snapshots: Iterable[Snapshot]
) -> MetricsRegistry:
    """Fold many snapshots, **in the given order** (the engine passes
    shard-index order so float accumulation is deterministic)."""
    for snapshot in snapshots:
        merge_snapshot(registry, snapshot)
    return registry


def merged_registry(snapshots: Iterable[Snapshot]) -> MetricsRegistry:
    """A fresh registry holding the merge of *snapshots*."""
    return merge_snapshots(MetricsRegistry(), snapshots)


# ----------------------------------------------------------------------
# The deterministic view (what equivalence tests byte-compare)
# ----------------------------------------------------------------------
def _is_deterministic_name(name: str) -> bool:
    # parallel_worker_* counters measure scheduling accidents (crash
    # reschedules) — facts about the host, like wall time, not about
    # the workload — so they are excluded from byte-identity the same
    # way timings are.
    # profile_stage_* families carry timers-mode wall nanoseconds; the
    # profiler's own deterministic artifact is the cost-model document
    # (repro.obs.profiler), not the registry fold.
    return (
        "_seconds" not in name
        and not name.startswith("trace_span_")
        and not name.startswith("parallel_worker_")
        and not name.startswith("profile_stage_")
    )


def deterministic_families(registry: MetricsRegistry) -> List[Any]:
    """The registry's families minus wall-clock measurements."""
    return [
        family
        for family in registry.collect()
        if _is_deterministic_name(family.name)
    ]


def render_deterministic(registry: MetricsRegistry) -> str:
    """Prometheus text for the deterministic families only — the
    byte-comparable projection of an exported registry."""
    from .exporters import render_prometheus

    filtered = MetricsRegistry()
    filtered._families = {
        family.name: family for family in deterministic_families(registry)
    }
    return render_prometheus(filtered)


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def canonical_event(
    event: Event,
    drop: Sequence[str] = NONDETERMINISTIC_EVENT_FIELDS,
    drop_seq: bool = False,
) -> Event:
    """The event minus its wall-clock fields (and, optionally, its
    ``seq`` stamp), preserving key order."""
    dropped = set(drop)
    if drop_seq:
        dropped.add("seq")
    return {key: value for key, value in event.items() if key not in dropped}


def canonical_events(
    events: Iterable[Event],
    drop: Sequence[str] = NONDETERMINISTIC_EVENT_FIELDS,
    drop_seq: bool = False,
) -> List[Event]:
    return [canonical_event(event, drop, drop_seq) for event in events]


def merge_event_groups(
    events: Any,
    groups: Iterable[Tuple[int, Sequence[Event]]],
    tsdb: Optional[Any] = None,
) -> int:
    """Re-emit per-item event groups into a live event log in grid
    order.

    *groups* is an iterable of ``(grid_index, item_events)``; the union
    over all shards is sorted by grid index — the order a serial run
    would have emitted — and every event is re-stamped with the
    parent's ``seq``.  Returns the number of events re-emitted.

    When a live *tsdb* is passed, the parent's event-loss watermark
    series are reconstructed during the replay: before re-emitting each
    ``period`` event the store ticks at that period's end time, exactly
    where the serial detector ticked — so ``obs_events_dropped_total``
    history (drops happen *here*, against the parent's bounded sinks)
    is byte-identical to a serial run's.
    """
    emitted = 0
    tick = (
        tsdb.tick_events
        if tsdb is not None and getattr(tsdb, "enabled", False)
        else None
    )
    for _index, item_events in sorted(groups, key=lambda group: group[0]):
        for event in item_events:
            if tick is not None and event.get("event") == "period":
                tick(float(event.get("end_time", 0.0)))
            payload = {
                key: value
                for key, value in event.items()
                if key not in ("event", "seq")
            }
            events.emit(event["event"], **payload)
            emitted += 1
    return emitted


# ----------------------------------------------------------------------
# Time-series history
# ----------------------------------------------------------------------
def tsdb_snapshot(tsdb: Any) -> Dict[str, Any]:
    """A shard TSDB as plain dicts (feed samples only — a shard's
    registry-snapshot series would describe partial counters)."""
    return tsdb.to_dict(include_registry=False)


def merge_tsdb_snapshots(
    tsdb: Any, snapshots: Iterable[Dict[str, Any]]
) -> Any:
    """Fold shard TSDB snapshots into the parent store, **in the given
    order** (the engine passes shard merge-order; ties on sample time
    resolve to the earlier shard, deterministically)."""
    for snapshot in snapshots:
        tsdb.merge_from(snapshot)
    return tsdb


# ----------------------------------------------------------------------
# Fleet rollups
# ----------------------------------------------------------------------
def rollup_snapshot(rollup: Any) -> Dict[str, Any]:
    """A shard's fleet rollup as a plain mergeable dict
    (:meth:`repro.obs.rollup.FleetRollup.to_dict`)."""
    return rollup.to_dict()


def merge_rollup_snapshots(
    snapshots: Iterable[Dict[str, Any]], k: Optional[int] = None
) -> Any:
    """Fold shard rollup snapshots into one fleet rollup, **in the
    given order**.  Counter and bucket folds are exact integer sums
    (order-free); float ``sum`` sidecars and over-K top-K truncation
    follow merge order, which the engine fixes to
    :meth:`WorkPlan.merge_order` — worker-count-independent — so the
    merged document is byte-identical at any ``--workers``."""
    from .rollup import FleetRollup

    materialized = list(snapshots)
    if k is None:
        k = int(materialized[0]["k"]) if materialized else None
    target = FleetRollup() if k is None else FleetRollup(k=k)
    for snapshot in materialized:
        target.merge_snapshot(snapshot)
    return target
