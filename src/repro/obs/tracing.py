"""Lightweight span tracing for the detection hot paths.

A full distributed tracer is overkill for a single-process agent; what
the repro needs is *where the time goes*: how long one detection pass
takes, how much of a router replay is spent in observer fan-out, how
long each Monte-Carlo trial runs.  :class:`Tracer` provides

* ``with tracer.span("detect.run"): ...`` — a context-manager timer
  built on :func:`time.perf_counter` (monotonic, immune to wall-clock
  steps);
* per-name aggregate statistics (count / total / min / max), which is
  the profile an operator actually reads;
* an optional bounded ring of raw :class:`SpanRecord` entries for
  fine-grained inspection and JSONL export.

:class:`NullTracer` is the default everywhere: its ``span`` returns a
shared no-op context manager, so an un-configured pipeline pays one
attribute check per span site and nothing else.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

__all__ = ["SpanRecord", "SpanStats", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, start offset and duration in seconds
    (both on the perf_counter clock)."""

    name: str
    start: float
    duration: float


class SpanStats:
    """Aggregate profile of one span name."""

    __slots__ = ("name", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, duration: float) -> None:
        self.count += 1
        self.total_seconds += duration
        if duration < self.min_seconds:
            self.min_seconds = duration
        if duration > self.max_seconds:
            self.max_seconds = duration

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name!r}, count={self.count}, "
            f"total={self.total_seconds:.6f}s, mean={self.mean_seconds:.6f}s)"
        )


class _SpanTimer:
    """The object ``tracer.span(name)`` hands to the ``with`` block."""

    __slots__ = ("_tracer", "name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._finish(self.name, self._start, time.perf_counter())


class Tracer:
    """Collects spans; keeps aggregates always, raw records up to
    *max_records* (a bounded deque — long runs cannot grow memory)."""

    enabled = True

    def __init__(self, max_records: int = 4096) -> None:
        self._stats: Dict[str, SpanStats] = {}
        self._records: Deque[SpanRecord] = deque(maxlen=max_records)
        self._epoch = time.perf_counter()

    def span(self, name: str) -> _SpanTimer:
        return _SpanTimer(self, name)

    def _finish(self, name: str, start: float, end: float) -> None:
        duration = end - start
        stats = self._stats.get(name)
        if stats is None:
            stats = SpanStats(name)
            self._stats[name] = stats
        stats.record(duration)
        self._records.append(
            SpanRecord(name=name, start=start - self._epoch, duration=duration)
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, SpanStats]:
        """Aggregate profile keyed by span name."""
        return dict(self._stats)

    def records(self, name: Optional[str] = None) -> List[SpanRecord]:
        """The retained raw spans (newest last), optionally filtered."""
        if name is None:
            return list(self._records)
        return [record for record in self._records if record.name == name]

    def total_seconds(self, name: str) -> float:
        stats = self._stats.get(name)
        return stats.total_seconds if stats is not None else 0.0


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span`` hands back one shared no-op context
    manager."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def stats(self) -> Dict[str, SpanStats]:
        return {}

    def records(self, name: Optional[str] = None) -> List[SpanRecord]:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0
