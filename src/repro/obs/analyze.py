"""Offline forensics over events JSONL — the ``repro report`` backend.

A detection run instrumented with :func:`enabled_instrumentation`
leaves behind an events JSONL: one ``period`` event per observation
period (the whole CUSUM trajectory), ``alarm_raised`` /
``alarm_cleared`` transitions and, with the flight recorder on,
self-describing ``alarm_context`` events.  This module reconstructs the
run from that stream alone — no trace, no detector, no pickle:

* per-agent **alarm timelines** (raise/clear times, peak statistic);
* **detection latency** per alarm, measured from CUSUM onset — the
  last period the statistic sat at rest (y_n = 0) before the crossing
  — to the alarm period, the same bracketing
  :mod:`repro.experiments.forensics` applies to in-memory records;
* a **false-alarm count**: alarm spans that clear again after fewer
  than ``min_alarm_periods`` periods are transient threshold grazes,
  not sustained floods (a real attack holds the statistic up for its
  whole duration);
* ASCII-sparkline **CUSUM traces** for eyeballing a run in a terminal;
* optional **per-stage cost attribution**: runs profiled with
  :mod:`repro.obs.profiler` leave a ``profile`` event behind at
  finalize; ``render_report(..., profile=True)`` (the ``repro report
  --profile`` flag) folds every profile event in the log into one
  per-stage cost table via
  :func:`~repro.obs.profiler.merge_stage_rows`;
* a **fleet rollup**: the same mergeable digest document ``repro
  fleet`` and the ``/fleet`` endpoint serve — population counters,
  per-metric quantile digests and top-K suspect lists — replayed from
  the log via :func:`~repro.obs.rollup.rollup_from_events`, so a
  report over a 10^4-agent log still summarizes the fleet in O(K);
* a **soak summary**: logs left behind by ``repro soak`` carry one
  ``soak_epoch`` event per epoch; the report folds them into a
  continuous-operation section (epochs, restores, continuity
  failures, detection hit rate, tracer span counts).

Multiple JSONL files analyze into one report (a fleet of runs); agent
keys are prefixed with the file stem when names would collide.
Rendering is text, markdown, or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .events import Event, read_jsonl

__all__ = [
    "AlarmSpan",
    "AgentTimeline",
    "EventsReport",
    "analyze_events",
    "analyze_files",
    "render_report",
]

PathLike = Union[str, Path]

#: Fallback agent key for period events that predate the ``agent``
#: field (PR 1 JSONL stays analyzable).
DEFAULT_AGENT = "agent"

REPORT_FORMATS = ("text", "markdown", "json")


@dataclass(frozen=True)
class AlarmSpan:
    """One contiguous alarm interval on one agent's timeline."""

    agent: str
    raised_period: int
    raised_time: float
    onset_period: int          #: last at-rest period before the raise
    latency_periods: int       #: raised_period - onset_period
    peak_statistic: float
    cleared_period: Optional[int] = None   #: None: still up at end of log
    cleared_time: Optional[float] = None
    false_alarm: bool = False

    @property
    def duration_periods(self) -> Optional[int]:
        if self.cleared_period is None:
            return None
        return self.cleared_period - self.raised_period

    def to_dict(self) -> Dict[str, Any]:
        return {
            "agent": self.agent,
            "raised_period": self.raised_period,
            "raised_time": self.raised_time,
            "onset_period": self.onset_period,
            "latency_periods": self.latency_periods,
            "peak_statistic": self.peak_statistic,
            "cleared_period": self.cleared_period,
            "cleared_time": self.cleared_time,
            "duration_periods": self.duration_periods,
            "false_alarm": self.false_alarm,
        }


@dataclass
class AgentTimeline:
    """Everything reconstructed for one agent."""

    agent: str
    periods: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    times: List[float] = field(default_factory=list)
    statistics: List[float] = field(default_factory=list)
    threshold: Optional[float] = None
    spans: List[AlarmSpan] = field(default_factory=list)
    alarm_contexts: int = 0

    @property
    def detections(self) -> List[AlarmSpan]:
        return [span for span in self.spans if not span.false_alarm]

    @property
    def false_alarms(self) -> List[AlarmSpan]:
        return [span for span in self.spans if span.false_alarm]

    @property
    def first_detection_latency(self) -> Optional[int]:
        detections = self.detections
        return detections[0].latency_periods if detections else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "agent": self.agent,
            "periods": self.periods,
            "first_time": self.first_time,
            "last_time": self.last_time,
            "threshold": self.threshold,
            "max_statistic": max(self.statistics, default=0.0),
            "alarms": len(self.spans),
            "false_alarms": len(self.false_alarms),
            "first_detection_latency_periods": self.first_detection_latency,
            "alarm_contexts": self.alarm_contexts,
            "spans": [span.to_dict() for span in self.spans],
        }


@dataclass
class EventsReport:
    """The whole run (or fleet of runs), reconstructed from JSONL."""

    agents: Dict[str, AgentTimeline]
    events_total: int
    by_kind: Dict[str, int]
    sources: Tuple[str, ...]
    min_alarm_periods: int
    #: Raw ``profile`` event payloads (one per profiled run in the log).
    profiles: Tuple[Dict[str, Any], ...] = ()
    #: Fleet rollup document (:meth:`FleetRollup.to_dict`) replayed
    #: from the log; None when the log carries no period events.
    fleet: Optional[Dict[str, Any]] = None
    #: Raw ``soak_epoch`` event payloads (one per soak epoch in the log).
    soaks: Tuple[Dict[str, Any], ...] = ()

    def soak_summary(self) -> Optional[Dict[str, Any]]:
        """Fold the log's ``soak_epoch`` events into one
        continuous-operation summary (None when the log carries none)."""
        if not self.soaks:
            return None
        attacks = [epoch for epoch in self.soaks if epoch.get("attack")]
        detected = sum(1 for epoch in attacks if epoch.get("detected"))
        latencies = [
            epoch["latency_periods"] for epoch in attacks
            if epoch.get("latency_periods") is not None
        ]
        span_counts: Dict[str, int] = {}
        for epoch in self.soaks:
            for name, count in (epoch.get("span_counts") or {}).items():
                span_counts[name] = span_counts.get(name, 0) + int(count)
        return {
            "epochs": len(self.soaks),
            "attack_epochs": len(attacks),
            "fault_epochs": sum(
                1 for epoch in self.soaks if epoch.get("fault")
            ),
            "detected": detected,
            "missed": len(attacks) - detected,
            "mean_latency_periods": (
                round(sum(latencies) / len(latencies), 3)
                if latencies else None
            ),
            "restores": sum(
                int(epoch.get("restores", 0)) for epoch in self.soaks
            ),
            "continuity_failures": sum(
                1 for epoch in self.soaks
                if not epoch.get("continuity_ok", True)
            ),
            "false_alarms": sum(
                int(epoch.get("false_alarms", 0)) for epoch in self.soaks
            ),
            "degraded_periods": sum(
                int(epoch.get("degraded_periods", 0))
                for epoch in self.soaks
            ),
            "span_counts": dict(sorted(span_counts.items())),
        }

    def merged_profile(self) -> Optional[Dict[str, Any]]:
        """Fold every profile event into one per-stage cost document
        (None when the log carries no profile events)."""
        if not self.profiles:
            return None
        from .profiler import merge_stage_rows

        modes = sorted({
            str(doc.get("mode")) for doc in self.profiles if doc.get("mode")
        })
        return {
            "runs": len(self.profiles),
            "modes": modes,
            "stages": merge_stage_rows(self.profiles),
        }

    @property
    def spans(self) -> List[AlarmSpan]:
        return [span for agent in self.agents.values() for span in agent.spans]

    @property
    def alarm_count(self) -> int:
        return len(self.spans)

    @property
    def false_alarm_count(self) -> int:
        return sum(1 for span in self.spans if span.false_alarm)

    @property
    def detection_count(self) -> int:
        return self.alarm_count - self.false_alarm_count

    @property
    def first_detection_latency(self) -> Optional[int]:
        latencies = [
            agent.first_detection_latency
            for agent in self.agents.values()
            if agent.first_detection_latency is not None
        ]
        return min(latencies) if latencies else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sources": list(self.sources),
            "events_total": self.events_total,
            "by_kind": dict(sorted(self.by_kind.items())),
            "min_alarm_periods": self.min_alarm_periods,
            "alarms": self.alarm_count,
            "detections": self.detection_count,
            "false_alarms": self.false_alarm_count,
            "first_detection_latency_periods": self.first_detection_latency,
            "agents": {
                name: timeline.to_dict()
                for name, timeline in sorted(self.agents.items())
            },
            "profile": self.merged_profile(),
            "fleet": self.fleet,
            "soak": self.soak_summary(),
        }


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------
def analyze_events(
    events: Sequence[Event],
    min_alarm_periods: int = 2,
    source: str = "<memory>",
) -> EventsReport:
    """Reconstruct timelines, latencies and false alarms from events.

    Period events are the source of truth (they carry the complete
    trajectory); explicit ``alarm_raised``/``alarm_cleared`` events are
    only counted in ``by_kind``.  An alarm span that clears after fewer
    than *min_alarm_periods* periods is classified a false alarm.
    """
    by_kind: Dict[str, int] = {}
    agents: Dict[str, AgentTimeline] = {}
    open_spans: Dict[str, Dict[str, Any]] = {}
    profiles: List[Dict[str, Any]] = []
    soaks: List[Dict[str, Any]] = []

    ordered = sorted(events, key=lambda event: event.get("seq", 0))
    for event in ordered:
        kind = event.get("event", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "profile":
            profiles.append({
                key: value for key, value in event.items()
                if key not in ("event", "seq", "t")
            })
            continue
        if kind == "soak_epoch":
            soaks.append({
                key: value for key, value in event.items()
                if key not in ("event", "seq", "t")
            })
            continue
        if kind == "alarm_context":
            name = event.get("agent", DEFAULT_AGENT)
            timeline = agents.setdefault(name, AgentTimeline(agent=name))
            timeline.alarm_contexts += 1
            continue
        if kind != "period":
            continue
        name = event.get("agent", DEFAULT_AGENT)
        timeline = agents.setdefault(name, AgentTimeline(agent=name))
        statistic = float(event.get("statistic", 0.0))
        end_time = float(event.get("end_time", 0.0))
        period_index = int(event.get("period_index", timeline.periods))
        alarm = bool(event.get("alarm", False))
        if "threshold" in event:
            timeline.threshold = float(event["threshold"])

        timeline.periods += 1
        if timeline.first_time is None:
            timeline.first_time = float(event.get("start_time", end_time))
        timeline.last_time = end_time
        timeline.times.append(end_time)
        timeline.statistics.append(statistic)

        state = open_spans.get(name)
        if alarm and state is None:
            # Onset: the last period the CUSUM statistic sat at rest
            # before this crossing (the series includes this period at
            # the end, so scan everything before it); with no at-rest
            # period on record, fall back to the earliest one.
            before = timeline.statistics[:-1]
            onset_offset = 0
            for j in range(len(before) - 1, -1, -1):
                if before[j] == 0.0:
                    onset_offset = j
                    break
            onset_period = period_index - (
                len(timeline.statistics) - 1 - onset_offset
            )
            open_spans[name] = {
                "raised_period": period_index,
                "raised_time": end_time,
                "onset_period": onset_period,
                "peak": statistic,
            }
        elif alarm and state is not None:
            state["peak"] = max(state["peak"], statistic)
        elif not alarm and state is not None:
            open_spans.pop(name)
            timeline.spans.append(
                _close_span(
                    name, state, min_alarm_periods,
                    cleared_period=period_index, cleared_time=end_time,
                )
            )

    # Alarms still up when the log ends are sustained detections.
    for name, state in open_spans.items():
        agents[name].spans.append(_close_span(name, state, min_alarm_periods))

    fleet: Optional[Dict[str, Any]] = None
    if by_kind.get("period"):
        from .rollup import rollup_from_events

        fleet = rollup_from_events(ordered).to_dict()

    return EventsReport(
        agents=agents,
        events_total=len(ordered),
        by_kind=by_kind,
        sources=(source,),
        min_alarm_periods=min_alarm_periods,
        profiles=tuple(profiles),
        fleet=fleet,
        soaks=tuple(soaks),
    )


def _close_span(
    agent: str,
    state: Dict[str, Any],
    min_alarm_periods: int,
    cleared_period: Optional[int] = None,
    cleared_time: Optional[float] = None,
) -> AlarmSpan:
    false_alarm = (
        cleared_period is not None
        and cleared_period - state["raised_period"] < min_alarm_periods
    )
    return AlarmSpan(
        agent=agent,
        raised_period=state["raised_period"],
        raised_time=state["raised_time"],
        onset_period=state["onset_period"],
        latency_periods=state["raised_period"] - state["onset_period"],
        peak_statistic=state["peak"],
        cleared_period=cleared_period,
        cleared_time=cleared_time,
        false_alarm=false_alarm,
    )


def analyze_files(
    paths: Sequence[PathLike], min_alarm_periods: int = 2
) -> EventsReport:
    """Analyze one or more JSONL files into a single report.  With
    several files, agent keys are prefixed by the file stem so two runs'
    identically named agents stay distinguishable."""
    if not paths:
        raise ValueError("no events files given")
    reports = [
        analyze_events(
            read_jsonl(path),
            min_alarm_periods=min_alarm_periods,
            source=str(path),
        )
        for path in paths
    ]
    if len(reports) == 1:
        return reports[0]
    merged_agents: Dict[str, AgentTimeline] = {}
    by_kind: Dict[str, int] = {}
    profiles: List[Dict[str, Any]] = []
    soaks: List[Dict[str, Any]] = []
    total = 0
    for path, report in zip(paths, reports):
        stem = Path(path).stem
        for name, timeline in report.agents.items():
            merged_agents[f"{stem}:{name}"] = timeline
        for kind, count in report.by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        profiles.extend(report.profiles)
        soaks.extend(report.soaks)
        total += report.events_total
    fleets = [report.fleet for report in reports if report.fleet is not None]
    fleet: Optional[Dict[str, Any]] = None
    if fleets:
        from .merge import merge_rollup_snapshots

        fleet = merge_rollup_snapshots(fleets).to_dict()
    return EventsReport(
        agents=merged_agents,
        events_total=total,
        by_kind=by_kind,
        sources=tuple(str(path) for path in paths),
        min_alarm_periods=min_alarm_periods,
        profiles=tuple(profiles),
        fleet=fleet,
        soaks=tuple(soaks),
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(
    report: EventsReport, fmt: str = "text", profile: bool = False
) -> str:
    """Render as ``text`` (terminal), ``markdown`` or ``json``.

    ``profile=True`` appends a per-stage cost section folded from the
    log's ``profile`` events (JSON always carries it under the
    ``profile`` key; text/markdown add it only on request).
    """
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2)
    if fmt == "markdown":
        return _render_markdown(report, profile=profile)
    if fmt == "text":
        return _render_text(report, profile=profile)
    raise ValueError(
        f"unknown report format {fmt!r}; pick one of {REPORT_FORMATS}"
    )


def _profile_text_lines(report: EventsReport) -> List[str]:
    merged = report.merged_profile()
    lines = ["", "per-stage cost attribution"]
    if merged is None:
        lines.append("  no profile events in the log "
                     "(run with the profiler enabled)")
        return lines
    lines[-1] += (
        f" ({merged['runs']} profiled run(s), "
        f"mode {', '.join(merged['modes']) or '?'})"
    )
    header = (f"  {'stage':<16} {'calls':>9} {'packets':>9} "
              f"{'ns/call':>12} {'ns/packet':>12} {'total ms':>10}")
    lines.append(header)
    for row in merged["stages"]:
        lines.append(
            f"  {row['stage']:<16} {row['calls']:>9} {row['packets']:>9} "
            f"{row['ns_per_call']:>12.1f} {row['ns_per_packet']:>12.1f} "
            f"{row['ns_total'] / 1e6:>10.3f}"
        )
    return lines


def _profile_markdown_lines(report: EventsReport) -> List[str]:
    merged = report.merged_profile()
    lines = ["", "## Per-stage cost attribution", ""]
    if merged is None:
        lines.append("No profile events in the log.")
        return lines
    lines.append(f"- profiled runs: **{merged['runs']}** "
                 f"(mode: {', '.join(merged['modes']) or '?'})")
    lines.append("")
    lines.append("| stage | calls | packets | ns/call | ns/packet "
                 "| total ms |")
    lines.append("|---|---:|---:|---:|---:|---:|")
    for row in merged["stages"]:
        lines.append(
            f"| `{row['stage']}` | {row['calls']} | {row['packets']} "
            f"| {row['ns_per_call']:.1f} | {row['ns_per_packet']:.1f} "
            f"| {row['ns_total'] / 1e6:.3f} |"
        )
    return lines


def _fleet_text_lines(report: EventsReport) -> List[str]:
    doc = report.fleet
    if doc is None:
        return []
    counts = doc.get("agents", {})
    lines = ["", "fleet rollup"]
    lines.append(
        f"  agents {counts.get('total', 0)} "
        f"(ok={counts.get('ok', 0)} degraded={counts.get('degraded', 0)} "
        f"alarming={counts.get('alarming', 0)} down={counts.get('down', 0)})"
        f", quorum {counts.get('quorum', 1.0):.3f}"
        f", alarm fraction {counts.get('alarm_fraction', 0.0):.4f}"
    )
    cusum = doc.get("digests", {}).get("cusum", {}).get("quantiles", {})
    p99 = cusum.get("p99")
    if p99 is not None:
        lines.append(f"  cusum p50/p99: {cusum.get('p50', 0.0):.3f} / "
                     f"{p99:.3f}")
    for ranking, summary in sorted(doc.get("top", {}).items()):
        entries = summary.get("entries", [])
        if not entries:
            continue
        shown = ", ".join(
            f"{entry['agent']}={entry['weight']:g}" for entry in entries[:5]
        )
        lines.append(f"  top {ranking}: {shown}")
    return lines


def _fleet_markdown_lines(report: EventsReport) -> List[str]:
    doc = report.fleet
    if doc is None:
        return []
    counts = doc.get("agents", {})
    lines = ["", "## Fleet rollup", ""]
    lines.append(
        f"- agents: **{counts.get('total', 0)}** "
        f"(ok={counts.get('ok', 0)}, degraded={counts.get('degraded', 0)}, "
        f"alarming={counts.get('alarming', 0)}, down={counts.get('down', 0)})"
    )
    lines.append(f"- quorum: **{counts.get('quorum', 1.0):.3f}**, "
                 f"alarm fraction: {counts.get('alarm_fraction', 0.0):.4f}")
    cusum = doc.get("digests", {}).get("cusum", {}).get("quantiles", {})
    if cusum.get("p99") is not None:
        lines.append(f"- cusum p50/p99: {cusum.get('p50', 0.0):.3f} / "
                     f"{cusum['p99']:.3f}")
    top = {
        name: summary.get("entries", [])
        for name, summary in sorted(doc.get("top", {}).items())
        if summary.get("entries")
    }
    if top:
        lines.append("")
        lines.append("| ranking | top agents (weight) |")
        lines.append("|---|---|")
        for ranking, entries in top.items():
            shown = ", ".join(
                f"`{entry['agent']}` ({entry['weight']:g})"
                for entry in entries[:5]
            )
            lines.append(f"| {ranking} | {shown} |")
    return lines


def _soak_text_lines(report: EventsReport) -> List[str]:
    summary = report.soak_summary()
    if summary is None:
        return []
    lines = ["", "soak (continuous operation)"]
    lines.append(
        f"  epochs {summary['epochs']} "
        f"(attack={summary['attack_epochs']} "
        f"fault={summary['fault_epochs']}), "
        f"restores {summary['restores']}, "
        f"continuity failures {summary['continuity_failures']}"
    )
    mean_latency = summary["mean_latency_periods"]
    lines.append(
        f"  detection {summary['detected']}/{summary['attack_epochs']} "
        f"attack windows"
        + (f", mean delay {mean_latency:g} periods"
           if mean_latency is not None else "")
        + f", false alarms {summary['false_alarms']}"
        + f", degraded periods {summary['degraded_periods']}"
    )
    for name, count in summary["span_counts"].items():
        lines.append(f"  span {name:<18} x{count}")
    return lines


def _soak_markdown_lines(report: EventsReport) -> List[str]:
    summary = report.soak_summary()
    if summary is None:
        return []
    lines = ["", "## Soak (continuous operation)", ""]
    lines.append(
        f"- epochs: **{summary['epochs']}** "
        f"(attack={summary['attack_epochs']}, "
        f"fault={summary['fault_epochs']})"
    )
    lines.append(
        f"- restores: **{summary['restores']}**, continuity failures: "
        f"**{summary['continuity_failures']}**"
    )
    mean_latency = summary["mean_latency_periods"]
    lines.append(
        f"- detection: **{summary['detected']}/"
        f"{summary['attack_epochs']}** attack windows"
        + (f", mean delay {mean_latency:g} periods"
           if mean_latency is not None else "")
    )
    lines.append(
        f"- false alarms: {summary['false_alarms']}, degraded periods: "
        f"{summary['degraded_periods']}"
    )
    if summary["span_counts"]:
        lines.append("")
        lines.append("| span | count |")
        lines.append("|---|---:|")
        for name, count in summary["span_counts"].items():
            lines.append(f"| `{name}` | {count} |")
    return lines


def _span_line(span: AlarmSpan) -> str:
    clear = (
        f"cleared t={span.cleared_time:.0f}s (held "
        f"{span.duration_periods} periods)"
        if span.cleared_time is not None
        else "still active at end of log"
    )
    verdict = "FALSE ALARM" if span.false_alarm else "detection"
    return (
        f"raised t={span.raised_time:.0f}s (period {span.raised_period}), "
        f"latency {span.latency_periods} periods from onset, "
        f"peak y={span.peak_statistic:.3f}, {clear} -> {verdict}"
    )


def _render_text(report: EventsReport, profile: bool = False) -> str:
    # Local import: repro.experiments pulls in the whole experiment
    # harness, which obs must not require at import time.
    from ..experiments.report import sparkline

    lines: List[str] = []
    lines.append(
        f"events analyzed  : {report.events_total} "
        f"from {len(report.sources)} file(s)"
    )
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.by_kind.items())
    )
    lines.append(f"event kinds      : {kinds or '-'}")
    lines.append(
        f"alarms           : {report.alarm_count} "
        f"({report.detection_count} detections, "
        f"{report.false_alarm_count} false alarms at "
        f"min {report.min_alarm_periods} periods)"
    )
    latency = report.first_detection_latency
    lines.append(
        "detection latency: "
        + (f"{latency} periods (first detection, from CUSUM onset)"
           if latency is not None else "n/a (no detection)")
    )
    for name, timeline in sorted(report.agents.items()):
        lines.append("")
        span_of_time = (
            f"t={timeline.first_time:.0f}..{timeline.last_time:.0f}s"
            if timeline.first_time is not None
            else "no periods"
        )
        lines.append(
            f"agent {name}: {timeline.periods} periods ({span_of_time}), "
            f"max y={max(timeline.statistics, default=0.0):.3f}"
            + (f", threshold N={timeline.threshold}"
               if timeline.threshold is not None else "")
        )
        if timeline.statistics:
            lines.append("  y_n " + sparkline(timeline.statistics))
        for span in timeline.spans:
            lines.append("  " + _span_line(span))
        if timeline.alarm_contexts:
            lines.append(
                f"  flight recorder: {timeline.alarm_contexts} "
                f"alarm_context event(s)"
            )
    lines.extend(_fleet_text_lines(report))
    lines.extend(_soak_text_lines(report))
    if profile:
        lines.extend(_profile_text_lines(report))
    return "\n".join(lines)


def _render_markdown(report: EventsReport, profile: bool = False) -> str:
    from ..experiments.report import sparkline

    lines: List[str] = ["# Detection report", ""]
    lines.append(f"- events analyzed: **{report.events_total}** "
                 f"from {len(report.sources)} file(s)")
    lines.append(
        f"- alarms: **{report.alarm_count}** "
        f"({report.detection_count} detections, "
        f"{report.false_alarm_count} false alarms)"
    )
    latency = report.first_detection_latency
    lines.append(
        "- first detection latency: "
        + (f"**{latency} periods**" if latency is not None else "n/a")
    )
    lines.append("")
    lines.append("| agent | periods | max y_n | alarms | false | "
                 "latency (periods) | trace |")
    lines.append("|---|---:|---:|---:|---:|---:|---|")
    for name, timeline in sorted(report.agents.items()):
        first = timeline.first_detection_latency
        lines.append(
            f"| {name} | {timeline.periods} "
            f"| {max(timeline.statistics, default=0.0):.3f} "
            f"| {len(timeline.spans)} | {len(timeline.false_alarms)} "
            f"| {first if first is not None else '-'} "
            f"| `{sparkline(timeline.statistics, width=32)}` |"
        )
    spans = report.spans
    if spans:
        lines.append("")
        lines.append("## Alarm timeline")
        lines.append("")
        for span in sorted(spans, key=lambda s: s.raised_time):
            lines.append(f"- `{span.agent}` {_span_line(span)}")
    lines.extend(_fleet_markdown_lines(report))
    lines.extend(_soak_markdown_lines(report))
    if profile:
        lines.extend(_profile_markdown_lines(report))
    return "\n".join(lines)
