"""Telemetry history: a bounded in-memory time-series store + queries.

SYN-dog's entire output *is* a time series — per-period ΔSYN, the
normalized X_n, the CUSUM statistic y_n, the alarm decision — yet the
rest of the obs stack only ever exposes the instantaneous state (the
live ``/metrics`` scrape) or the raw firehose (events JSONL).  An
operator asking "how close did y_n get to the threshold over the last
hour?" needs *retained* samples and a way to query them.  This module
is both halves:

:class:`TimeSeriesDB`
    A dependency-free in-memory TSDB.  Series are identified by
    ``(name, labels)``; every series is a bounded ring with
    deterministic stride-2 downsampling of its oldest half when the
    retention cap is hit, so a long-running agent holds history at
    O(retention) memory per series, forever.  Two sample sources:

    * **feed samples** — appended explicitly by instrumented
      components (the detector's per-period trajectory, the event-loss
      watermarks).  These carry only logical period time, so they are
      bit-reproducible run over run and shard over shard.
    * **registry snapshots** — per-period copies of every
      counter/gauge child in the bound registry, taken by
      :meth:`tick`.  These describe *the bundle that recorded them*;
      in sharded runs (:mod:`repro.parallel`) each worker sees only
      its shard's partial counters, so snapshot series are recorded by
      the live (parent-driven) path only and are excluded from
      deterministic comparisons (``source == "registry"``).

PromQL-lite (:func:`parse_query` / :meth:`TimeSeriesDB.query`)
    A small expression language over the store::

        syndog_cusum{agent="router-a"}
        max_over_time(syndog_cusum[5m]) > 0.8 * 1.05
        rate(obs_events_dropped_total[2m]) > 0

    Supported: instant selectors with ``=`` / ``!=`` label matchers,
    the range functions ``rate`` / ``increase`` / ``avg_over_time`` /
    ``max_over_time`` / ``min_over_time`` / ``sum_over_time`` /
    ``count_over_time`` / ``last_over_time`` over ``[30s|5m|1h]``
    windows, and a trailing comparison (``> >= < <= == !=``) against a
    constant arithmetic expression, which — as in PromQL — *filters*
    the result vector.  An alert rule "fires" when its filtered vector
    is non-empty (:mod:`repro.obs.alerts`).

The deterministic-merge contract mirrors :mod:`repro.obs.merge`: feed
samples carry logical time, shards ship :meth:`to_dict` snapshots, and
:func:`merge_tsdb` folds them in shard merge-order with a stable
per-series sort, so a ``--workers N`` run reconstructs byte-identical
history for every N.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Sample",
    "Series",
    "TimeSeriesDB",
    "NullTSDB",
    "QueryError",
    "parse_duration",
    "parse_query",
    "tsdb_from_events",
    "merge_tsdb",
    "canonical_tsdb",
]

LabelsKey = Tuple[Tuple[str, str], ...]
Sample = Tuple[float, float]  #: (logical time, value)

#: Series names the registry snapshot must never shadow: these are fed
#: as first-class samples (with deterministic merge semantics) and the
#: registry copies would collide at the same (name, labels) key.
_EVENT_STAT_SERIES = ("obs_events_emitted_total", "obs_events_dropped_total")

#: Instant selectors only look back this far for their latest sample —
#: a series that stopped reporting goes stale instead of answering
#: forever (Prometheus's lookback delta, scaled to 20 s periods).
DEFAULT_STALENESS_SECONDS = 600.0


def _labels_key(labels: Optional[Dict[str, Any]]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One named, labeled sample ring with deterministic downsampling."""

    __slots__ = (
        "name", "labels", "source", "samples", "compactions",
        "points_dropped",
    )

    def __init__(self, name: str, labels: LabelsKey, source: str = "feed") -> None:
        self.name = name
        self.labels = labels
        self.source = source
        self.samples: List[Sample] = []
        self.compactions = 0
        self.points_dropped = 0

    def append(self, t: float, value: float, retention: int) -> int:
        """Append one sample; returns how many points this append's
        retention compaction dropped (0 when no compaction ran)."""
        self.samples.append((float(t), float(value)))
        if len(self.samples) > retention:
            return self._compact()
        return 0

    def _compact(self) -> int:
        """Halve the resolution of the oldest half of the ring.

        Deterministic stride-2 decimation: given the same append
        sequence, every run compacts identically — the property the
        worker-merge byte-identity tests rely on.  Returns the number
        of samples the decimation discarded.
        """
        half = len(self.samples) // 2
        before = len(self.samples)
        self.samples = self.samples[0:half:2] + self.samples[half:]
        dropped = before - len(self.samples)
        self.compactions += 1
        self.points_dropped += dropped
        return dropped

    # ------------------------------------------------------------------
    def latest(self, at: float, staleness: float) -> Optional[Sample]:
        """The newest sample with ``t <= at`` and ``t > at - staleness``."""
        for t, value in reversed(self.samples):
            if t <= at:
                if t > at - staleness:
                    return (t, value)
                return None
        return None

    def window(self, at: float, duration: float) -> List[Sample]:
        """Samples with ``at - duration < t <= at``, oldest first."""
        return [
            (t, value)
            for t, value in self.samples
            if at - duration < t <= at
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": [list(pair) for pair in self.labels],
            "source": self.source,
            "compactions": self.compactions,
            "samples": [[t, value] for t, value in self.samples],
        }

    def __repr__(self) -> str:
        return (
            f"Series({self.name!r}, labels={dict(self.labels)!r}, "
            f"n={len(self.samples)})"
        )


class TimeSeriesDB:
    """The bounded telemetry-history store.

    Parameters
    ----------
    retention:
        Maximum samples per series; exceeding it triggers one
        deterministic stride-2 compaction of the oldest half.
    staleness:
        Instant-selector lookback window in seconds.
    record_snapshots:
        When False the per-period :meth:`tick` becomes a no-op — shard
        bundles in :mod:`repro.parallel` disable it because a shard's
        registry holds partial counters and the parent reconstructs
        the event-loss series at merge time instead.
    """

    enabled = True

    def __init__(
        self,
        retention: int = 4096,
        staleness: float = DEFAULT_STALENESS_SECONDS,
        record_snapshots: bool = True,
    ) -> None:
        if retention < 8:
            raise ValueError(f"retention must be >= 8 samples: {retention}")
        self.retention = int(retention)
        self.staleness = float(staleness)
        self.record_snapshots = record_snapshots
        self._series: Dict[Tuple[str, LabelsKey], Series] = {}
        self._registry: Optional[Any] = None
        self._events: Optional[Any] = None
        self._profiler: Optional[Any] = None
        self._last_tick = float("-inf")
        self.samples_appended = 0
        #: Store-wide retention accounting (the ``tsdb_compactions_total``
        #: / ``tsdb_points_dropped_total`` counters the resource ledger
        #: samples): how many stride-2 compactions have run across every
        #: series, and how many samples those compactions discarded.
        self.compactions_total = 0
        self.points_dropped_total = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def bind(
        self,
        registry: Optional[Any] = None,
        events: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        """Attach the registry/event log/profiler :meth:`tick` snapshots
        read (done once by :class:`~repro.obs.runtime.Instrumentation`)."""
        if registry is not None:
            self._registry = registry
        if events is not None:
            self._events = events
        if profiler is not None:
            self._profiler = profiler

    def append(
        self,
        name: str,
        labels: Optional[Dict[str, Any]],
        t: float,
        value: float,
        source: str = "feed",
    ) -> None:
        """Record one sample for ``name{labels}`` at logical time *t*."""
        key = (name, _labels_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Series(name, key[1], source=source)
        dropped = series.append(t, value, self.retention)
        self.samples_appended += 1
        if dropped:
            self.compactions_total += 1
            self.points_dropped_total += dropped

    def tick(self, t: float) -> None:
        """Per-period snapshot hook (live path): advance the watermark
        and record the event-loss counters plus every counter/gauge
        child of the bound registry at time *t*.

        Called by the detector at the *start* of each observation
        period's bookkeeping, so the sampled values describe the
        pipeline state **before** that period's own emissions — the
        exact semantics the parallel merge reconstructs by ticking
        before re-emitting each period event.
        """
        if not self.record_snapshots or t <= self._last_tick:
            return
        self._last_tick = t
        self._tick_events(t)
        self._tick_registry(t)
        self._tick_profiler(t)

    def tick_events(self, t: float) -> None:
        """Event-stats-only tick — what
        :func:`repro.obs.merge.merge_event_groups` drives while
        re-emitting shard events in grid order.  Registry snapshots are
        deliberately *not* taken here: at merge time the parent
        registry already holds end-of-run totals, and sampling those at
        historical timestamps would fabricate history."""
        if not self.record_snapshots or t <= self._last_tick:
            return
        self._last_tick = t
        self._tick_events(t)

    def _tick_events(self, t: float) -> None:
        events = self._events
        if events is None or not getattr(events, "enabled", False):
            return
        self.append(
            "obs_events_emitted_total", None, t, float(events.events_emitted)
        )
        self.append(
            "obs_events_dropped_total", None, t,
            float(getattr(events, "dropped", 0)),
        )

    def _tick_registry(self, t: float) -> None:
        registry = self._registry
        if registry is None or not getattr(registry, "enabled", False):
            return
        for family in registry.collect():
            if family.kind not in ("counter", "gauge"):
                continue
            name = family.name
            if name.startswith("trace_span_") or name in _EVENT_STAT_SERIES:
                continue
            for sample in family.samples():
                self.append(
                    name, sample.labels, t, sample.value, source="registry"
                )

    def _tick_profiler(self, t: float) -> None:
        """Per-period snapshot of the bound profiler's per-stage cost:
        ``stage_ns_total`` / ``stage_calls_total`` / ``stage_ns_per_packet``
        labeled by stage — the series the per-stage regression alert
        rules (:func:`repro.obs.alerts.profiler_rules`) evaluate.
        ``source="profile"`` series are, like registry snapshots,
        excluded from the deterministic shard-shipping projection."""
        profiler = self._profiler
        if profiler is None or not getattr(profiler, "enabled", False):
            return
        for row in profiler.stage_documents():
            labels = {"stage": row["stage"]}
            self.append(
                "stage_ns_total", labels, t,
                float(row["ns_total"]), source="profile",
            )
            self.append(
                "stage_calls_total", labels, t,
                float(row["calls"]), source="profile",
            )
            self.append(
                "stage_ns_per_packet", labels, t,
                float(row["ns_per_packet"]), source="profile",
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def series(
        self, name: Optional[str] = None, source: Optional[str] = None
    ) -> List[Series]:
        """Stored series in canonical (name, labels) order."""
        selected = [
            series
            for series in self._series.values()
            if (name is None or series.name == name)
            and (source is None or series.source == source)
        ]
        selected.sort(key=lambda series: (series.name, series.labels))
        return selected

    def names(self) -> List[str]:
        return sorted({series.name for series in self._series.values()})

    def points_retained(self) -> int:
        """Samples currently held across every series — the live
        occupancy number the resource ledger tracks against retention
        (``samples_appended`` only ever grows; this is the bounded
        figure that must flatten out)."""
        return sum(len(series.samples) for series in self._series.values())

    def watermarks(self) -> List[float]:
        """Every distinct sample time, ascending — the replay grid
        :func:`repro.obs.alerts.replay_rules` evaluates over."""
        times = {
            t
            for series in self._series.values()
            for t, _value in series.samples
        }
        return sorted(times)

    def last_time(self) -> Optional[float]:
        newest = None
        for series in self._series.values():
            if series.samples:
                t = series.samples[-1][0]
                if newest is None or t > newest:
                    newest = t
        return newest

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return (
            f"TimeSeriesDB(series={len(self._series)}, "
            f"samples={self.samples_appended}, retention={self.retention})"
        )

    # ------------------------------------------------------------------
    # Serialization / merge
    # ------------------------------------------------------------------
    def to_dict(self, include_registry: bool = True) -> Dict[str, Any]:
        """The store as plain JSON-able dicts, series in canonical
        order (the shard-shipping and test-comparison format).

        ``include_registry=False`` also excludes profiler snapshot
        series (``source == "profile"``): both describe the recording
        bundle rather than the detection run, and timers-mode stage
        nanoseconds are wall clock."""
        return {
            "retention": self.retention,
            "series": [
                series.to_dict()
                for series in self.series()
                if include_registry
                or series.source not in ("registry", "profile")
            ],
        }

    def merge_from(self, snapshot: Dict[str, Any]) -> None:
        """Fold one :meth:`to_dict` snapshot in (see :func:`merge_tsdb`)."""
        for entry in snapshot.get("series", ()):
            key_labels: LabelsKey = tuple(
                (str(k), str(v)) for k, v in entry.get("labels", ())
            )
            key = (entry["name"], key_labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = Series(
                    entry["name"], key_labels, source=entry.get("source", "feed")
                )
            for t, value in entry.get("samples", ()):
                dropped = series.append(float(t), float(value), self.retention)
                self.samples_appended += 1
                if dropped:
                    self.compactions_total += 1
                    self.points_dropped_total += dropped
            # Stable sort: new samples interleave by logical time, with
            # earlier-merged shards winning ties — deterministic for a
            # fixed merge order.
            series.samples.sort(key=lambda sample: sample[0])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, expr: str, at: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Evaluate a PromQL-lite expression as an instant vector.

        Returns ``[{"labels": {...}, "value": v}, ...]`` sorted by
        labels.  ``at`` defaults to the newest sample time in the
        store (an empty store evaluates to an empty vector).
        """
        parsed = parse_query(expr)
        if at is None:
            at = self.last_time()
            if at is None:
                return []
        return parsed.evaluate(self, float(at))


class NullTSDB:
    """The disabled default: absorbs samples, answers nothing."""

    enabled = False
    retention = 0
    record_snapshots = False
    samples_appended = 0
    compactions_total = 0
    points_dropped_total = 0

    def bind(
        self,
        registry: Optional[Any] = None,
        events: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        pass

    def append(self, name, labels, t, value, source="feed") -> None:
        pass

    def tick(self, t: float) -> None:
        pass

    def tick_events(self, t: float) -> None:
        pass

    def series(self, name=None, source=None) -> List[Series]:
        return []

    def names(self) -> List[str]:
        return []

    def points_retained(self) -> int:
        return 0

    def watermarks(self) -> List[float]:
        return []

    def last_time(self) -> None:
        return None

    def to_dict(self, include_registry: bool = True) -> Dict[str, Any]:
        return {"retention": 0, "series": []}

    def merge_from(self, snapshot: Dict[str, Any]) -> None:
        pass

    def query(self, expr: str, at: Optional[float] = None) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


# ----------------------------------------------------------------------
# PromQL-lite
# ----------------------------------------------------------------------
class QueryError(ValueError):
    """A malformed or unsupported query expression."""


_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)(s|m|h)?$")

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"|(?P<string>\"(?:[^\"\\]|\\.)*\")"
    r"|(?P<op>!=|>=|<=|==|[><*/+\-{}\[\](),=])"
    r")"
)


def parse_duration(text: str) -> float:
    """``"30"``/``"30s"``/``"5m"``/``"1h"`` → seconds."""
    match = _DURATION_RE.match(text.strip())
    if not match:
        raise QueryError(f"invalid duration: {text!r}")
    value = float(match.group(1))
    unit = match.group(2) or "s"
    return value * {"s": 1.0, "m": 60.0, "h": 3600.0}[unit]


def _tokenize(expr: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(expr):
        match = _TOKEN_RE.match(expr, position)
        if match is None or match.end() == position:
            remainder = expr[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot parse query near {remainder!r}")
        position = match.end()
        for kind in ("number", "name", "string", "op"):
            text = match.group(kind)
            if text is not None:
                tokens.append((kind, text))
                break
    return tokens


class _Matcher:
    __slots__ = ("label", "op", "value")

    def __init__(self, label: str, op: str, value: str) -> None:
        self.label = label
        self.op = op
        self.value = value

    def matches(self, labels: LabelsKey) -> bool:
        actual = dict(labels).get(self.label)
        if self.op == "=":
            return actual == self.value
        return actual != self.value


class _Selector:
    __slots__ = ("name", "matchers")

    def __init__(self, name: str, matchers: Sequence[_Matcher]) -> None:
        self.name = name
        self.matchers = tuple(matchers)

    def select(self, tsdb: TimeSeriesDB) -> List[Series]:
        return [
            series
            for series in tsdb.series(self.name)
            if all(matcher.matches(series.labels) for matcher in self.matchers)
        ]


_RANGE_FUNCS: Dict[str, Callable[[List[Sample], float], Optional[float]]] = {}


def _range_func(name: str):
    def register(fn):
        _RANGE_FUNCS[name] = fn
        return fn

    return register


@_range_func("rate")
def _rate(samples: List[Sample], duration: float) -> Optional[float]:
    if len(samples) < 2:
        return None
    (t0, v0), (t1, v1) = samples[0], samples[-1]
    if t1 <= t0:
        return None
    return (v1 - v0) / (t1 - t0)


@_range_func("increase")
def _increase(samples: List[Sample], duration: float) -> Optional[float]:
    if len(samples) < 2:
        return None
    return samples[-1][1] - samples[0][1]


@_range_func("avg_over_time")
def _avg(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return sum(value for _t, value in samples) / len(samples)


@_range_func("max_over_time")
def _max(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return max(value for _t, value in samples)


@_range_func("min_over_time")
def _min(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return min(value for _t, value in samples)


@_range_func("sum_over_time")
def _sum(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return sum(value for _t, value in samples)


@_range_func("count_over_time")
def _count(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return float(len(samples))


@_range_func("last_over_time")
def _last(samples: List[Sample], duration: float) -> Optional[float]:
    if not samples:
        return None
    return samples[-1][1]


_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Query:
    """A parsed PromQL-lite expression."""

    __slots__ = ("expr", "func", "selector", "duration", "cmp", "threshold")

    def __init__(
        self,
        expr: str,
        func: Optional[str],
        selector: _Selector,
        duration: Optional[float],
        cmp: Optional[str],
        threshold: Optional[float],
    ) -> None:
        self.expr = expr
        self.func = func
        self.selector = selector
        self.duration = duration
        self.cmp = cmp
        self.threshold = threshold

    def evaluate(self, tsdb: TimeSeriesDB, at: float) -> List[Dict[str, Any]]:
        results: List[Dict[str, Any]] = []
        for series in self.selector.select(tsdb):
            if self.func is not None:
                assert self.duration is not None
                value = _RANGE_FUNCS[self.func](
                    series.window(at, self.duration), self.duration
                )
            else:
                sample = series.latest(at, tsdb.staleness)
                value = None if sample is None else sample[1]
            if value is None:
                continue
            if self.cmp is not None and not _COMPARATORS[self.cmp](
                value, self.threshold
            ):
                continue
            results.append({"labels": dict(series.labels), "value": value})
        return results


class _Parser:
    def __init__(self, expr: str) -> None:
        self.expr = expr
        self.tokens = _tokenize(expr)
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, kind: Optional[str] = None, text: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self.expr!r}")
        if kind is not None and token[0] != kind:
            raise QueryError(
                f"expected {kind}, got {token[1]!r} in {self.expr!r}"
            )
        if text is not None and token[1] != text:
            raise QueryError(
                f"expected {text!r}, got {token[1]!r} in {self.expr!r}"
            )
        self.position += 1
        return token[1]

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == text:
            self.position += 1
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> Query:
        func: Optional[str] = None
        duration: Optional[float] = None
        name = self.take(kind="name")
        if name in _RANGE_FUNCS:
            func = name
            self.take(text="(")
            selector = self.parse_selector()
            self.take(text="[")
            duration = self.parse_range_duration()
            self.take(text="]")
            self.take(text=")")
        else:
            selector = self.parse_selector(name=name)
        cmp: Optional[str] = None
        threshold: Optional[float] = None
        token = self.peek()
        if token is not None and token[1] in _COMPARATORS:
            cmp = self.take()[:]
            threshold = self.parse_arithmetic()
        if self.peek() is not None:
            raise QueryError(
                f"trailing tokens after expression: {self.expr!r}"
            )
        return Query(self.expr, func, selector, duration, cmp, threshold)

    def parse_selector(self, name: Optional[str] = None) -> _Selector:
        if name is None:
            name = self.take(kind="name")
        matchers: List[_Matcher] = []
        if self.accept("{"):
            while not self.accept("}"):
                label = self.take(kind="name")
                op = self.take(kind="op")
                if op not in ("=", "!="):
                    raise QueryError(
                        f"unsupported label matcher {op!r} in {self.expr!r}"
                    )
                raw = self.take(kind="string")
                value = raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")
                matchers.append(_Matcher(label, op, value))
                self.accept(",")
        return _Selector(name, matchers)

    def parse_range_duration(self) -> float:
        number = self.take(kind="number")
        token = self.peek()
        unit = ""
        if token is not None and token[0] == "name" and token[1] in ("s", "m", "h"):
            unit = self.take()
        return parse_duration(number + unit)

    def parse_arithmetic(self) -> float:
        """A constant left-associative product/sum — enough for rule
        thresholds like ``0.8 * 1.05``."""
        value = float(self.take(kind="number"))
        while True:
            token = self.peek()
            if token is None or token[1] not in ("*", "/", "+", "-"):
                return value
            op = self.take()
            rhs = float(self.take(kind="number"))
            if op == "*":
                value *= rhs
            elif op == "/":
                value /= rhs
            elif op == "+":
                value += rhs
            else:
                value -= rhs


def parse_query(expr: str) -> Query:
    """Parse one PromQL-lite expression (raises :class:`QueryError`)."""
    if not expr or not expr.strip():
        raise QueryError("empty query expression")
    return _Parser(expr).parse()


# ----------------------------------------------------------------------
# Offline reconstruction and merge helpers
# ----------------------------------------------------------------------
def tsdb_from_events(
    events: Iterable[Dict[str, Any]],
    retention: int = 4096,
) -> TimeSeriesDB:
    """Rebuild a detector TSDB from an events JSONL stream.

    Every ``period`` event becomes one sample per detector series
    (ΔSYN, X_n, y_n, alarm, degraded), stamped with the period's end
    time; the event's own ``seq`` reconstructs the
    ``obs_events_emitted_total`` watermark exactly as the live tick
    recorded it (drop counts are not recoverable from a JSONL file —
    whatever was dropped is precisely what is not in it).  A
    ``fleet_rollup`` event (:meth:`repro.router.fleet.Federation`)
    re-appends its ``fleet_*`` samples verbatim, so the fleet alert
    rules replay offline exactly as they evaluated live."""
    tsdb = TimeSeriesDB(retention=retention)
    last_tick = float("-inf")
    for event in events:
        if event.get("event") == "fleet_rollup":
            t = float(event.get("time", 0.0))
            series = event.get("series") or {}
            for name in series:
                if str(name).startswith("fleet_"):
                    tsdb.append(str(name), None, t, float(series[name]))
            continue
        if event.get("event") != "period":
            continue
        agent = str(event.get("agent", "unknown"))
        t = float(event.get("end_time", 0.0))
        if "seq" in event and t > last_tick:
            last_tick = t
            tsdb.append(
                "obs_events_emitted_total", None, t, float(event["seq"])
            )
        labels = {"agent": agent}
        syn = float(event.get("syn", 0))
        synack = float(event.get("synack", 0))
        tsdb.append("syndog_delta", labels, t, syn - synack)
        tsdb.append("syndog_x_n", labels, t, float(event.get("x", 0.0)))
        tsdb.append(
            "syndog_cusum", labels, t, float(event.get("statistic", 0.0))
        )
        tsdb.append(
            "syndog_alarm_active", labels, t,
            1.0 if event.get("alarm") else 0.0,
        )
        tsdb.append(
            "syndog_degraded", labels, t,
            1.0 if event.get("degraded") else 0.0,
        )
    return tsdb


def merge_tsdb(
    target: TimeSeriesDB, snapshots: Iterable[Dict[str, Any]]
) -> TimeSeriesDB:
    """Fold shard TSDB snapshots into *target*, **in the given order**
    (the engine passes shard merge-order, making float-for-float output
    deterministic for every worker count)."""
    for snapshot in snapshots:
        target.merge_from(snapshot)
    return target


def canonical_tsdb(tsdb: Any) -> Dict[str, Any]:
    """The byte-comparable projection of a TSDB: feed samples only.

    Registry-snapshot series (``source == "registry"``) describe the
    recording bundle — a sharded run records them per worker or not at
    all — so equivalence tests compare everything else.
    """
    return tsdb.to_dict(include_registry=False)
