"""The instrumentation bundle and its process-wide default.

Every instrumented component in the pipeline takes an optional
``obs: Instrumentation`` argument.  Passing one wires that component to
an explicit registry/tracer/event-log trio; passing ``None`` (the
universal default) resolves the *current* process-wide instrumentation,
which is :data:`NULL_INSTRUMENTATION` unless the operator installed a
live one.  Components check ``obs.enabled`` **once, at construction**,
and bind their instruments to ``None`` when disabled — the hot-path
contract that keeps the default pipeline indistinguishable from an
uninstrumented build (``benchmarks/test_obs_overhead.py`` holds the
line at ≤10%).

Typical operator setup::

    from repro.obs import enabled_instrumentation, instrumented

    obs = enabled_instrumentation(events_path="events.jsonl")
    with instrumented(obs):
        dog = SynDog()            # picks up obs automatically
        ...
    obs.finalize("metrics.prom")  # folds tracer stats in and writes
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from .alerts import AlertManager, NullAlertManager
from .events import EventLog, JsonlSink, MemorySink, NullEventLog
from .exporters import (
    export_event_stats,
    export_profiler,
    export_tracer,
    write_prometheus,
)
from .metrics import MetricsRegistry, NullRegistry
from .profiler import NullProfiler, Profiler
from .recorder import FlightRecorder, NullFlightRecorder
from .tracing import NullTracer, Tracer
from .tsdb import NullTSDB, TimeSeriesDB

__all__ = [
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "enabled_instrumentation",
    "get_instrumentation",
    "set_instrumentation",
    "instrumented",
    "resolve_instrumentation",
]


class Instrumentation:
    """A registry + tracer + event log + flight recorder + telemetry
    history store + alert manager, handed around as one object."""

    def __init__(
        self,
        registry: Optional[Any] = None,
        tracer: Optional[Any] = None,
        events: Optional[Any] = None,
        recorder: Optional[Any] = None,
        tsdb: Optional[Any] = None,
        alerts: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.registry = registry if registry is not None else NullRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.events = events if events is not None else NullEventLog()
        self.recorder = (
            recorder if recorder is not None else NullFlightRecorder()
        )
        self.tsdb = tsdb if tsdb is not None else NullTSDB()
        self.alerts = alerts if alerts is not None else NullAlertManager()
        self.profiler = profiler if profiler is not None else NullProfiler()
        # A live recorder handed in without its own event log emits
        # alarm contexts into the bundle's (when that one is live).
        if (
            self.recorder.enabled
            and getattr(self.recorder, "_events", None) is None
            and self.events.enabled
        ):
            self.recorder.bind_events(self.events)
        # The history store snapshots whatever this bundle records; the
        # alert manager queries the store and annotates firings with
        # event-log / flight-recorder context.
        if self.tsdb.enabled:
            self.tsdb.bind(
                registry=self.registry,
                events=self.events,
                profiler=self.profiler if self.profiler.enabled else None,
            )
        if self.alerts.enabled:
            self.alerts.bind(
                tsdb=self.tsdb,
                events=self.events if self.events.enabled else None,
                recorder=self.recorder if self.recorder.enabled else None,
            )

    @property
    def enabled(self) -> bool:
        return (
            self.registry.enabled
            or self.tracer.enabled
            or self.events.enabled
            or self.recorder.enabled
            or self.tsdb.enabled
            or self.profiler.enabled
        )

    def finalize(self, metrics_path: Optional[Union[str, Any]] = None) -> int:
        """End-of-run bookkeeping: flush pending alarm contexts, fold
        tracer aggregates and event-loss counters into the registry,
        write the Prometheus file (when asked, atomically), close event
        sinks.  Returns the number of exported sample lines (0 when no
        metrics path was given)."""
        samples = 0
        self.recorder.flush()
        # Close live alerts before the event log: end-of-stream
        # resolutions must still reach the JSONL sinks.
        self.alerts.close()
        # The profile document rides the event stream so offline
        # forensics (``repro report --profile``) can attribute cost
        # without a live server.
        if self.profiler.enabled and self.events.enabled:
            self.events.emit("profile", **self.profiler.to_dict())
        if self.registry.enabled:
            if self.tracer.enabled:
                export_tracer(self.tracer, self.registry)
            if self.profiler.enabled:
                export_profiler(self.profiler, self.registry)
            export_event_stats(self.events, self.registry)
        if metrics_path is not None and self.registry.enabled:
            samples = write_prometheus(self.registry, metrics_path)
        self.events.close()
        return samples

    def summary(self) -> dict:
        """The run's observability bookkeeping in one dict — what a CLI
        prints after ``finalize``.  ``events_dropped`` is here on
        purpose: bounded sinks drop silently and an operator must see
        that loss."""
        return {
            "enabled": self.enabled,
            "metrics_families": len(self.registry),
            "events_emitted": self.events.events_emitted,
            "events_dropped": getattr(self.events, "dropped", 0),
            "alarm_contexts": self.recorder.contexts_emitted,
            "agents": self.recorder.status(),
            "tsdb_series": len(self.tsdb),
            "alerts_firing": self.alerts.firing(),
            "profile_stages": len(self.profiler),
        }

    def memory_events(self) -> Optional[MemorySink]:
        """The bundle's in-memory event sink, when one is attached."""
        for sink in getattr(self.events, "sinks", lambda: [])():
            if isinstance(sink, MemorySink):
                return sink
        return None

    def __repr__(self) -> str:
        return (
            f"Instrumentation(enabled={self.enabled}, "
            f"metrics={len(self.registry)}, "
            f"events={self.events.events_emitted})"
        )


#: The disabled default: all three components are no-ops.
NULL_INSTRUMENTATION = Instrumentation()

_current: Instrumentation = NULL_INSTRUMENTATION


def enabled_instrumentation(
    events_path: Optional[Any] = None,
    memory_events: bool = True,
    max_memory_events: Optional[int] = 100_000,
    flight_recorder: bool = True,
    recorder_capacity: int = 120,
    recorder_post_periods: int = 5,
    tsdb: bool = True,
    tsdb_retention: int = 4096,
    alert_rules: Optional[Any] = None,
    profiler: Optional[str] = None,
    profiler_sample_every: int = 64,
) -> Instrumentation:
    """A fully live bundle: real registry, real tracer, event log with
    a JSONL sink at *events_path* (when given) and/or an in-memory sink
    (bounded, for summaries), a flight recorder so every alarm carries
    its pre-alarm detector-state window, and a bounded telemetry
    history store (``tsdb=False`` opts out).  Passing *alert_rules* (a
    sequence of :class:`~repro.obs.alerts.AlertRule`) additionally arms
    live alert evaluation every observation period.  Passing *profiler*
    (``"timers"`` or ``"cost-model"``) arms per-stage cost attribution
    (see :mod:`repro.obs.profiler`); it is off by default because,
    unlike the rest of the bundle, its hot-path handles live inside the
    packet loop."""
    sinks = []
    if events_path is not None:
        sinks.append(JsonlSink(events_path))
    if memory_events:
        sinks.append(MemorySink(max_events=max_memory_events))
    events = EventLog(*sinks)
    recorder = (
        FlightRecorder(
            capacity=recorder_capacity,
            post_alarm_periods=recorder_post_periods,
            events=events,
        )
        if flight_recorder
        else None
    )
    return Instrumentation(
        registry=MetricsRegistry(),
        tracer=Tracer(),
        events=events,
        recorder=recorder,
        tsdb=TimeSeriesDB(retention=tsdb_retention) if tsdb else None,
        alerts=AlertManager(rules=alert_rules) if alert_rules else None,
        profiler=(
            Profiler(mode=profiler, sample_every=profiler_sample_every)
            if profiler
            else None
        ),
    )


def get_instrumentation() -> Instrumentation:
    """The current process-wide instrumentation."""
    return _current


def set_instrumentation(obs: Optional[Instrumentation]) -> Instrumentation:
    """Install *obs* (None restores the null default); returns the
    previous one so callers can restore it."""
    global _current
    previous = _current
    _current = obs if obs is not None else NULL_INSTRUMENTATION
    return previous


@contextmanager
def instrumented(obs: Instrumentation) -> Iterator[Instrumentation]:
    """Scope *obs* as the process default for the ``with`` block."""
    previous = set_instrumentation(obs)
    try:
        yield obs
    finally:
        set_instrumentation(previous)


def resolve_instrumentation(
    obs: Optional[Instrumentation],
) -> Instrumentation:
    """What instrumented components call on their ``obs=None`` default."""
    return obs if obs is not None else _current
