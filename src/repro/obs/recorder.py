"""The per-agent flight recorder: alarms that explain themselves.

An alarm from a leaf-router CUSUM detector is only as useful as the
context around it — what did ``X_n`` and ``y_n`` look like in the
periods *before* the statistic crossed the threshold?  In production
nobody is tailing every agent's period stream; the
:class:`FlightRecorder` keeps a small ring buffer of full detector
state per agent (one snapshot per observation period) and, on an alarm
**transition**, captures the pre-alarm window.  Once a handful of
post-alarm periods have accrued (or the run ends) it emits a single
structured ``alarm_context`` event: the window before the alarm, the
alarm period itself, and the periods after — everything forensics
needs, attached to the alarm instead of buried in a 100k-line JSONL.

Snapshots are plain dicts so they serialize straight into the event
log.  The recorder is also the live *who-is-alarming* source for the
``/healthz`` endpoint (:mod:`repro.obs.server`): :meth:`status` reports
every agent's period count, current alarm state and latest statistic.

Cost model: one ``dict`` copy per observation period (t0 = 20 s per
agent), nothing per packet — well inside the obs layer's overhead
budget (``benchmarks/test_obs_overhead.py`` measures the enabled
recorder alongside the null-instrumentation gate).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["FlightRecorder", "NullFlightRecorder"]

Snapshot = Dict[str, Any]

#: How many emitted contexts the recorder itself retains (for the
#: server and for runs without an event log).
_CONTEXT_RETENTION = 64


class _Tape:
    """One agent's ring buffer plus its pending alarm context."""

    __slots__ = (
        "ring", "prev_alarm", "pending", "periods", "alarms", "degraded",
        "last",
    )

    def __init__(self, capacity: int) -> None:
        self.ring: Deque[Snapshot] = deque(maxlen=capacity)
        self.prev_alarm = False
        self.pending: Optional[Dict[str, Any]] = None
        self.periods = 0
        self.alarms = 0
        self.degraded = 0
        self.last: Optional[Snapshot] = None


class FlightRecorder:
    """Ring-buffer detector-state recorder with alarm-context capture.

    Parameters
    ----------
    capacity:
        Snapshots retained per agent — the maximum pre-alarm window an
        ``alarm_context`` can carry.
    post_alarm_periods:
        Periods recorded *after* an alarm transition before its context
        event is emitted.  A context whose run ends early is emitted
        with whatever post-alarm periods exist by :meth:`flush`.
    events:
        Optional event log (:class:`~repro.obs.events.EventLog`) the
        ``alarm_context`` events are emitted to.  Without one the
        contexts are still retained on :attr:`contexts`.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 120,
        post_alarm_periods: int = 5,
        events: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if post_alarm_periods < 0:
            raise ValueError(
                f"post_alarm_periods must be >= 0: {post_alarm_periods}"
            )
        self.capacity = capacity
        self.post_alarm_periods = post_alarm_periods
        self._events = events
        self._tapes: Dict[str, _Tape] = {}
        self.contexts: Deque[Dict[str, Any]] = deque(maxlen=_CONTEXT_RETENTION)
        self.contexts_emitted = 0

    # ------------------------------------------------------------------
    def bind_events(self, events: Any) -> None:
        """Late wiring: attach the event log alarm contexts emit to."""
        self._events = events

    def record(self, agent: str, snapshot: Snapshot) -> Optional[Dict[str, Any]]:
        """Record one observation period's detector state for *agent*.

        *snapshot* must carry at least ``alarm`` (bool) and
        ``period_index``; the detector passes its full trajectory point
        (counts, K̄, X_n, y_n, threshold).  Returns the ``alarm_context``
        payload when this period completed one, else None.
        """
        tape = self._tapes.get(agent)
        if tape is None:
            tape = self._tapes[agent] = _Tape(self.capacity)
        tape.periods += 1
        tape.last = snapshot
        if snapshot.get("degraded"):
            tape.degraded += 1
        alarm = bool(snapshot.get("alarm"))

        emitted: Optional[Dict[str, Any]] = None
        if alarm and not tape.prev_alarm:
            # A new alarm while a previous context is still collecting
            # post-alarm periods: close the old one out first so every
            # transition yields exactly one context.
            if tape.pending is not None:
                self._emit(agent, tape)
            tape.alarms += 1
            tape.pending = {
                "alarm_index": tape.alarms,
                "alarm_snapshot": snapshot,
                "pre_periods": list(tape.ring),
                "post_periods": [],
            }
        elif tape.pending is not None:
            tape.pending["post_periods"].append(snapshot)

        if (
            tape.pending is not None
            and len(tape.pending["post_periods"]) >= self.post_alarm_periods
        ):
            emitted = self._emit(agent, tape)

        tape.ring.append(snapshot)
        tape.prev_alarm = alarm
        return emitted

    def _emit(self, agent: str, tape: _Tape) -> Dict[str, Any]:
        pending = tape.pending
        assert pending is not None
        tape.pending = None
        alarm_snapshot = pending["alarm_snapshot"]
        context = {
            "agent": agent,
            "alarm_index": pending["alarm_index"],
            "alarm_period": alarm_snapshot.get("period_index"),
            "alarm_time": alarm_snapshot.get("end_time"),
            "statistic": alarm_snapshot.get("statistic"),
            "threshold": alarm_snapshot.get("threshold"),
            "pre_count": len(pending["pre_periods"]),
            "post_count": len(pending["post_periods"]),
            "capacity": self.capacity,
            "pre_periods": pending["pre_periods"],
            "alarm_snapshot": alarm_snapshot,
            "post_periods": pending["post_periods"],
        }
        self.contexts.append(context)
        self.contexts_emitted += 1
        if self._events is not None and getattr(self._events, "enabled", False):
            self._events.emit("alarm_context", **context)
        return context

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Emit every context still waiting on post-alarm periods (end
        of run); returns the number emitted."""
        emitted = 0
        for agent, tape in self._tapes.items():
            if tape.pending is not None:
                self._emit(agent, tape)
                emitted += 1
        return emitted

    # ------------------------------------------------------------------
    def window(self, agent: str) -> List[Snapshot]:
        """The agent's current ring contents, oldest first."""
        tape = self._tapes.get(agent)
        return list(tape.ring) if tape is not None else []

    def last_snapshots(self) -> Dict[str, Snapshot]:
        """Each agent's most recent trajectory point (full snapshot),
        the fleet-rollup builder's source for delta and X_n."""
        return {
            agent: tape.last
            for agent, tape in sorted(self._tapes.items())
            if tape.last is not None
        }

    def status(self) -> Dict[str, Dict[str, Any]]:
        """Live per-agent state for health endpoints and summaries."""
        report: Dict[str, Dict[str, Any]] = {}
        for agent, tape in sorted(self._tapes.items()):
            last = tape.last or {}
            report[agent] = {
                "periods": tape.periods,
                "alarm": tape.prev_alarm,
                "alarms_seen": tape.alarms,
                "degraded_periods": tape.degraded,
                "statistic": last.get("statistic"),
                "k_bar": last.get("k_bar"),
                "last_period_index": last.get("period_index"),
            }
        return report

    @property
    def agents(self) -> List[str]:
        return sorted(self._tapes)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(agents={len(self._tapes)}, "
            f"capacity={self.capacity}, "
            f"contexts_emitted={self.contexts_emitted})"
        )


class NullFlightRecorder:
    """The disabled default: absorbs records, reports nothing."""

    enabled = False
    contexts_emitted = 0
    contexts: Deque[Dict[str, Any]] = deque()

    def bind_events(self, events: Any) -> None:
        pass

    def record(self, agent: str, snapshot: Snapshot) -> None:
        return None

    def flush(self) -> int:
        return 0

    def window(self, agent: str) -> List[Snapshot]:
        return []

    def last_snapshots(self) -> Dict[str, Snapshot]:
        return {}

    def status(self) -> Dict[str, Dict[str, Any]]:
        return {}

    @property
    def agents(self) -> List[str]:
        return []
