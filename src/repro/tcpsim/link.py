"""Links: delay + loss pipes between simulation components.

A :class:`Link` delivers packets to its sink after a (possibly
randomized) propagation delay, dropping each independently with the
configured loss probability.  Loss on the SYN forwarding path is one of
the paper's two legitimate SYN↔SYN/ACK discrepancy sources, so links
are where the integration tests inject that failure mode.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..packet.packet import Packet
from .engine import EventScheduler

__all__ = ["Link"]

PacketSink = Callable[[Packet], None]


class Link:
    """A unidirectional delay/loss pipe.

    Parameters
    ----------
    scheduler:
        The shared event calendar.
    sink:
        Callable receiving each delivered packet.
    delay:
        Mean one-way propagation+queueing delay in seconds.
    jitter:
        Uniform ±jitter added to the delay (clamped non-negative).
    loss_probability:
        Independent per-packet drop probability.
    rng:
        Source of randomness (deterministic per seed).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        sink: PacketSink,
        delay: float = 0.050,
        jitter: float = 0.010,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "link",
    ) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter cannot be negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss probability must lie in [0,1): {loss_probability}"
            )
        self.scheduler = scheduler
        self.sink = sink
        self.delay = delay
        self.jitter = jitter
        self.loss_probability = loss_probability
        self.rng = rng or random.Random(0)
        self.name = name
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_delivered = 0

    def send(self, packet: Packet) -> None:
        """Submit a packet; it is delivered (or silently lost) later."""
        self.packets_sent += 1
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.packets_dropped += 1
            return
        latency = self.delay
        if self.jitter:
            latency += self.rng.uniform(-self.jitter, self.jitter)
        latency = max(0.0, latency)

        def deliver(captured: Packet = packet) -> None:
            self.packets_delivered += 1
            self.sink(captured.at(self.scheduler.now))

        self.scheduler.schedule_after(latency, deliver)
