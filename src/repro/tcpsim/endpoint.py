"""TCP endpoints implementing the Figure 1 handshake state machine.

:class:`ServerEndpoint` is the victim: LISTEN → (SYN in) SYN_RCVD with a
backlog entry and a SYN/ACK out → (ACK in) ESTABLISHED, with BSD-style
SYN/ACK retransmission at 3 s / 6 s and the 75 s half-open timeout.
:class:`ClientEndpoint` performs active opens: SYN out (SYN_SENT, with
retransmission) → (SYN/ACK in) ACK out, ESTABLISHED.

Both speak through whatever :class:`~repro.tcpsim.link.Link` topology
the network wires up, so the same endpoints work behind routers, lossy
paths and defense proxies.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..packet.addresses import IPv4Address
from ..packet.packet import (
    Packet,
    make_ack,
    make_fin,
    make_rst,
    make_syn,
    make_syn_ack,
)
from .backlog import BacklogQueue, ConnectionKey
from .engine import EventScheduler, ScheduledEvent

__all__ = ["TCPState", "ServerEndpoint", "ClientEndpoint", "RstResponder"]

PacketSink = Callable[[Packet], None]

#: BSD SYN/ACK retransmission offsets after the first transmission.
SYNACK_RETRANSMIT_OFFSETS = (3.0, 9.0)

#: Client SYN retransmission offsets.
SYN_RETRANSMIT_OFFSETS = (3.0, 9.0)


class TCPState(enum.Enum):
    """Figure 1's connection states (establishment and teardown)."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    # Active close (the side that calls close() first):
    FIN_WAIT1 = "fin-wait-1"
    TIME_WAIT = "time-wait"
    # Passive close:
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"


#: TIME_WAIT dwell (2·MSL).  Real stacks use 60–240 s; the simulator's
#: default is shortened so teardown completes within short experiments
#: while preserving the state transition.
TIME_WAIT_DURATION = 10.0


class ServerEndpoint:
    """A listening TCP server with a finite backlog.

    Emits SYN/ACKs through ``output``; the network is responsible for
    routing them (including to spoofed, unreachable destinations where
    they vanish — the attack's key mechanism).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        address: IPv4Address,
        output: PacketSink,
        port: int = 80,
        backlog: Optional[BacklogQueue] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.scheduler = scheduler
        self.address = address
        self.output = output
        self.port = port
        # NOTE: an empty BacklogQueue is falsy (it defines __len__), so
        # `backlog or BacklogQueue()` would silently discard the caller's
        # queue — compare against None explicitly.
        self.backlog = backlog if backlog is not None else BacklogQueue()
        self.rng = rng or random.Random(0)
        self.established: Dict[ConnectionKey, float] = {}
        self.states: Dict[ConnectionKey, TCPState] = {}
        self.closed: Dict[ConnectionKey, float] = {}
        self._retransmit_timers: Dict[ConnectionKey, List[ScheduledEvent]] = {}
        self.synacks_sent = 0
        self.syns_received = 0
        self.fins_received = 0

    # ------------------------------------------------------------------
    def _key_for(self, packet: Packet) -> Optional[ConnectionKey]:
        segment = packet.tcp
        if segment is None:
            return None
        return (int(packet.src_ip), segment.src_port, segment.dst_port)

    def receive(self, packet: Packet) -> None:
        """Handle one inbound packet addressed to this server."""
        segment = packet.tcp
        if segment is None or segment.dst_port != self.port:
            return
        if segment.is_syn:
            self._handle_syn(packet)
        elif segment.is_rst:
            self._handle_rst(packet)
        elif segment.is_fin:
            self._handle_fin(packet)
        elif segment.flags and not segment.is_syn_ack:
            self._handle_ack(packet)

    def _handle_syn(self, packet: Packet) -> None:
        self.syns_received += 1
        self.backlog.expire_older_than(self.scheduler.now)
        key = self._key_for(packet)
        if key is None:
            return
        server_isn = self.rng.getrandbits(32)
        entry = self.backlog.admit(key, self.scheduler.now, server_isn)
        if entry is None:
            return  # backlog full: silent drop — service denied
        self.states[key] = TCPState.SYN_RCVD
        segment = packet.tcp
        self._send_synack(packet.src_ip, key, entry.server_isn, segment.seq)
        self._schedule_retransmissions(packet.src_ip, key, entry.server_isn, segment.seq)

    def _send_synack(
        self, client: IPv4Address, key: ConnectionKey, isn: int, client_seq: int
    ) -> None:
        self.synacks_sent += 1
        self.output(
            make_syn_ack(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=client,
                src_port=key[2],
                dst_port=key[1],
                seq=isn,
                ack=(client_seq + 1) & 0xFFFFFFFF,
            )
        )

    def _schedule_retransmissions(
        self, client: IPv4Address, key: ConnectionKey, isn: int, client_seq: int
    ) -> None:
        timers: List[ScheduledEvent] = []
        for offset in SYNACK_RETRANSMIT_OFFSETS:

            def retransmit(
                client=client, key=key, isn=isn, client_seq=client_seq
            ) -> None:
                entry = self.backlog.lookup(key)
                if entry is None:
                    return  # completed/aborted/expired meanwhile
                entry.retransmissions_sent += 1
                self._send_synack(client, key, isn, client_seq)

            timers.append(self.scheduler.schedule_after(offset, retransmit))
        self._retransmit_timers[key] = timers

    def _cancel_timers(self, key: ConnectionKey) -> None:
        for timer in self._retransmit_timers.pop(key, ()):
            self.scheduler.cancel(timer)

    def _handle_ack(self, packet: Packet) -> None:
        key = self._key_for(packet)
        if key is None:
            return
        if self.states.get(key) is TCPState.LAST_ACK:
            # Final ACK of a passive close (Fig. 1): LAST_ACK -> CLOSED.
            self.states[key] = TCPState.CLOSED
            self.closed[key] = self.scheduler.now
            self.established.pop(key, None)
            return
        if self.backlog.complete(key):
            self._cancel_timers(key)
            self.established[key] = self.scheduler.now
            self.states[key] = TCPState.ESTABLISHED

    def _handle_rst(self, packet: Packet) -> None:
        key = self._key_for(packet)
        if key is None:
            return
        if self.backlog.abort(key):
            self._cancel_timers(key)
        self.states.pop(key, None)

    def _handle_fin(self, packet: Packet) -> None:
        """Passive close (Fig. 1): ESTABLISHED -> CLOSE_WAIT -> LAST_ACK.

        The CLOSE_WAIT dwell (application close latency) is collapsed to
        zero: the FIN is acknowledged and the server's own FIN rides the
        same segment (FIN+ACK), which is how handshake-level simulations
        and many real stacks behave when there is no pending data.
        """
        key = self._key_for(packet)
        segment = packet.tcp
        if key is None or self.states.get(key) is not TCPState.ESTABLISHED:
            return
        self.fins_received += 1
        self.states[key] = TCPState.LAST_ACK
        self.output(
            make_fin(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=packet.src_ip,
                src_port=key[2],
                dst_port=key[1],
                seq=segment.ack,
                ack=(segment.seq + 1) & 0xFFFFFFFF,
            )
        )

    # ------------------------------------------------------------------
    @property
    def half_open_count(self) -> int:
        return len(self.backlog)

    def housekeeping(self) -> None:
        """Periodic expiry sweep (a real stack does this on timer)."""
        expired = [
            key
            for key in list(self._retransmit_timers)
            if self.backlog.lookup(key) is None
        ]
        for key in expired:
            self._cancel_timers(key)
        self.backlog.expire_older_than(self.scheduler.now)


@dataclass
class _PendingConnection:
    key: ConnectionKey
    isn: int
    attempts: int
    timers: List[ScheduledEvent] = field(default_factory=list)


class ClientEndpoint:
    """A legitimate client performing active opens.

    ``on_established(key, connect_latency)`` and ``on_failure(key)``
    callbacks let experiments measure client-visible service quality —
    the quantity SYN cookies and proxies restore.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        address: IPv4Address,
        output: PacketSink,
        rng: Optional[random.Random] = None,
        on_established: Optional[Callable[[ConnectionKey, float], None]] = None,
        on_failure: Optional[Callable[[ConnectionKey], None]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.address = address
        self.output = output
        self.rng = rng or random.Random(0)
        self.on_established = on_established
        self.on_failure = on_failure
        self._pending: Dict[ConnectionKey, _PendingConnection] = {}
        self._started_at: Dict[ConnectionKey, float] = {}
        self._servers: Dict[ConnectionKey, IPv4Address] = {}
        self.established: Dict[ConnectionKey, float] = {}
        self.states: Dict[ConnectionKey, TCPState] = {}
        self.closed: Dict[ConnectionKey, float] = {}
        self.failures = 0

    def connect(self, server: IPv4Address, server_port: int = 80) -> ConnectionKey:
        """Begin a three-way handshake toward *server*."""
        client_port = self.rng.randrange(1024, 65536)
        key: ConnectionKey = (int(self.address), client_port, server_port)
        isn = self.rng.getrandbits(32)
        pending = _PendingConnection(key=key, isn=isn, attempts=0)
        self._pending[key] = pending
        self._started_at[key] = self.scheduler.now
        self._servers[key] = server
        self.states[key] = TCPState.SYN_SENT
        self._send_syn(server, key, isn)
        for offset in SYN_RETRANSMIT_OFFSETS:

            def retry(server=server, key=key, isn=isn) -> None:
                entry = self._pending.get(key)
                if entry is None:
                    return
                entry.attempts += 1
                self._send_syn(server, key, isn)

            pending.timers.append(self.scheduler.schedule_after(offset, retry))
        # Give up after the full retransmission schedule plus grace.
        final_deadline = SYN_RETRANSMIT_OFFSETS[-1] + 12.0

        def give_up(key=key) -> None:
            entry = self._pending.pop(key, None)
            if entry is None:
                return
            self.failures += 1
            if self.on_failure is not None:
                self.on_failure(key)

        pending.timers.append(self.scheduler.schedule_after(final_deadline, give_up))
        return key

    def _send_syn(self, server: IPv4Address, key: ConnectionKey, isn: int) -> None:
        self.output(
            make_syn(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=server,
                src_port=key[1],
                dst_port=key[2],
                seq=isn,
            )
        )

    def receive(self, packet: Packet) -> None:
        segment = packet.tcp
        if segment is None:
            return
        key: ConnectionKey = (int(self.address), segment.dst_port, segment.src_port)
        if segment.is_fin:
            self._handle_fin(packet, key)
            return
        if not segment.is_syn_ack:
            return
        pending = self._pending.pop(key, None)
        if pending is None:
            return  # duplicate SYN/ACK after completion
        for timer in pending.timers:
            self.scheduler.cancel(timer)
        # Final ACK of the three-way handshake.
        self.output(
            make_ack(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=packet.src_ip,
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=(pending.isn + 1) & 0xFFFFFFFF,
                ack=(segment.seq + 1) & 0xFFFFFFFF,
            )
        )
        latency = self.scheduler.now - self._started_at.pop(key)
        self.established[key] = latency
        self.states[key] = TCPState.ESTABLISHED
        if self.on_established is not None:
            self.on_established(key, latency)

    def close(self, key: ConnectionKey) -> None:
        """Active close (Fig. 1): ESTABLISHED -> FIN_WAIT1, FIN sent."""
        if self.states.get(key) is not TCPState.ESTABLISHED:
            raise ValueError(f"cannot close non-established connection {key}")
        self.states[key] = TCPState.FIN_WAIT1
        self.output(
            make_fin(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=self._servers[key],
                src_port=key[1],
                dst_port=key[2],
            )
        )

    def _handle_fin(self, packet: Packet, key: ConnectionKey) -> None:
        """The peer's FIN(+ACK) while we are in FIN_WAIT1: acknowledge it
        and dwell in TIME_WAIT before releasing the port (Fig. 1's
        FIN_WAIT -> TIME_WAIT -> CLOSED path, with the two FIN_WAIT
        stages collapsed because the peer piggybacks its FIN on the
        ACK)."""
        if self.states.get(key) is not TCPState.FIN_WAIT1:
            return
        segment = packet.tcp
        self.output(
            make_ack(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=packet.src_ip,
                src_port=key[1],
                dst_port=key[2],
                seq=segment.ack,
                ack=(segment.seq + 1) & 0xFFFFFFFF,
            )
        )
        self.states[key] = TCPState.TIME_WAIT

        def release(key=key) -> None:
            if self.states.get(key) is TCPState.TIME_WAIT:
                self.states[key] = TCPState.CLOSED
                self.closed[key] = self.scheduler.now

        self.scheduler.schedule_after(TIME_WAIT_DURATION, release)


class RstResponder:
    """A live host that was never asked: on receiving an unexpected
    SYN/ACK it answers with a RST, which releases the victim's backlog
    entry — exactly why effective floods spoof *unreachable* sources
    (Section 1)."""

    def __init__(
        self,
        scheduler: EventScheduler,
        address: IPv4Address,
        output: PacketSink,
    ) -> None:
        self.scheduler = scheduler
        self.address = address
        self.output = output
        self.rsts_sent = 0

    def receive(self, packet: Packet) -> None:
        segment = packet.tcp
        if segment is None or not segment.is_syn_ack:
            return
        self.rsts_sent += 1
        self.output(
            make_rst(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=packet.src_ip,
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=segment.ack,
            )
        )
