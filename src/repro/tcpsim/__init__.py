"""Discrete-event TCP/network simulator substrate.

Implements the protocol machinery the paper's threat model rests on:
the Figure 1 handshake state machine, the victim's finite backlog of
half-open connections with the 75 s timeout, delay/loss links, and a
victim-network assembly that measures service denial under flood — the
substrate on which the stateful baseline defenses run.
"""

from .backlog import (
    BACKLOG_TIMEOUT,
    BacklogQueue,
    ConnectionKey,
    HalfOpenConnection,
)
from .endpoint import (
    ClientEndpoint,
    RstResponder,
    ServerEndpoint,
    TCPState,
)
from .engine import EventScheduler, ScheduledEvent, SimulationError
from .link import Link
from .network import VictimExperimentResult, VictimNetwork

__all__ = [
    "BACKLOG_TIMEOUT",
    "BacklogQueue",
    "ConnectionKey",
    "HalfOpenConnection",
    "ClientEndpoint",
    "RstResponder",
    "ServerEndpoint",
    "TCPState",
    "EventScheduler",
    "ScheduledEvent",
    "SimulationError",
    "Link",
    "VictimExperimentResult",
    "VictimNetwork",
]
