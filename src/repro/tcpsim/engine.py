"""Discrete-event simulation core.

A classic event-calendar engine: heap-ordered (time, sequence, event)
with monotonic sequence numbers for deterministic tie-breaking, so any
simulation built on it is exactly reproducible from its RNG seeds.
All higher tcpsim components (links, endpoints, routers) schedule
callbacks through one shared :class:`EventScheduler`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler", "ScheduledEvent", "SimulationError"]

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


@dataclass(frozen=True)
class ScheduledEvent:
    """Handle returned by :meth:`EventScheduler.schedule`; lets the owner
    cancel a pending event (e.g. a retransmission timer on ACK).

    Ordering contract: ``sequence`` is drawn from a monotonic
    ``itertools.count`` at *schedule* time — never from a clock.  Two
    events at the same simulated ``time`` therefore always compare in
    insertion order, even when timestamps are derived from
    :func:`time.perf_counter` (whose resolution can make distinct
    schedule calls produce byte-identical floats) or from repeated
    identical delays.  This is what makes every simulation replayable
    from its RNG seeds alone; ``tests/tcpsim/test_engine.py`` holds the
    tie-break behaviour as a regression.
    """

    time: float
    sequence: int

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventScheduler:
    """The event calendar.

    ``run_until(t)`` executes every pending event with time ≤ t in
    (time, insertion) order; ``run()`` drains the calendar.  Cancelled
    events stay in the heap but are skipped at pop time (lazy deletion,
    O(log n) cancel).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._cancelled: set = set()
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending(self) -> int:
        """Events still scheduled (including lazily-cancelled ones)."""
        return len(self._heap) - len(self._cancelled)

    def schedule(self, time: float, callback: Callback) -> ScheduledEvent:
        """Schedule *callback* at absolute time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        sequence = next(self._sequence)
        heapq.heappush(self._heap, (time, sequence, callback))
        return ScheduledEvent(time=time, sequence=sequence)

    def schedule_after(self, delay: float, callback: Callback) -> ScheduledEvent:
        """Schedule *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a pending event.  Cancelling an already-executed or
        already-cancelled event is a harmless no-op."""
        self._cancelled.add((event.time, event.sequence))

    def _pop_next(self) -> Optional[Tuple[float, Callback]]:
        while self._heap:
            time, sequence, callback = heapq.heappop(self._heap)
            if (time, sequence) in self._cancelled:
                self._cancelled.discard((time, sequence))
                continue
            return time, callback
        return None

    def run_until(self, end_time: float) -> int:
        """Execute all events with time ≤ end_time; returns how many ran.

        Simulation time ends at exactly *end_time* even if the calendar
        empties earlier.
        """
        executed = 0
        while self._heap:
            time = self._heap[0][0]
            if time > end_time:
                break
            item = self._pop_next()
            if item is None:
                break
            self._now, callback = item
            callback()
            executed += 1
            self._events_executed += 1
        self._now = max(self._now, end_time)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the calendar completely (bounded by *max_events* as a
        runaway guard)."""
        executed = 0
        while executed < max_events:
            item = self._pop_next()
            if item is None:
                return executed
            self._now, callback = item
            callback()
            executed += 1
            self._events_executed += 1
        raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
