"""Victim-side network assembly: the service-denial experiment.

Builds the end-to-end scenario the paper motivates (Section 1): a
victim TCP server with a finite backlog, legitimate clients arriving
over a wide-area path, and a SYN flood with spoofed sources.  Spoofed
SYN/ACK handling follows the paper's analysis: SYN/ACKs sent to
unreachable addresses vanish (the half-open entry pins for 75 s);
SYN/ACKs that happen to hit a live host draw a RST that releases the
entry.

This substrate demonstrates *the attack itself* (service-denial
probability vs flood rate — the 500 SYN/s figure of [8]) and hosts the
stateful victim-side baselines in :mod:`repro.defense`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..attack.flooder import FloodSource
from ..packet.addresses import IPv4Address
from ..packet.packet import Packet
from .backlog import BacklogQueue
from .endpoint import ClientEndpoint, RstResponder, ServerEndpoint
from .engine import EventScheduler
from .link import Link

__all__ = ["VictimNetwork", "VictimExperimentResult"]


@dataclass
class VictimExperimentResult:
    """Client-visible outcome of a flood-the-victim run."""

    duration: float
    flood_rate: float
    legitimate_attempts: int
    legitimate_established: int
    legitimate_failed: int
    backlog_refused: int
    backlog_peak: int
    mean_connect_latency: float

    @property
    def denial_probability(self) -> float:
        """Fraction of legitimate connection attempts that never
        established — the headline victim-side damage metric."""
        if self.legitimate_attempts == 0:
            return 0.0
        return 1.0 - self.legitimate_established / self.legitimate_attempts


class VictimNetwork:
    """A victim server, its clients, and an optional flood.

    Parameters
    ----------
    backlog_capacity:
        Victim listen-queue size (256 default, a late-90s server).
    client_rate:
        Legitimate connection attempts per second (Poisson).
    rtt:
        Round-trip time between clients/attacker and victim; the one-way
        link delay is rtt/2.
    reachable_spoof_fraction:
        Fraction of spoofed sources that are live hosts (and will RST).
        0.0 models the paper's canonical invalid-source flood.
    server_receiver:
        Optional hook (e.g. a defense proxy) interposed in front of the
        server; receives each packet and returns True when the packet
        was consumed (not to be forwarded to the server).
    tap_inbound / tap_outbound:
        Optional passive observers on the victim's leaf-router
        interfaces — where Figure 6's *last-mile sniffer* attaches.
        ``tap_inbound`` sees every packet arriving at the victim's
        network; ``tap_outbound`` sees every packet the victim sends
        out.
    server_kind:
        ``"backlog"`` (default) runs the classic finite-backlog server —
        the vulnerable configuration; ``"cookies"`` swaps in a
        :class:`~repro.defense.syncookies.SynCookieServer`, which holds
        no half-open state and therefore cannot be exhausted.
    """

    def __init__(
        self,
        seed: int = 0,
        backlog_capacity: int = 256,
        backlog_timeout: float = 75.0,
        client_rate: float = 20.0,
        rtt: float = 0.100,
        path_loss: float = 0.0,
        reachable_spoof_fraction: float = 0.0,
        server_receiver: Optional[Callable[[Packet], bool]] = None,
        tap_inbound: Optional[Callable[[Packet], None]] = None,
        tap_outbound: Optional[Callable[[Packet], None]] = None,
        server_kind: str = "backlog",
    ) -> None:
        if server_kind not in ("backlog", "cookies"):
            raise ValueError(f"unknown server kind: {server_kind!r}")
        if client_rate < 0:
            raise ValueError(f"client rate cannot be negative: {client_rate}")
        if not 0.0 <= reachable_spoof_fraction <= 1.0:
            raise ValueError(
                f"reachable fraction must lie in [0,1]: {reachable_spoof_fraction}"
            )
        self.scheduler = EventScheduler()
        self.rng = random.Random(seed)
        self.rtt = rtt
        self.reachable_spoof_fraction = reachable_spoof_fraction
        self.server_receiver = server_receiver
        self.tap_inbound = tap_inbound
        self.tap_outbound = tap_outbound

        self.victim_address = IPv4Address.parse("198.51.100.80")
        one_way = rtt / 2.0
        # Link from the wide area toward the victim.
        self.to_victim = Link(
            self.scheduler,
            sink=self._deliver_to_victim,
            delay=one_way,
            jitter=one_way / 5.0,
            loss_probability=path_loss,
            rng=random.Random(seed + 1),
            name="to-victim",
        )
        # Link from the victim back out (SYN/ACKs and their fates).
        self.from_victim = Link(
            self.scheduler,
            sink=self._deliver_from_victim,
            delay=one_way,
            jitter=one_way / 5.0,
            loss_probability=path_loss,
            rng=random.Random(seed + 2),
            name="from-victim",
        )
        self.server_kind = server_kind
        if server_kind == "cookies":
            from ..defense.syncookies import SynCookieServer

            self.server = SynCookieServer(
                self.scheduler,
                address=self.victim_address,
                output=self.from_victim.send,
                rng=random.Random(seed + 3),
            )
        else:
            self.server = ServerEndpoint(
                self.scheduler,
                address=self.victim_address,
                output=self.from_victim.send,
                backlog=BacklogQueue(
                    capacity=backlog_capacity, timeout=backlog_timeout
                ),
                rng=random.Random(seed + 3),
            )
        self.client_rate = client_rate
        self.clients: Dict[int, ClientEndpoint] = {}
        self._next_client_index = 0
        self._client_attempts = 0
        self._latencies: List[float] = []
        self._backlog_peak = 0
        self._rst_responders: Dict[int, RstResponder] = {}
        #: Active mitigation hook: called after ``tap_inbound`` for every
        #: packet arriving at the victim's network; returning False drops
        #: the packet at the leaf router (a blocklist or rate limiter
        #: installed by :class:`~repro.defense.response.ResponseEngine`).
        self.inbound_filter: Optional[Callable[[Packet], bool]] = None
        self.filtered_inbound = 0
        #: Active mitigation hook on the victim's outbound interface:
        #: returning True consumes the packet (e.g. a SYN proxy
        #: completing its back-end handshake leg).
        self.outbound_interceptor: Optional[Callable[[Packet], bool]] = None
        self._attempt_log: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _deliver_to_victim(self, packet: Packet) -> None:
        if self.tap_inbound is not None:
            self.tap_inbound(packet)
        if self.inbound_filter is not None and not self.inbound_filter(packet):
            self.filtered_inbound += 1
            return
        if self.server_receiver is not None and self.server_receiver(packet):
            return
        self.server.receive(packet)
        self._backlog_peak = max(self._backlog_peak, self.server.half_open_count)

    def _deliver_from_victim(self, packet: Packet) -> None:
        if self.tap_outbound is not None:
            self.tap_outbound(packet)
        if self.outbound_interceptor is not None and self.outbound_interceptor(
            packet
        ):
            return
        destination = int(packet.dst_ip)
        client = self.clients.get(destination)
        if client is not None:
            client.receive(packet)
            return
        responder = self._rst_responders.get(destination)
        if responder is not None:
            responder.receive(packet)
            return
        # Unreachable spoofed address: the SYN/ACK vanishes, exactly the
        # behaviour the flood relies on.

    def swap_server(self, server) -> object:
        """Replace the victim server endpoint mid-run and return the old
        one — how the response engine flips the victim to SYN cookies
        (and back) while the simulation is live.  The replacement must
        expose the ``receive``/``half_open_count``/``housekeeping``
        interface of :class:`~repro.tcpsim.endpoint.ServerEndpoint`."""
        old, self.server = self.server, server
        return old

    # ------------------------------------------------------------------
    # Load generation
    # ------------------------------------------------------------------
    def _spawn_client(self) -> ClientEndpoint:
        self._next_client_index += 1
        address = IPv4Address(
            (IPv4Address.parse("100.64.0.0").value) + self._next_client_index
        )
        client = ClientEndpoint(
            self.scheduler,
            address=address,
            output=self.to_victim.send,
            rng=random.Random(self.rng.getrandbits(32)),
            on_established=lambda _key, latency: self._latencies.append(latency),
        )
        self.clients[int(address)] = client
        return client

    def _schedule_legitimate_traffic(self, duration: float) -> None:
        if self.client_rate <= 0:
            return
        time = self.rng.expovariate(self.client_rate)
        while time < duration:

            def attempt() -> None:
                self._client_attempts += 1
                client = self._spawn_client()
                self._attempt_log.append(
                    (self.scheduler.now, int(client.address))
                )
                client.connect(self.victim_address)

            self.scheduler.schedule(time, attempt)
            time += self.rng.expovariate(self.client_rate)

    def _schedule_flood(self, flood: FloodSource, start: float, duration: float) -> None:
        packets = flood.generate_packets(
            random.Random(self.rng.getrandbits(32)), duration
        )
        for packet in packets:
            spoofed_source = int(packet.src_ip)
            if (
                self.reachable_spoof_fraction
                and self.rng.random() < self.reachable_spoof_fraction
                and spoofed_source not in self._rst_responders
            ):
                self._rst_responders[spoofed_source] = RstResponder(
                    self.scheduler,
                    address=packet.src_ip,
                    output=self.to_victim.send,
                )
            self.scheduler.schedule(
                start + packet.timestamp,
                lambda captured=packet: self.to_victim.send(captured),
            )

    def attempt_outcomes(self) -> List[Tuple[float, bool]]:
        """``(attempt_time, succeeded)`` for every legitimate connection
        attempt, in attempt order — the raw material for the phase-
        bucketed handshake completion rates the respond campaign
        reports.  Meaningful after :meth:`run` returns."""
        outcomes: List[Tuple[float, bool]] = []
        for time, address in self._attempt_log:
            client = self.clients.get(address)
            outcomes.append(
                (time, client is not None and len(client.established) > 0)
            )
        return outcomes

    # ------------------------------------------------------------------
    # Experiment driver
    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        flood: Optional[FloodSource] = None,
        flood_start: float = 0.0,
        flood_duration: Optional[float] = None,
    ) -> VictimExperimentResult:
        """Run the scenario and report client-visible service quality."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        self._schedule_legitimate_traffic(duration)
        flood_rate = 0.0
        if flood is not None:
            window = flood_duration if flood_duration is not None else duration
            self._schedule_flood(flood, flood_start, window)
            flood_rate = flood.mean_rate(window)
        # Periodic backlog expiry sweep.
        sweep_interval = 1.0
        time = sweep_interval
        while time < duration + 30.0:
            # Late-bound: ``swap_server`` may replace the endpoint while
            # the simulation runs, and the sweep must follow it.
            self.scheduler.schedule(time, lambda: self.server.housekeeping())
            time += sweep_interval
        # Drain: run past the end so in-flight handshakes resolve.
        self.scheduler.run_until(duration + 30.0)

        established = sum(len(c.established) for c in self.clients.values())
        failed = sum(c.failures for c in self.clients.values())
        backlog = getattr(self.server, "backlog", None)
        return VictimExperimentResult(
            duration=duration,
            flood_rate=flood_rate,
            legitimate_attempts=self._client_attempts,
            legitimate_established=established,
            legitimate_failed=failed,
            backlog_refused=backlog.refused if backlog is not None else 0,
            backlog_peak=self._backlog_peak,
            mean_connect_latency=(
                sum(self._latencies) / len(self._latencies)
                if self._latencies
                else float("nan")
            ),
        )
