"""The victim server's half-open connection backlog (Section 1).

The attack surface SYN flooding exploits: a TCP server keeps every
half-open connection (SYN received, final ACK not yet) in a
finite-length backlog queue.  Entries persist until the handshake
completes, a RST arrives, or the SYN/ACK retransmission schedule is
exhausted — "the failure of two retransmissions, which typically lasts
for 75 seconds".  When the queue is full, new SYNs are dropped,
denying service to legitimate clients.

This module is pure data-structure logic (no event scheduling) so it
can be unit- and property-tested exhaustively; the TCP endpoint drives
it from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["BacklogQueue", "HalfOpenConnection", "ConnectionKey", "BACKLOG_TIMEOUT"]

#: Classical BSD half-open lifetime: initial SYN/ACK plus two
#: retransmissions, giving up after ~75 seconds.
BACKLOG_TIMEOUT = 75.0

#: Default backlog capacity, matching the small listen queues of
#: late-1990s servers that made the attack so cheap (a few hundred
#: half-open entries).
DEFAULT_BACKLOG_SIZE = 256

#: (client_ip_int, client_port, server_port)
ConnectionKey = Tuple[int, int, int]


@dataclass
class HalfOpenConnection:
    """One backlog entry."""

    key: ConnectionKey
    created_at: float
    expires_at: float
    server_isn: int
    retransmissions_sent: int = 0


class BacklogQueue:
    """The half-open connection table with its capacity limit.

    The queue tracks aggregate counters (accepted / refused / completed
    / expired / reset) so experiments can report service-denial rates
    directly.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_BACKLOG_SIZE,
        timeout: float = BACKLOG_TIMEOUT,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive: {timeout}")
        self.capacity = capacity
        self.timeout = timeout
        self._table: Dict[ConnectionKey, HalfOpenConnection] = {}
        # Aggregate statistics.
        self.accepted = 0
        self.refused = 0
        self.completed = 0
        self.expired = 0
        self.reset = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def is_full(self) -> bool:
        return len(self._table) >= self.capacity

    @property
    def occupancy(self) -> float:
        """Fraction of the backlog in use, 0..1."""
        return len(self._table) / self.capacity

    def lookup(self, key: ConnectionKey) -> Optional[HalfOpenConnection]:
        return self._table.get(key)

    def admit(
        self, key: ConnectionKey, now: float, server_isn: int
    ) -> Optional[HalfOpenConnection]:
        """Try to enter a new half-open connection.

        Returns the entry, or None when the backlog is full (the SYN is
        silently dropped — the denial-of-service observable).  A repeat
        SYN for an existing key refreshes nothing and returns the
        existing entry (SYN retransmissions must not double-book).
        """
        existing = self._table.get(key)
        if existing is not None:
            return existing
        if self.is_full:
            self.refused += 1
            return None
        entry = HalfOpenConnection(
            key=key,
            created_at=now,
            expires_at=now + self.timeout,
            server_isn=server_isn,
        )
        self._table[key] = entry
        self.accepted += 1
        return entry

    def complete(self, key: ConnectionKey) -> bool:
        """Final handshake ACK arrived: promote out of the backlog.
        Returns False when the key is unknown (stale/forged ACK)."""
        if self._table.pop(key, None) is None:
            return False
        self.completed += 1
        return True

    def abort(self, key: ConnectionKey) -> bool:
        """RST arrived for a half-open entry (e.g. a spoofed-source
        victim's real host refusing our SYN/ACK): release it."""
        if self._table.pop(key, None) is None:
            return False
        self.reset += 1
        return True

    def expire_older_than(self, now: float) -> int:
        """Drop every entry whose 75 s lifetime has lapsed; returns how
        many were reclaimed."""
        stale = [key for key, entry in self._table.items() if entry.expires_at <= now]
        for key in stale:
            del self._table[key]
        self.expired += len(stale)
        return len(stale)

    def service_denial_probability(self) -> float:
        """Fraction of connection attempts refused so far — the primary
        victim-side damage metric."""
        attempts = self.accepted + self.refused
        if attempts == 0:
            return 0.0
        return self.refused / attempts
