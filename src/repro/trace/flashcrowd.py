"""Flash crowds — the crucial *negative control* for flood detectors.

A flash crowd (news event, product release) is a sudden surge of
*legitimate* connection attempts.  A rate-based detector cannot tell it
from a flood: SYN volume explodes either way.  SYN-dog can, by design:
legitimate SYNs are *answered*, so the SYN↔SYN/ACK difference stays
bounded no matter how high the volume spikes.  (Only the far servers'
overload drops break pairing, and those scale with — not ahead of —
the surge.)

This module superposes a flash-crowd surge onto a background count
trace using the same handshake model as the background, so the surge's
SYNs carry the same answer statistics as any legitimate traffic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .events import CountTrace
from .handshake import HandshakeModel
from .mixer import AttackWindow

__all__ = ["FlashCrowd", "mix_flash_crowd_into_counts"]


@dataclass(frozen=True)
class FlashCrowd:
    """A legitimate connection surge.

    The connection rate ramps from zero to ``peak_rate`` over
    ``ramp_time``, holds, and decays back — the classic flash-crowd
    envelope (fast onset, slow decay).

    Parameters
    ----------
    peak_rate:
        Extra legitimate connections/second at the peak.
    ramp_time:
        Seconds from onset to peak.
    decay_time:
        Exponential decay constant after the hold phase.
    hold_time:
        Seconds the surge holds at peak.
    server_overload_drop:
        Extra drop probability at the *remote* servers during the surge
        (popular servers do shed some load — the honest imperfection;
        0.0 models an infinitely provisioned CDN).
    """

    peak_rate: float
    ramp_time: float = 60.0
    hold_time: float = 300.0
    decay_time: float = 300.0
    server_overload_drop: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_rate < 0:
            raise ValueError(f"peak rate cannot be negative: {self.peak_rate}")
        if self.ramp_time <= 0 or self.hold_time < 0 or self.decay_time <= 0:
            raise ValueError("ramp/hold/decay times must be positive")
        if not 0.0 <= self.server_overload_drop <= 1.0:
            raise ValueError(
                f"overload drop must lie in [0,1]: {self.server_overload_drop}"
            )

    def rate_at(self, t: float) -> float:
        """Surge connection rate at surge-local time t."""
        if t < 0:
            return 0.0
        if t < self.ramp_time:
            return self.peak_rate * t / self.ramp_time
        if t < self.ramp_time + self.hold_time:
            return self.peak_rate
        elapsed = t - self.ramp_time - self.hold_time
        return self.peak_rate * math.exp(-elapsed / self.decay_time)

    def expected_connections(self, t0: float, t1: float, steps: int = 16) -> float:
        """∫ rate dt over [t0, t1) (numeric; the envelope is piecewise
        smooth and the integrand cheap)."""
        if t1 <= t0:
            return 0.0
        width = (t1 - t0) / steps
        return sum(
            self.rate_at(t0 + (i + 0.5) * width) * width for i in range(steps)
        )


def mix_flash_crowd_into_counts(
    background: CountTrace,
    crowd: FlashCrowd,
    window: AttackWindow,
    handshake: HandshakeModel,
    rng: Optional[random.Random] = None,
) -> CountTrace:
    """Superpose a flash crowd onto a count-level background trace.

    Unlike flood mixing, **both columns change**: the surge's SYNs are
    legitimate, so each surge connection runs through the same
    loss/retransmission model as the background (plus any
    ``server_overload_drop``) and produces its SYN/ACKs.
    """
    local_rng = rng or random.Random(0)
    drop = min(
        1.0,
        handshake.base_drop_probability + crowd.server_overload_drop,
    )
    mixed: List[Tuple[int, int]] = []
    for index, (syn, synack) in enumerate(background.counts):
        period_start = index * background.period
        period_end = period_start + background.period
        overlap = window.overlap_with(period_start, period_end)
        if overlap <= 0:
            mixed.append((syn, synack))
            continue
        local_t0 = max(0.0, period_start - window.start)
        local_t1 = min(window.duration, period_end - window.start)
        expected = crowd.expected_connections(local_t0, local_t1)
        connections = int(expected)
        if local_rng.random() < expected - connections:
            connections += 1
        extra_syn = 0
        extra_synack = 0
        for _ in range(connections):
            attempts = 0
            answered = False
            for _attempt in range(1 + handshake.max_retransmissions):
                attempts += 1
                if local_rng.random() >= drop:
                    answered = True
                    break
            extra_syn += attempts
            if answered:
                extra_synack += 1
        mixed.append((syn + extra_syn, synack + extra_synack))
    return CountTrace(
        metadata=background.metadata,
        period=background.period,
        counts=tuple(mixed),
    )
