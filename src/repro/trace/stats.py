"""Descriptive statistics over traces — the quantities the paper's
figures and our calibration tests report.

Figures 3 and 4 plot per-bin SYN vs SYN/ACK counts; Section 3.1 claims
a "very strong positive correlation" between the two series and a
bounded difference relative to the number of active connections.  The
helpers here compute those series and the supporting statistics
(Pearson correlation, normalized difference, burstiness / index of
dispersion, and a variance-time Hurst estimate for the self-similarity
checks on the arrival substrate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .events import CountTrace, PacketTrace

__all__ = [
    "TraceStatistics",
    "summarize_counts",
    "pearson_correlation",
    "index_of_dispersion",
    "variance_time_hurst",
    "per_bin_series",
]


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two samples")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def index_of_dispersion(counts: Sequence[float]) -> float:
    """Variance-to-mean ratio — 1 for Poisson, above 1 for bursty."""
    n = len(counts)
    if n < 2:
        raise ValueError("need at least two samples")
    mean = sum(counts) / n
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / (n - 1)
    return variance / mean


def variance_time_hurst(
    counts: Sequence[float], max_aggregation: Optional[int] = None
) -> float:
    """Variance-time-plot estimate of the Hurst parameter.

    Aggregates the series at levels m = 1, 2, 4, ..., fits
    log Var(X^(m)) against log m; the slope β gives H = 1 + β/2.
    Poisson counts give H ≈ 0.5; the Pareto ON/OFF substrate should give
    H ≈ (3 − α)/2 ≈ 0.75 (a property test asserts the ordering).
    """
    n = len(counts)
    if n < 16:
        raise ValueError("need at least 16 samples for a variance-time fit")
    if max_aggregation is None:
        max_aggregation = n // 8
    log_m: List[float] = []
    log_var: List[float] = []
    m = 1
    while m <= max_aggregation:
        num_blocks = n // m
        blocks = [
            sum(counts[i * m : (i + 1) * m]) / m for i in range(num_blocks)
        ]
        if len(blocks) >= 4:
            mean = sum(blocks) / len(blocks)
            variance = sum((b - mean) ** 2 for b in blocks) / (len(blocks) - 1)
            if variance > 0:
                log_m.append(math.log(m))
                log_var.append(math.log(variance))
        m *= 2
    if len(log_m) < 3:
        raise ValueError("not enough aggregation levels with positive variance")
    # Least-squares slope.
    k = len(log_m)
    mean_x = sum(log_m) / k
    mean_y = sum(log_var) / k
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(log_m, log_var)
    ) / sum((x - mean_x) ** 2 for x in log_m)
    return 1.0 + slope / 2.0


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one count trace."""

    name: str
    num_periods: int
    period: float
    mean_syn: float
    mean_synack: float
    syn_synack_correlation: float
    mean_difference: float
    max_difference: int
    mean_normalized_difference: float  #: empirical c = E[Δ/K̄]
    dispersion: float                  #: burstiness of the SYN series

    @property
    def duration(self) -> str:
        """Table 1-style human-readable duration."""
        seconds = self.num_periods * self.period
        hours = seconds / 3600.0
        if abs(hours - round(hours)) < 1e-9 and hours >= 1:
            count = int(round(hours))
            return "One hour" if count == 1 else f"{_spell(count)} hours"
        if abs(hours - 0.5) < 1e-9:
            return "Half hour"
        return f"{seconds / 60.0:.0f} minutes"


def summarize_counts(trace: CountTrace) -> TraceStatistics:
    """Compute the full statistics bundle for one count trace."""
    syns = [float(s) for s in trace.syn_counts]
    synacks = [float(s) for s in trace.synack_counts]
    differences = trace.differences
    mean_synack = sum(synacks) / len(synacks) if synacks else 0.0
    k_bar = max(mean_synack, 1.0)
    return TraceStatistics(
        name=trace.metadata.name,
        num_periods=trace.num_periods,
        period=trace.period,
        mean_syn=sum(syns) / len(syns) if syns else 0.0,
        mean_synack=mean_synack,
        syn_synack_correlation=pearson_correlation(syns, synacks),
        mean_difference=sum(differences) / len(differences) if differences else 0.0,
        max_difference=max(differences) if differences else 0,
        mean_normalized_difference=(
            sum(differences) / len(differences) / k_bar if differences else 0.0
        ),
        dispersion=index_of_dispersion(syns),
    )


def per_bin_series(
    trace: PacketTrace, bin_seconds: float = 60.0
) -> Tuple[List[int], List[int]]:
    """Per-bin (SYN, SYN/ACK) counts over a packet trace — the series
    Figures 3 and 4 plot (the paper bins per minute).

    For bidirectional sites the paper counts SYNs and SYN/ACKs "from
    both directions"; both streams are therefore scanned for both kinds.
    """
    num_bins = max(1, int(-(-trace.metadata.duration // bin_seconds)))
    syns = [0] * num_bins
    synacks = [0] * num_bins
    bidirectional = trace.metadata.bidirectional
    for stream, count_syns, count_synacks in (
        (trace.outbound, True, bidirectional),
        (trace.inbound, bidirectional, True),
    ):
        for packet in stream:
            index = int(packet.timestamp // bin_seconds)
            if not 0 <= index < num_bins:
                continue
            if count_syns and packet.is_syn:
                syns[index] += 1
            if count_synacks and packet.is_syn_ack:
                synacks[index] += 1
    return syns, synacks


def _spell(count: int) -> str:
    words = {2: "Two", 3: "Three", 4: "Four", 5: "Five", 6: "Six"}
    return words.get(count, str(count))
