"""Trace substrate: arrival processes, the SYN↔SYN/ACK handshake model,
calibrated site profiles for the paper's four trace sets (Table 1),
synthetic generation at packet and count resolution, attack mixing, and
trace statistics/persistence."""

from .arrival import (
    ArrivalProcess,
    MMPPArrivals,
    ParetoOnOffArrivals,
    PoissonArrivals,
    diurnal_modulation,
    flat_modulation,
)
from .events import CountTrace, PacketTrace, TraceMetadata
from .extended import (
    ConnectionLifetimeModel,
    ExtendedCountTrace,
    generate_extended_count_trace,
    mix_flood_into_extended,
)
from .flashcrowd import FlashCrowd, mix_flash_crowd_into_counts
from .handshake import (
    CongestionEpisodeModel,
    HandshakeEvent,
    HandshakeModel,
)
from .io import (
    load_count_trace,
    load_packet_trace_jsonl,
    save_count_trace,
    save_packet_trace_jsonl,
)
from .mixer import AttackWindow, mix_flood_into_counts, mix_flood_into_packets
from .profiles import (
    AUCKLAND,
    HARVARD,
    LBL,
    SITE_PROFILES,
    UNC,
    SiteProfile,
    get_profile,
)
from .stats import (
    TraceStatistics,
    index_of_dispersion,
    pearson_correlation,
    per_bin_series,
    summarize_counts,
    variance_time_hurst,
)
from .validation import Finding, Severity, validate_count_trace
from .synthetic import (
    DEFAULT_OBSERVATION_PERIOD,
    AddressPlan,
    generate_count_trace,
    generate_packet_trace,
)

__all__ = [
    "ArrivalProcess",
    "MMPPArrivals",
    "ParetoOnOffArrivals",
    "PoissonArrivals",
    "diurnal_modulation",
    "flat_modulation",
    "CountTrace",
    "PacketTrace",
    "TraceMetadata",
    "ConnectionLifetimeModel",
    "ExtendedCountTrace",
    "generate_extended_count_trace",
    "mix_flood_into_extended",
    "FlashCrowd",
    "mix_flash_crowd_into_counts",
    "CongestionEpisodeModel",
    "HandshakeEvent",
    "HandshakeModel",
    "load_count_trace",
    "load_packet_trace_jsonl",
    "save_count_trace",
    "save_packet_trace_jsonl",
    "AttackWindow",
    "mix_flood_into_counts",
    "mix_flood_into_packets",
    "AUCKLAND",
    "HARVARD",
    "LBL",
    "SITE_PROFILES",
    "UNC",
    "SiteProfile",
    "get_profile",
    "TraceStatistics",
    "index_of_dispersion",
    "pearson_correlation",
    "per_bin_series",
    "summarize_counts",
    "variance_time_hurst",
    "Finding",
    "Severity",
    "validate_count_trace",
    "DEFAULT_OBSERVATION_PERIOD",
    "AddressPlan",
    "generate_count_trace",
    "generate_packet_trace",
]
