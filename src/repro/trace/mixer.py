"""Mixing flooding traffic into background traces (Figure 6's setup).

The paper's detection experiments superpose attack SYNs on the normal
background: "The flooding traffic is mixed with the normal traffic, the
SYN-dog at a leaf router is simulated."  The outbound sniffer sees
background SYNs *plus* flood SYNs; the inbound SYN/ACK stream is
untouched, because the spoofed requests target a victim elsewhere and
its SYN/ACKs (sent to the spoofed addresses) never return through this
router.

Works at both trace resolutions.  At count level the flood contribution
to each period is ``rate × overlap-seconds`` (prorated exactly at the
attack's partial first/last periods); pass ``jitter=True`` to Poissonize
it instead of using the deterministic expectation.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Tuple

from ..attack.flooder import FloodSource
from .events import CountTrace, PacketTrace

__all__ = ["mix_flood_into_counts", "mix_flood_into_packets", "AttackWindow"]


class AttackWindow:
    """The [start, start+duration) interval during which a flood is live."""

    def __init__(self, start: float, duration: float) -> None:
        if start < 0:
            raise ValueError(f"attack start cannot be negative: {start}")
        if duration <= 0:
            raise ValueError(f"attack duration must be positive: {duration}")
        self.start = float(start)
        self.duration = float(duration)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlap_with(self, interval_start: float, interval_end: float) -> float:
        """Seconds of overlap with [interval_start, interval_end)."""
        return max(
            0.0, min(self.end, interval_end) - max(self.start, interval_start)
        )

    def __repr__(self) -> str:
        return f"AttackWindow(start={self.start}, duration={self.duration})"


def mix_flood_into_counts(
    background: CountTrace,
    flood: FloodSource,
    window: AttackWindow,
    rng: Optional[random.Random] = None,
    jitter: bool = False,
) -> CountTrace:
    """Superpose *flood* onto a count-level background trace.

    Only the SYN column changes; SYN/ACK counts pass through untouched
    (see module docstring).  The flood's per-period volume comes from
    :meth:`FloodSource.expected_packets`, so non-constant patterns
    (bursty, ramp, on/off) integrate correctly over partial periods.
    """
    local_rng = rng or random.Random(0)
    mixed: List[Tuple[int, int]] = []
    for index, (syn, synack) in enumerate(background.counts):
        period_start = index * background.period
        period_end = period_start + background.period
        overlap = window.overlap_with(period_start, period_end)
        extra = 0.0
        if overlap > 0:
            # Map the overlapping wall-clock span into attack-local time.
            attack_t0 = max(0.0, period_start - window.start)
            attack_t1 = min(window.duration, period_end - window.start)
            extra = flood.expected_packets(attack_t0, attack_t1)
        if jitter and extra > 0:
            extra = _poissonize(local_rng, extra)
        mixed.append((syn + int(round(extra)), synack))
    return CountTrace(
        metadata=background.metadata,
        period=background.period,
        counts=tuple(mixed),
    )


def mix_flood_into_packets(
    background: PacketTrace,
    flood: FloodSource,
    window: AttackWindow,
    rng: random.Random,
) -> PacketTrace:
    """Superpose a flood's packet stream onto a packet-level background.

    Flood packets are generated in attack-local time, shifted by the
    window start, and merged (stably, by timestamp) into the outbound
    stream.
    """
    flood_packets = [
        packet.at(packet.timestamp + window.start)
        for packet in flood.generate_packets(rng, window.duration)
        if packet.timestamp <= window.duration
    ]
    merged = sorted(
        list(background.outbound) + flood_packets,
        key=lambda packet: packet.timestamp,
    )
    return replace(background, outbound=tuple(merged))


def _poissonize(rng: random.Random, mean: float) -> int:
    """Poisson sample around *mean* (normal approximation above 500)."""
    import math

    if mean > 500.0:
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
