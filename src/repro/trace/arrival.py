"""Connection-arrival processes for synthetic background traffic.

Section 3.2 stresses that "there is no consensus on whether [TCP
connection arrivals] should be modeled as self-similar or Poisson"
[5, 7, 10, 13, 21, 25] — which is exactly why SYN-dog uses a
non-parametric test.  To honour that, the trace substrate offers *both*
families (plus a Markov-modulated compromise), and the experiment
harness can run every detection experiment under either model:

* :class:`PoissonArrivals` — homogeneous or time-of-day-modulated
  Poisson connection arrivals (the classical telephony-style model);
* :class:`ParetoOnOffArrivals` — a superposition of heavy-tailed ON/OFF
  sources, the standard construction that produces self-similar,
  long-range-dependent aggregate traffic (Paxson & Floyd [21]);
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process,
  a short-range-dependent bursty middle ground.

All processes generate *per-period connection counts* (the resolution
the detector actually consumes) and can also scatter arrival instants
inside each period for packet-level generation.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "ParetoOnOffArrivals",
    "MMPPArrivals",
    "diurnal_modulation",
    "flat_modulation",
]

RateModulation = Callable[[float], float]


def flat_modulation(_time: float) -> float:
    """No time-of-day effect: constant unit multiplier."""
    return 1.0


def diurnal_modulation(
    peak_time: float = 15.0 * 3600,
    amplitude: float = 0.3,
    period: float = 24.0 * 3600,
) -> RateModulation:
    """A smooth sinusoidal day/night rate multiplier.

    The paper's traces were taken at different times of day (14:00 LBL,
    12:39 Harvard, 14:36 Auckland); the multiplier lets long synthetic
    traces drift slowly the way real access links do ("slowly-varying on
    a large time scale", Section 3.1).
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must lie in [0,1): {amplitude}")

    def modulation(time: float) -> float:
        phase = 2.0 * math.pi * (time - peak_time) / period
        return 1.0 + amplitude * math.cos(phase)

    return modulation


class ArrivalProcess(abc.ABC):
    """Interface for connection-arrival generators.

    Implementations are deterministic given the :class:`random.Random`
    instance passed in, so every experiment is reproducible from a seed.
    """

    @abc.abstractmethod
    def counts(
        self, rng: random.Random, num_periods: int, period: float
    ) -> List[int]:
        """Sample the number of new connections in each of *num_periods*
        consecutive windows of *period* seconds."""

    def arrival_times(
        self, rng: random.Random, duration: float, period: float
    ) -> List[float]:
        """Sample individual arrival instants over [0, duration).

        Default implementation: sample per-period counts, then scatter
        that many arrivals uniformly inside each period — adequate for
        the 20 s observation windows the detector uses.
        """
        num_periods = int(math.ceil(duration / period))
        times: List[float] = []
        for index, count in enumerate(self.counts(rng, num_periods, period)):
            start = index * period
            for _ in range(count):
                instant = start + rng.random() * period
                if instant < duration:
                    times.append(instant)
        times.sort()
        return times


@dataclass
class PoissonArrivals(ArrivalProcess):
    """(Possibly modulated) Poisson connection arrivals.

    ``rate`` is mean connections/second; ``modulation`` multiplies it as
    a function of absolute time.
    """

    rate: float
    modulation: RateModulation = flat_modulation

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate cannot be negative: {self.rate}")

    def counts(
        self, rng: random.Random, num_periods: int, period: float
    ) -> List[int]:
        result: List[int] = []
        for index in range(num_periods):
            midpoint = (index + 0.5) * period
            mean = self.rate * self.modulation(midpoint) * period
            result.append(_poisson_sample(rng, mean))
        return result


@dataclass
class ParetoOnOffArrivals(ArrivalProcess):
    """Superposed Pareto ON/OFF sources — the canonical self-similar
    traffic construction.

    ``num_sources`` independent sources alternate between ON periods
    (emitting connections at ``on_rate``/s each) and silent OFF periods;
    both sojourn times are Pareto with shape ``alpha`` in (1, 2), which
    yields an aggregate with Hurst parameter H = (3 − alpha)/2 > 0.5,
    i.e. genuine long-range dependence.
    """

    num_sources: int
    on_rate: float
    mean_on: float = 10.0
    mean_off: float = 30.0
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.num_sources <= 0:
            raise ValueError(f"need at least one source: {self.num_sources}")
        if self.on_rate < 0:
            raise ValueError(f"on_rate cannot be negative: {self.on_rate}")
        if not 1.0 < self.alpha < 2.0:
            raise ValueError(
                f"alpha must lie in (1,2) for self-similarity: {self.alpha}"
            )
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ValueError("mean sojourn times must be positive")

    @property
    def mean_rate(self) -> float:
        """Long-run aggregate connection rate (connections/second)."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.num_sources * self.on_rate * duty

    @property
    def hurst(self) -> float:
        """Hurst parameter of the aggregate: H = (3 − alpha) / 2."""
        return (3.0 - self.alpha) / 2.0

    def _pareto_duration(self, rng: random.Random, mean: float) -> float:
        # Pareto with shape alpha and mean m has scale x_m = m(alpha-1)/alpha.
        scale = mean * (self.alpha - 1.0) / self.alpha
        return scale / (rng.random() ** (1.0 / self.alpha))

    def _on_overlap_per_period(
        self, rng: random.Random, num_periods: int, period: float
    ) -> List[float]:
        """Total ON-seconds falling inside each period, over all sources."""
        horizon = num_periods * period
        overlap = [0.0] * num_periods
        for _ in range(self.num_sources):
            time = 0.0
            # Random initial phase: start each source at a random point of
            # a cycle so the aggregate is stationary from t=0.
            on = rng.random() < self.mean_on / (self.mean_on + self.mean_off)
            # Burn a partial sojourn for the phase.
            first = self._pareto_duration(
                rng, self.mean_on if on else self.mean_off
            ) * rng.random()
            segment_end = first
            while time < horizon:
                if on:
                    _accumulate_overlap(overlap, time, min(segment_end, horizon), period)
                time = segment_end
                on = not on
                segment_end = time + self._pareto_duration(
                    rng, self.mean_on if on else self.mean_off
                )
        return overlap

    def counts(
        self, rng: random.Random, num_periods: int, period: float
    ) -> List[int]:
        overlaps = self._on_overlap_per_period(rng, num_periods, period)
        return [
            _poisson_sample(rng, self.on_rate * on_seconds)
            for on_seconds in overlaps
        ]


@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process sits in a *quiet* state (rate ``rate_low``) or a *burst*
    state (rate ``rate_high``), with exponential sojourns of means
    ``mean_quiet`` / ``mean_burst`` seconds.  Produces correlated bursts
    on the small time scale, matching Section 3.1's "bursty on a small
    time scale" characterization.
    """

    rate_low: float
    rate_high: float
    mean_quiet: float = 120.0
    mean_burst: float = 20.0

    def __post_init__(self) -> None:
        if self.rate_low < 0 or self.rate_high < 0:
            raise ValueError("rates cannot be negative")
        if self.rate_high < self.rate_low:
            raise ValueError("rate_high must be >= rate_low")
        if self.mean_quiet <= 0 or self.mean_burst <= 0:
            raise ValueError("mean sojourn times must be positive")

    @property
    def mean_rate(self) -> float:
        total = self.mean_quiet + self.mean_burst
        return (
            self.rate_low * self.mean_quiet + self.rate_high * self.mean_burst
        ) / total

    def counts(
        self, rng: random.Random, num_periods: int, period: float
    ) -> List[int]:
        horizon = num_periods * period
        # Build the state timeline, then integrate the rate per period.
        exposure = [0.0] * num_periods  # expected arrivals per period
        time = 0.0
        bursting = rng.random() < self.mean_burst / (self.mean_quiet + self.mean_burst)
        while time < horizon:
            sojourn = rng.expovariate(
                1.0 / (self.mean_burst if bursting else self.mean_quiet)
            )
            rate = self.rate_high if bursting else self.rate_low
            _accumulate_overlap(exposure, time, min(time + sojourn, horizon), period, rate)
            time += sojourn
            bursting = not bursting
        return [_poisson_sample(rng, mean) for mean in exposure]


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _accumulate_overlap(
    bins: List[float],
    start: float,
    end: float,
    period: float,
    weight: float = 1.0,
) -> None:
    """Add ``weight × overlap-seconds`` of [start, end) into per-period bins."""
    if end <= start:
        return
    first_bin = int(start // period)
    last_bin = min(int(end // period), len(bins) - 1)
    for index in range(first_bin, last_bin + 1):
        bin_start = index * period
        bin_end = bin_start + period
        overlap = min(end, bin_end) - max(start, bin_start)
        if overlap > 0:
            bins[index] += weight * overlap


def _poisson_sample(rng: random.Random, mean: float) -> int:
    """Sample Poisson(mean) using Knuth for small means and a normal
    approximation for large ones (exact enough at mean > 500 where the
    relative error is far below the traffic's own variability)."""
    if mean <= 0:
        return 0
    if mean > 500.0:
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
