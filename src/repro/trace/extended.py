"""Extended count traces carrying FIN observations.

The same research group's companion flood-detection design (the FDS of
Wang, Zhang & Shin's INFOCOM work) pairs SYNs with **FINs** instead of
SYN/ACKs: every normal connection is eventually torn down, so in steady
state the outgoing SYN rate matches the outgoing FIN rate (lagged by
the connection lifetime), while a flood's spoofed SYNs never produce
FINs.  The decisive operational advantage is robustness to **asymmetric
routing**: a client's SYN and its later FIN traverse the *same*
outbound path, whereas the answering SYN/ACK may return through a
different router entirely — in which case the SYN↔SYN/ACK pairing
breaks down at the installation point but SYN↔FIN does not.

This module extends the count-level substrate with a third column:
``(syn, synack, fin)`` per observation period, where the FIN column
counts outgoing teardown initiations (one per completed local
connection, emitted after a lognormal connection lifetime).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from .events import CountTrace, TraceMetadata
from .profiles import SiteProfile
from .synthetic import DEFAULT_OBSERVATION_PERIOD

__all__ = [
    "ExtendedCountTrace",
    "ConnectionLifetimeModel",
    "generate_extended_count_trace",
    "mix_flood_into_extended",
]


@dataclass(frozen=True)
class ConnectionLifetimeModel:
    """How long connections live before the client closes them.

    Lognormal with the given median and shape — matching the
    heavy-tailed connection-duration distributions reported for
    year-2000 web traffic (most connections short, a long tail of
    persistent ones).
    """

    median_seconds: float = 15.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.median_seconds <= 0:
            raise ValueError(
                f"median lifetime must be positive: {self.median_seconds}"
            )
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive: {self.sigma}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median_seconds), self.sigma)


@dataclass(frozen=True)
class ExtendedCountTrace:
    """Per-period (SYN, SYN/ACK, FIN) counts."""

    metadata: TraceMetadata
    period: float
    counts: Tuple[Tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive: {self.period}")
        for syn, synack, fin in self.counts:
            if syn < 0 or synack < 0 or fin < 0:
                raise ValueError("counts cannot be negative")

    @property
    def num_periods(self) -> int:
        return len(self.counts)

    @property
    def syn_counts(self) -> List[int]:
        return [syn for syn, _, _ in self.counts]

    @property
    def synack_counts(self) -> List[int]:
        return [synack for _, synack, _ in self.counts]

    @property
    def fin_counts(self) -> List[int]:
        return [fin for _, _, fin in self.counts]

    def syn_synack_pairs(self) -> CountTrace:
        """The classic SYN-dog view."""
        return CountTrace(
            metadata=self.metadata,
            period=self.period,
            counts=tuple((syn, synack) for syn, synack, _ in self.counts),
        )

    def syn_fin_pairs(self) -> CountTrace:
        """The SYN–FIN pairing view (FINs in the SYN/ACK slot)."""
        return CountTrace(
            metadata=self.metadata,
            period=self.period,
            counts=tuple((syn, fin) for syn, _, fin in self.counts),
        )

    def with_synack_loss(self, keep_fraction: float, seed: int = 0) -> "ExtendedCountTrace":
        """Model asymmetric routing: only *keep_fraction* of the
        answering SYN/ACKs return through this router (1.0 = symmetric,
        0.0 = fully asymmetric).  SYNs and FINs — both outbound — are
        untouched."""
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep fraction must lie in [0,1]: {keep_fraction}")
        rng = random.Random(seed)
        counts = []
        for syn, synack, fin in self.counts:
            kept = sum(1 for _ in range(synack) if rng.random() < keep_fraction)
            counts.append((syn, kept, fin))
        return replace(self, counts=tuple(counts))

    def __len__(self) -> int:
        return len(self.counts)


def generate_extended_count_trace(
    profile: SiteProfile,
    seed: int,
    period: float = DEFAULT_OBSERVATION_PERIOD,
    duration: Optional[float] = None,
    lifetimes: ConnectionLifetimeModel = ConnectionLifetimeModel(),
    warm_history: float = 600.0,
) -> ExtendedCountTrace:
    """Synthesize (SYN, SYN/ACK, FIN) counts for *profile*.

    ``warm_history`` seconds of traffic are simulated *before* t = 0 so
    the FIN stream is already in steady state when the trace begins
    (otherwise the first periods show a spurious SYN-over-FIN surplus
    while the first connections are still alive).
    """
    rng = random.Random(seed)
    total = profile.duration if duration is None else duration
    if total <= 0:
        raise ValueError(f"duration must be positive: {total}")
    num_periods = int(round(total / period))
    if num_periods <= 0:
        raise ValueError(f"duration {total}s shorter than one period ({period}s)")
    warm_periods = int(math.ceil(warm_history / period))
    arrivals = profile.make_arrivals()
    connection_counts = arrivals.counts(rng, num_periods + warm_periods, period)
    handshake_counts = profile.handshake.period_counts(
        rng, connection_counts, period
    )

    fins = [0] * (num_periods + warm_periods)
    for index, (_syns, synacks) in enumerate(handshake_counts):
        # Each answered (established) connection eventually closes; the
        # client's FIN crosses the router one lifetime later.
        period_start = index * period
        for _ in range(synacks):
            open_at = period_start + rng.random() * period
            close_at = open_at + lifetimes.sample(rng)
            fin_bin = int(close_at // period)
            if fin_bin < len(fins):
                fins[fin_bin] += 1

    counts = tuple(
        (syns, synacks, fin)
        for (syns, synacks), fin in list(zip(handshake_counts, fins))[warm_periods:]
    )
    metadata = TraceMetadata(
        name=profile.name,
        duration=num_periods * period,
        bidirectional=profile.bidirectional,
        description=profile.description,
        site=profile.name,
        seed=seed,
    )
    return ExtendedCountTrace(metadata=metadata, period=period, counts=counts)


def mix_flood_into_extended(
    background: ExtendedCountTrace,
    flood,
    window,
) -> ExtendedCountTrace:
    """Superpose a flood: only the SYN column rises (spoofed requests
    produce neither SYN/ACKs through this router nor — ever — FINs)."""
    from .mixer import mix_flood_into_counts

    pair_view = background.syn_synack_pairs()
    mixed_pairs = mix_flood_into_counts(pair_view, flood, window)
    counts = tuple(
        (mixed_syn, synack, fin)
        for (mixed_syn, _), (_, synack, fin) in zip(
            mixed_pairs.counts, background.counts
        )
    )
    return replace(background, counts=counts)
