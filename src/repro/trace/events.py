"""Trace containers.

Two resolutions, matching the two ingestion styles of
:class:`~repro.core.syndog.SynDog`:

* :class:`PacketTrace` — full packet streams per direction, for
  router/pcap integration and the packet-level examples;
* :class:`CountTrace` — per-observation-period (SYN, SYN/ACK) counts,
  the resolution the detector consumes and the fast path for
  Monte-Carlo experiments (the paper's own simulations work at this
  granularity: "the total number of outgoing SYNs ... are reported to
  the SYN-dog's CUSUM algorithm", Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..packet.packet import Packet

__all__ = ["CountTrace", "PacketTrace", "TraceMetadata"]


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive attributes mirroring the paper's Table 1."""

    name: str
    duration: float                 # seconds
    bidirectional: bool             # LBL/Harvard: True; UNC/Auckland: False
    description: str = ""
    site: str = ""
    seed: Optional[int] = None

    @property
    def traffic_type(self) -> str:
        """Table 1's "Traffic type" column."""
        return "Bi-directional" if self.bidirectional else "Uni-directional"


@dataclass(frozen=True)
class CountTrace:
    """Per-period (SYN, SYN/ACK) counts for one monitored link."""

    metadata: TraceMetadata
    period: float
    counts: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive: {self.period}")
        for syn, synack in self.counts:
            if syn < 0 or synack < 0:
                raise ValueError("counts cannot be negative")

    @property
    def num_periods(self) -> int:
        return len(self.counts)

    @property
    def syn_counts(self) -> List[int]:
        return [syn for syn, _ in self.counts]

    @property
    def synack_counts(self) -> List[int]:
        return [synack for _, synack in self.counts]

    @property
    def differences(self) -> List[int]:
        """Δ_n = SYN(n) − SYN/ACK(n) per period."""
        return [syn - synack for syn, synack in self.counts]

    @property
    def mean_synack(self) -> float:
        """Empirical K̄ over the whole trace."""
        if not self.counts:
            return 0.0
        return sum(self.synack_counts) / len(self.counts)

    @property
    def duration(self) -> float:
        return self.num_periods * self.period

    def times(self) -> List[float]:
        """Period end times (the instants at which reports are emitted)."""
        return [(index + 1) * self.period for index in range(self.num_periods)]

    def slice(self, start_period: int, end_period: int) -> "CountTrace":
        """A sub-trace covering [start_period, end_period)."""
        return replace(self, counts=self.counts[start_period:end_period])

    def rebinned(self, factor: int) -> "CountTrace":
        """Merge *factor* consecutive periods into one (used by the
        observation-period ablation and the per-minute figures)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor}")
        merged: List[Tuple[int, int]] = []
        for start in range(0, len(self.counts) - factor + 1, factor):
            window = self.counts[start : start + factor]
            merged.append(
                (
                    sum(syn for syn, _ in window),
                    sum(synack for _, synack in window),
                )
            )
        return replace(
            self, period=self.period * factor, counts=tuple(merged)
        )

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.counts)

    def __len__(self) -> int:
        return len(self.counts)


@dataclass(frozen=True)
class PacketTrace:
    """Directional packet streams at a leaf router tap.

    ``outbound`` flows Intranet → Internet (where SYNs from local
    clients travel); ``inbound`` flows Internet → Intranet (where the
    answering SYN/ACKs return).  Both must be time-sorted.
    """

    metadata: TraceMetadata
    outbound: Tuple[Packet, ...]
    inbound: Tuple[Packet, ...]

    def __post_init__(self) -> None:
        for name, stream in (("outbound", self.outbound), ("inbound", self.inbound)):
            for earlier, later in zip(stream, stream[1:]):
                if later.timestamp < earlier.timestamp:
                    raise ValueError(f"{name} stream is not time-sorted")

    @property
    def num_packets(self) -> int:
        return len(self.outbound) + len(self.inbound)

    def merged(self) -> List[Packet]:
        """All packets in global timestamp order."""
        return sorted(
            list(self.outbound) + list(self.inbound),
            key=lambda packet: packet.timestamp,
        )

    def to_counts(self, period: float) -> CountTrace:
        """Aggregate to per-period SYN / SYN-ACK counts.

        Outgoing SYNs are counted on the outbound stream and incoming
        SYN/ACKs on the inbound stream, exactly as the two sniffers
        would.
        """
        num_periods = max(1, int(-(-self.metadata.duration // period)))
        syns = [0] * num_periods
        synacks = [0] * num_periods
        for packet in self.outbound:
            index = int(packet.timestamp // period)
            if 0 <= index < num_periods and packet.is_syn:
                syns[index] += 1
        for packet in self.inbound:
            index = int(packet.timestamp // period)
            if 0 <= index < num_periods and packet.is_syn_ack:
                synacks[index] += 1
        return CountTrace(
            metadata=self.metadata,
            period=period,
            counts=tuple(zip(syns, synacks)),
        )
