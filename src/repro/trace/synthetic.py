"""Synthetic trace generation from calibrated site profiles.

Two resolutions:

* :func:`generate_count_trace` — per-period (SYN, SYN/ACK) counts, the
  fast path used by the Monte-Carlo detection experiments (Tables 2–3
  need hundreds of trials);
* :func:`generate_packet_trace` — full timestamped packet streams with
  realistic addresses/ports/MACs, used by the router integration,
  pcap round-trips and the packet-level examples.

Both draw from the *same* arrival + handshake models, so the packet
path aggregates to the count path statistically; a unit test
cross-validates the two.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..packet.addresses import IPv4Address, IPv4Network, MACAddress
from ..packet.packet import Packet, make_syn, make_syn_ack
from .events import CountTrace, PacketTrace, TraceMetadata
from .handshake import HandshakeModel
from .profiles import SiteProfile

__all__ = [
    "generate_count_trace",
    "generate_packet_trace",
    "AddressPlan",
    "DEFAULT_OBSERVATION_PERIOD",
]

DEFAULT_OBSERVATION_PERIOD = 20.0

#: Common well-known destination ports, weighted roughly like year-2000
#: wide-area traffic (HTTP dominant; Smith et al. [25]).
_PORT_CHOICES: Tuple[int, ...] = (80, 80, 80, 80, 80, 443, 25, 21, 110, 23)


class AddressPlan:
    """Deterministic address assignment for packet-level generation.

    Local clients live inside ``stub_network`` and carry stable MAC
    addresses (needed later by the MAC-based source localization);
    remote servers are scattered over the public address space.
    """

    def __init__(
        self,
        rng: random.Random,
        stub_network: IPv4Network = IPv4Network.parse("152.2.0.0/16"),
        num_clients: int = 200,
        num_servers: int = 400,
    ) -> None:
        if num_clients <= 0 or num_servers <= 0:
            raise ValueError("need at least one client and one server")
        self.stub_network = stub_network
        self.clients: List[Tuple[IPv4Address, MACAddress]] = []
        seen = set()
        while len(self.clients) < num_clients:
            address = stub_network.random_host(rng)
            if address in seen:
                continue
            seen.add(address)
            mac = MACAddress((0x02 << 40) | rng.getrandbits(32))
            self.clients.append((address, mac))
        self.servers: List[IPv4Address] = []
        while len(self.servers) < num_servers:
            # Public, non-bogon space: 64.0.0.0 – 203.255.255.255-ish.
            candidate = IPv4Address(rng.randrange(0x40000000, 0xC0000000))
            if candidate not in stub_network:
                self.servers.append(candidate)
        self.router_mac = MACAddress.parse("02:00:5e:00:00:01")

    def pick_client(self, rng: random.Random) -> Tuple[IPv4Address, MACAddress]:
        return rng.choice(self.clients)

    def pick_server(self, rng: random.Random) -> IPv4Address:
        return rng.choice(self.servers)


def generate_count_trace(
    profile: SiteProfile,
    seed: int,
    period: float = DEFAULT_OBSERVATION_PERIOD,
    duration: Optional[float] = None,
) -> CountTrace:
    """Synthesize per-period (SYN, SYN/ACK) counts for *profile*.

    Deterministic in *seed*.  *duration* overrides the profile's Table 1
    length when experiments need shorter (unit tests) or longer
    (false-alarm-time estimation) runs.
    """
    rng = random.Random(seed)
    total = profile.duration if duration is None else duration
    if total <= 0:
        raise ValueError(f"duration must be positive: {total}")
    num_periods = int(round(total / period))
    if num_periods <= 0:
        raise ValueError(
            f"duration {total}s shorter than one period ({period}s)"
        )
    arrivals = profile.make_arrivals()
    connection_counts = arrivals.counts(rng, num_periods, period)
    counts = profile.handshake.period_counts(rng, connection_counts, period)
    metadata = TraceMetadata(
        name=profile.name,
        duration=num_periods * period,
        bidirectional=profile.bidirectional,
        description=profile.description,
        site=profile.name,
        seed=seed,
    )
    return CountTrace(metadata=metadata, period=period, counts=tuple(counts))


def generate_packet_trace(
    profile: SiteProfile,
    seed: int,
    duration: Optional[float] = None,
    address_plan: Optional[AddressPlan] = None,
) -> PacketTrace:
    """Synthesize full packet streams for *profile*.

    Each simulated connection contributes its SYN(s) to the outbound
    stream and, if answered, a SYN/ACK to the inbound stream.  Ephemeral
    source ports, weighted destination ports and per-client MACs are
    assigned so the downstream classifier, router, and localization
    machinery all see realistic headers.
    """
    rng = random.Random(seed)
    total = profile.duration if duration is None else duration
    if total <= 0:
        raise ValueError(f"duration must be positive: {total}")
    plan = address_plan or AddressPlan(rng)
    arrivals = profile.make_arrivals()
    arrival_times = arrivals.arrival_times(rng, total, DEFAULT_OBSERVATION_PERIOD)
    events = profile.handshake.simulate_handshakes(rng, arrival_times, total)

    outbound: List[Packet] = []
    inbound: List[Packet] = []
    for event in events:
        client_ip, client_mac = plan.pick_client(rng)
        server_ip = plan.pick_server(rng)
        client_port = rng.randrange(1024, 65536)
        server_port = rng.choice(_PORT_CHOICES)
        isn = rng.getrandbits(32)
        for syn_time in event.syn_times:
            outbound.append(
                make_syn(
                    timestamp=syn_time,
                    src=client_ip,
                    dst=server_ip,
                    src_port=client_port,
                    dst_port=server_port,
                    seq=isn,
                    src_mac=client_mac,
                    dst_mac=plan.router_mac,
                )
            )
        if event.synack_time is not None:
            inbound.append(
                make_syn_ack(
                    timestamp=event.synack_time,
                    src=server_ip,
                    dst=client_ip,
                    src_port=server_port,
                    dst_port=client_port,
                    seq=rng.getrandbits(32),
                    ack=(isn + 1) & 0xFFFFFFFF,
                    src_mac=plan.router_mac,
                    dst_mac=client_mac,
                )
            )
    outbound.sort(key=lambda packet: packet.timestamp)
    inbound.sort(key=lambda packet: packet.timestamp)
    metadata = TraceMetadata(
        name=profile.name,
        duration=total,
        bidirectional=profile.bidirectional,
        description=profile.description,
        site=profile.name,
        seed=seed,
    )
    return PacketTrace(
        metadata=metadata, outbound=tuple(outbound), inbound=tuple(inbound)
    )
