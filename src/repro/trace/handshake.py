"""The SYN ↔ SYN/ACK pairing model (Sections 1 and 3.1).

Under normal conditions every outgoing SYN is answered by an incoming
SYN/ACK within one RTT; the paper names exactly two sources of
discrepancy:

* overloaded servers dropping SYNs without responding, and
* congestion on the forwarding path dropping SYNs before they arrive.

This module turns connection-arrival instants into the SYN and SYN/ACK
*events* a leaf router would observe, modelling both discrepancy
sources plus client SYN retransmission (lost SYNs are retried after the
classical 3 s initial RTO, which generates extra SYNs with no extra
SYN/ACKs — the same signed direction as the flood signal, so it matters
for false-alarm fidelity) and transient *congestion episodes* during
which the drop probability is elevated.  The episodes are what produce
the isolated y_n spikes the paper shows in Figure 5 (max ≈ 0.05 at
Harvard, ≈ 0.26 at Auckland).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "HandshakeModel",
    "HandshakeEvent",
    "CongestionEpisodeModel",
    "RTT_DEFAULT_MEAN",
]

RTT_DEFAULT_MEAN = 0.120  # seconds; typical wide-area RTT circa 2000

#: Classical BSD initial retransmission timeout for an unanswered SYN.
SYN_RTO = 3.0


@dataclass(frozen=True)
class HandshakeEvent:
    """One handshake attempt as seen at the leaf router.

    ``syn_times`` holds the instants of the initial SYN and any
    retransmissions that crossed the router; ``synack_time`` is the
    instant the SYN/ACK came back in, or None when the request was never
    answered (dropped en route or at an overloaded server).
    """

    syn_times: Tuple[float, ...]
    synack_time: Optional[float]

    @property
    def answered(self) -> bool:
        return self.synack_time is not None

    @property
    def num_syns(self) -> int:
        return len(self.syn_times)


@dataclass
class CongestionEpisodeModel:
    """Transient congestion on the forwarding path.

    Episodes begin as a Poisson process with mean inter-arrival
    ``mean_interval`` seconds, last Exp(``mean_duration``), and raise
    the SYN drop probability to ``drop_probability`` for their duration.
    """

    mean_interval: float = 600.0
    mean_duration: float = 15.0
    drop_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_interval <= 0 or self.mean_duration <= 0:
            raise ValueError("episode interval and duration must be positive")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop probability must lie in [0,1]: {self.drop_probability}"
            )

    def sample_episodes(
        self, rng: random.Random, duration: float
    ) -> List[Tuple[float, float]]:
        """Sample [(start, end), ...] episode intervals over [0, duration)."""
        episodes: List[Tuple[float, float]] = []
        time = rng.expovariate(1.0 / self.mean_interval)
        while time < duration:
            length = rng.expovariate(1.0 / self.mean_duration)
            episodes.append((time, min(time + length, duration)))
            time += length + rng.expovariate(1.0 / self.mean_interval)
        return episodes


@dataclass
class HandshakeModel:
    """Probabilistic SYN → SYN/ACK transformation.

    Parameters
    ----------
    base_drop_probability:
        Baseline probability that a given SYN transmission goes
        unanswered (path loss + server overload combined) outside
        congestion episodes.
    rtt_mean, rtt_sigma:
        SYN/ACK latency is lognormal with this underlying mean/sigma —
        always well under the 20 s observation period, so pairing rarely
        straddles a period boundary (the residual straddling is the
        honest edge effect real routers see too).
    max_retransmissions:
        How many times the client retries an unanswered SYN (BSD-style
        two retries by default, at 3 s and 9 s).
    congestion:
        Optional transient-congestion model layered on top.
    """

    base_drop_probability: float = 0.015
    rtt_mean: float = RTT_DEFAULT_MEAN
    rtt_sigma: float = 0.5
    max_retransmissions: int = 2
    congestion: Optional[CongestionEpisodeModel] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_drop_probability <= 1.0:
            raise ValueError(
                f"drop probability must lie in [0,1]: {self.base_drop_probability}"
            )
        if self.rtt_mean <= 0:
            raise ValueError(f"RTT mean must be positive: {self.rtt_mean}")
        if self.max_retransmissions < 0:
            raise ValueError(
                f"retransmission count cannot be negative: {self.max_retransmissions}"
            )

    # ------------------------------------------------------------------
    # Event-level API (packet-accurate generation)
    # ------------------------------------------------------------------
    def sample_rtt(self, rng: random.Random) -> float:
        mu = math.log(self.rtt_mean) - self.rtt_sigma ** 2 / 2.0
        return rng.lognormvariate(mu, self.rtt_sigma)

    def _drop_probability_at(
        self, time: float, episodes: Sequence[Tuple[float, float]]
    ) -> float:
        for start, end in episodes:
            if start <= time < end:
                assert self.congestion is not None
                return self.congestion.drop_probability
        return self.base_drop_probability

    def simulate_handshakes(
        self,
        rng: random.Random,
        arrival_times: Sequence[float],
        duration: float,
    ) -> List[HandshakeEvent]:
        """Run every connection attempt through the loss/retry model."""
        episodes = (
            self.congestion.sample_episodes(rng, duration)
            if self.congestion is not None
            else []
        )
        events: List[HandshakeEvent] = []
        for arrival in arrival_times:
            syn_times: List[float] = []
            synack_time: Optional[float] = None
            send_time = arrival
            for attempt in range(1 + self.max_retransmissions):
                if send_time >= duration:
                    break
                syn_times.append(send_time)
                drop_probability = self._drop_probability_at(send_time, episodes)
                if rng.random() >= drop_probability:
                    response = send_time + self.sample_rtt(rng)
                    if response < duration:
                        synack_time = response
                    break
                # Unanswered: retry after exponentially backed-off RTO.
                send_time += SYN_RTO * (2 ** attempt)
            if syn_times:
                events.append(
                    HandshakeEvent(
                        syn_times=tuple(syn_times), synack_time=synack_time
                    )
                )
        return events

    # ------------------------------------------------------------------
    # Count-level API (fast Monte-Carlo path)
    # ------------------------------------------------------------------
    def period_counts(
        self,
        rng: random.Random,
        connection_counts: Sequence[int],
        period: float,
    ) -> List[Tuple[int, int]]:
        """Directly sample (SYN, SYN/ACK) counts per period from
        per-period connection counts, without materializing packets.

        Approximations relative to the event-level path: retransmissions
        and SYN/ACKs are booked in the period of the original arrival
        (RTT and RTO are small against t0 = 20 s).  Statistically this
        preserves exactly what the detector consumes — the unit tests
        cross-validate the two paths' per-period means.
        """
        duration = len(connection_counts) * period
        episodes = (
            self.congestion.sample_episodes(rng, duration)
            if self.congestion is not None
            else []
        )
        results: List[Tuple[int, int]] = []
        for index, connections in enumerate(connection_counts):
            midpoint = (index + 0.5) * period
            drop = self._drop_probability_at(midpoint, episodes)
            syns = 0
            synacks = 0
            for _ in range(connections):
                attempts = 0
                answered = False
                for _attempt in range(1 + self.max_retransmissions):
                    attempts += 1
                    if rng.random() >= drop:
                        answered = True
                        break
                syns += attempts
                if answered:
                    synacks += 1
            results.append((syns, synacks))
        return results

    def expected_syns_per_connection(self, drop_probability: float = None) -> float:
        """Mean SYN transmissions per connection attempt under the given
        (or baseline) drop probability."""
        p = (
            self.base_drop_probability
            if drop_probability is None
            else drop_probability
        )
        # 1 + p + p² + ... up to max_retransmissions extra attempts.
        return sum(p ** attempt for attempt in range(1 + self.max_retransmissions))

    def expected_answer_probability(self, drop_probability: float = None) -> float:
        """Probability a connection is eventually answered."""
        p = (
            self.base_drop_probability
            if drop_probability is None
            else drop_probability
        )
        return 1.0 - p ** (1 + self.max_retransmissions)
