"""Trace persistence in simple text formats.

Count traces are the experiment currency, so they get a first-class
CSV-ish format (one period per line) plus a JSON header carrying the
Table 1 metadata.  Packet traces persist through :mod:`repro.pcap`; a
JSONL convenience codec is provided here for debugging and diffing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.packet import Packet, make_syn, make_syn_ack
from .events import CountTrace, PacketTrace, TraceMetadata

__all__ = [
    "save_count_trace",
    "load_count_trace",
    "save_packet_trace_jsonl",
    "load_packet_trace_jsonl",
]

_FORMAT_VERSION = 1


def save_count_trace(trace: CountTrace, path: Union[str, Path]) -> None:
    """Write a count trace: a ``#``-prefixed JSON header line, then one
    ``period_index,syn,synack`` line per observation period."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": trace.metadata.name,
        "duration": trace.metadata.duration,
        "bidirectional": trace.metadata.bidirectional,
        "description": trace.metadata.description,
        "site": trace.metadata.site,
        "seed": trace.metadata.seed,
        "period": trace.period,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# " + json.dumps(header) + "\n")
        handle.write("# period_index,syn,synack\n")
        for index, (syn, synack) in enumerate(trace.counts):
            handle.write(f"{index},{syn},{synack}\n")


def load_count_trace(path: Union[str, Path]) -> CountTrace:
    """Read a count trace written by :func:`save_count_trace`."""
    path = Path(path)
    header = None
    counts: List[Tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("#").strip()
                if header is None and body.startswith("{"):
                    header = json.loads(body)
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise ValueError(f"malformed count line: {line!r}")
            _index, syn, synack = (int(part) for part in parts)
            counts.append((syn, synack))
    if header is None:
        raise ValueError(f"{path} has no JSON header line")
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version: {header.get('format_version')}"
        )
    metadata = TraceMetadata(
        name=header["name"],
        duration=header["duration"],
        bidirectional=header["bidirectional"],
        description=header.get("description", ""),
        site=header.get("site", ""),
        seed=header.get("seed"),
    )
    return CountTrace(metadata=metadata, period=header["period"], counts=tuple(counts))


def _packet_to_record(packet: Packet, direction: str) -> dict:
    segment = packet.tcp
    record = {
        "t": packet.timestamp,
        "dir": direction,
        "src": str(packet.src_ip),
        "dst": str(packet.dst_ip),
        "smac": str(packet.src_mac),
        "dmac": str(packet.dst_mac),
    }
    if segment is not None:
        record.update(
            sport=segment.src_port,
            dport=segment.dst_port,
            seq=segment.seq,
            ack=segment.ack,
            flags=int(segment.flags),
        )
    return record


def save_packet_trace_jsonl(trace: PacketTrace, path: Union[str, Path]) -> None:
    """Write a packet trace as JSONL: header record first, then one
    record per packet (TCP fields only; the wire-accurate format is
    pcap)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format_version": _FORMAT_VERSION,
            "name": trace.metadata.name,
            "duration": trace.metadata.duration,
            "bidirectional": trace.metadata.bidirectional,
            "description": trace.metadata.description,
            "site": trace.metadata.site,
            "seed": trace.metadata.seed,
        }
        handle.write(json.dumps({"header": header}) + "\n")
        for direction, stream in (("out", trace.outbound), ("in", trace.inbound)):
            for packet in stream:
                handle.write(json.dumps(_packet_to_record(packet, direction)) + "\n")


def load_packet_trace_jsonl(path: Union[str, Path]) -> PacketTrace:
    """Read a JSONL packet trace written by :func:`save_packet_trace_jsonl`.

    Only SYN and SYN/ACK records are reconstructed as typed packets
    (they are the only kinds the generators emit); anything else raises.
    """
    path = Path(path)
    header = None
    outbound: List[Packet] = []
    inbound: List[Packet] = []
    from ..packet.tcp import TCPFlags

    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "header" in record:
                header = record["header"]
                continue
            flags = TCPFlags(record["flags"])
            maker = (
                make_syn_ack
                if (flags & TCPFlags.SYN and flags & TCPFlags.ACK)
                else make_syn
            )
            if not flags & TCPFlags.SYN:
                raise ValueError(f"unsupported packet record: {record}")
            packet = maker(
                timestamp=record["t"],
                src=record["src"],
                dst=record["dst"],
                src_port=record["sport"],
                dst_port=record["dport"],
                seq=record["seq"],
                src_mac=MACAddress.parse(record["smac"]),
                dst_mac=MACAddress.parse(record["dmac"]),
                **({"ack": record["ack"]} if maker is make_syn_ack else {}),
            )
            if record["dir"] == "out":
                outbound.append(packet)
            else:
                inbound.append(packet)
    if header is None:
        raise ValueError(f"{path} has no header record")
    metadata = TraceMetadata(
        name=header["name"],
        duration=header["duration"],
        bidirectional=header["bidirectional"],
        description=header.get("description", ""),
        site=header.get("site", ""),
        seed=header.get("seed"),
    )
    return PacketTrace(
        metadata=metadata,
        outbound=tuple(sorted(outbound, key=lambda p: p.timestamp)),
        inbound=tuple(sorted(inbound, key=lambda p: p.timestamp)),
    )
