"""Calibrated site profiles for the four trace sets of Table 1.

The paper's traces (LBL 1994, Harvard 1997, UNC 2000, Auckland 2000)
are not redistributable, so each site is replaced by a synthetic
profile calibrated against every quantitative anchor the paper gives:

========  ========  ==============  =======================  ==================
Site      Duration  Traffic type    SYN/ACK volume anchor     Normal-y_n anchor
========  ========  ==============  =======================  ==================
LBL       1 hour    bi-directional  5–50 SYNs/min (Fig 3a)    (not plotted)
Harvard   ½ hour    bi-directional  100–700 SYNs/min (Fig 3b) max spike ≈ 0.05
UNC       ½ hour    uni-directional K̄ ≈ 2114/period, so       small isolated
                                    f_min = 37 SYN/s (Eq. 8)  spikes (Fig 5b)
Auckland  3 hours   uni-directional K̄ = 100/period, so        max spike ≈ 0.26
                                    f_min = 1.75 SYN/s        (Fig 5c)
========  ========  ==============  =======================  ==================

The K̄ anchors are derived by inverting Eq. 8
(K̄ = f_min · t0 / a with a = 0.35, t0 = 20 s, c ≈ 0) from the
detection floors the paper reports (37 and 1.75 SYN/s).  Burstiness
uses superposed Pareto ON/OFF sources (self-similar, Hurst 0.75) by
default; congestion-episode severity is tuned per site to land the
normal-operation CUSUM spikes in the paper's bands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .arrival import (
    ArrivalProcess,
    MMPPArrivals,
    ParetoOnOffArrivals,
    PoissonArrivals,
)
from .handshake import CongestionEpisodeModel, HandshakeModel

__all__ = [
    "SiteProfile",
    "LBL",
    "HARVARD",
    "UNC",
    "AUCKLAND",
    "SITE_PROFILES",
    "get_profile",
]

ArrivalFactory = Callable[[], ArrivalProcess]


@dataclass(frozen=True)
class SiteProfile:
    """Everything needed to synthesize one site's background traffic."""

    name: str
    duration: float             #: trace length, seconds (Table 1)
    bidirectional: bool         #: Table 1 traffic type
    connection_rate: float      #: mean new connections / second
    arrival_factory: ArrivalFactory
    handshake: HandshakeModel
    description: str = ""
    #: mean SYN/ACKs per 20 s observation period implied by the paper
    k_bar_target: Optional[float] = None
    #: the paper's reported Eq. 8 floor at this site (SYN/s), if any
    f_min_paper: Optional[float] = None

    def make_arrivals(self) -> ArrivalProcess:
        """A fresh arrival-process instance (factories keep profiles
        immutable and safely shareable across threads/trials)."""
        return self.arrival_factory()

    def expected_k_bar(self, period: float = 20.0) -> float:
        """Analytic per-period SYN/ACK volume for this profile."""
        answered = self.handshake.expected_answer_probability()
        return self.connection_rate * answered * period


def _lbl_arrivals() -> ArrivalProcess:
    # ~0.5 connections/s: 12 sources × 0.125/s × duty 1/3.
    return ParetoOnOffArrivals(
        num_sources=12, on_rate=0.125, mean_on=10.0, mean_off=20.0, alpha=1.5
    )


def _harvard_arrivals() -> ArrivalProcess:
    # ~6.7 connections/s: 80 sources × 0.25/s × duty 1/3.
    return ParetoOnOffArrivals(
        num_sources=80, on_rate=0.25, mean_on=10.0, mean_off=20.0, alpha=1.5
    )


def _unc_arrivals() -> ArrivalProcess:
    # ~94.7 connections/s: 355 sources × 0.8/s × duty 1/3 — a large
    # campus (35,000+ users, Section 4.2.3) on an OC-12.  Sized so the
    # per-period SYN/ACK volume K̄ ≈ 1922, which reproduces the paper's
    # Table 2 detection delays (e.g. 13.25 periods at f_i = 40 SYN/s).
    return ParetoOnOffArrivals(
        num_sources=355, on_rate=0.8, mean_on=10.0, mean_off=20.0, alpha=1.5
    )


def _auckland_arrivals() -> ArrivalProcess:
    # ~4.25 connections/s: 51 sources × 0.25/s × duty 1/3 — a medium
    # university access link.  Sized so K̄ ≈ 85/period, which reproduces
    # the paper's Table 3 delays (12.95 periods at f_i = 1.75 SYN/s).
    return ParetoOnOffArrivals(
        num_sources=51, on_rate=0.25, mean_on=10.0, mean_off=20.0, alpha=1.5
    )


LBL = SiteProfile(
    name="LBL",
    duration=3600.0,
    bidirectional=True,
    connection_rate=0.5,
    arrival_factory=_lbl_arrivals,
    handshake=HandshakeModel(
        base_drop_probability=0.015,
        congestion=CongestionEpisodeModel(
            mean_interval=900.0, mean_duration=8.0, drop_probability=0.20
        ),
    ),
    description=(
        "Lawrence Berkeley Laboratory Internet access point, one hour of "
        "all wide-area traffic, Friday Jan 21 1994 14:00-15:00"
    ),
)

HARVARD = SiteProfile(
    name="Harvard",
    duration=1800.0,
    bidirectional=True,
    connection_rate=6.7,
    arrival_factory=_harvard_arrivals,
    handshake=HandshakeModel(
        base_drop_probability=0.015,
        congestion=CongestionEpisodeModel(
            mean_interval=500.0, mean_duration=6.0, drop_probability=0.30
        ),
    ),
    description=(
        "10 Mbps Ethernet connecting Harvard's main campus to the "
        "Internet, half hour from 12:39 EST, March 13 1997"
    ),
    k_bar_target=132.0,
)

UNC = SiteProfile(
    name="UNC",
    duration=1800.0,
    bidirectional=False,
    connection_rate=94.7,
    arrival_factory=_unc_arrivals,
    handshake=HandshakeModel(
        base_drop_probability=0.010,
        congestion=CongestionEpisodeModel(
            mean_interval=700.0, mean_duration=6.0, drop_probability=0.35
        ),
    ),
    description=(
        "OC-12 (622 Mbps) link connecting the UNC Chapel Hill campus to "
        "the Internet, half hour, September 27 2000"
    ),
    k_bar_target=1922.0,
    f_min_paper=37.0,
)

AUCKLAND = SiteProfile(
    name="Auckland",
    duration=10800.0,
    bidirectional=False,
    connection_rate=4.25,
    arrival_factory=_auckland_arrivals,
    handshake=HandshakeModel(
        base_drop_probability=0.015,
        congestion=CongestionEpisodeModel(
            mean_interval=1800.0, mean_duration=8.0, drop_probability=0.30
        ),
    ),
    description=(
        "Internet access link of the University of Auckland, three hours "
        "from 14:36, Thursday December 5 2000"
    ),
    k_bar_target=85.0,
    f_min_paper=1.75,
)

SITE_PROFILES: Dict[str, SiteProfile] = {
    profile.name.lower(): profile
    for profile in (LBL, HARVARD, UNC, AUCKLAND)
}


def get_profile(name: str) -> SiteProfile:
    """Look up a site profile by (case-insensitive) name."""
    try:
        return SITE_PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SITE_PROFILES))
        raise KeyError(f"unknown site {name!r}; known sites: {known}") from None
