"""Trace sanity checking — operator guardrails.

The detector's statistical assumptions are mild but not empty: the
monitored link must actually carry paired SYN/SYN-ACK traffic.  Feeding
it a pathological input (an asymmetric tap that never sees the return
path, a mislabeled direction pair, an idle link) produces alarms or
silence that *look* meaningful and aren't.  ``validate_count_trace``
checks a count trace before detection and returns structured findings
an operator (or the CLI) can act on — each finding names the symptom,
the likely cause, and the remedy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .events import CountTrace
from .stats import pearson_correlation

__all__ = ["Severity", "Finding", "validate_count_trace"]


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One validation result."""

    severity: Severity
    code: str
    message: str


def validate_count_trace(
    trace: CountTrace,
    min_periods: int = 10,
) -> List[Finding]:
    """Check a count trace for the pathologies that break detection.

    Returns findings ordered most severe first; an empty list means the
    trace looks like a healthy symmetric tap.
    """
    findings: List[Finding] = []
    syns = trace.syn_counts
    synacks = trace.synack_counts
    n = len(trace)

    if n == 0:
        return [Finding(
            Severity.ERROR, "empty",
            "the trace has no observation periods",
        )]
    if n < min_periods:
        findings.append(Finding(
            Severity.WARNING, "short",
            f"only {n} periods (< {min_periods}); the EWMA baseline will "
            f"not have settled and detection verdicts are unreliable",
        ))

    total_syn = sum(syns)
    total_synack = sum(synacks)
    if total_syn == 0 and total_synack == 0:
        findings.append(Finding(
            Severity.ERROR, "idle",
            "no SYNs and no SYN/ACKs at all — wrong interface, wrong "
            "filter, or a dead link",
        ))
        return sorted(findings, key=lambda f: f.severity.value)

    if total_syn > 0 and total_synack == 0:
        findings.append(Finding(
            Severity.ERROR, "no-return-path",
            "SYNs without a single SYN/ACK: the return path does not "
            "cross this tap (asymmetric routing) or the inbound capture "
            "is missing.  The SYN-SYNACK pairing will false-alarm "
            "immediately; use the SYN-FIN variant (repro.core.SynFinDog) "
            "or fix the tap",
        ))
    elif total_syn > 0:
        answer_ratio = total_synack / total_syn
        if answer_ratio < 0.5:
            findings.append(Finding(
                Severity.WARNING, "partial-return-path",
                f"only {answer_ratio:.0%} of SYNs have matching SYN/ACKs "
                f"over the whole trace; if the link is healthy this "
                f"suggests partial return-path asymmetry — expect "
                f"elevated false alarms",
            ))
        elif answer_ratio > 1.5:
            findings.append(Finding(
                Severity.WARNING, "direction-swap",
                f"{answer_ratio:.1f}x more SYN/ACKs than SYNs: the "
                f"direction pair looks swapped (or this is a server-side "
                f"link — consider the last-mile pairing, "
                f"repro.core.LastMileSynDog)",
            ))

    if total_synack > 0 and total_syn == 0:
        findings.append(Finding(
            Severity.ERROR, "no-requests",
            "SYN/ACKs without any SYNs: the outbound capture is missing "
            "or the direction pair is swapped",
        ))

    # Mean volume: the floor clamp kicks in below ~1 SYN/ACK per period
    # and the normalized statistic loses meaning.
    if n >= min_periods and total_synack / n < 2.0:
        findings.append(Finding(
            Severity.WARNING, "very-quiet",
            f"mean SYN/ACK volume is {total_synack / n:.2f} per period; "
            f"at this volume single stray packets dominate X_n — "
            f"lengthen the observation period or aggregate links",
        ))

    # Correlation: Section 4.1's strong positive SYN<->SYN/ACK
    # correlation is the mechanism's foundation; its absence on a
    # supposedly-normal trace means the pairing assumption fails here.
    if n >= min_periods and total_syn > 0 and total_synack > 0:
        try:
            correlation = pearson_correlation(
                [float(s) for s in syns], [float(a) for a in synacks]
            )
        except ValueError:
            correlation = 0.0
        if correlation < 0.3:
            findings.append(Finding(
                Severity.WARNING, "weak-correlation",
                f"SYN<->SYN/ACK correlation is {correlation:.2f} (<0.3); "
                f"either this trace already contains an attack, or the "
                f"two series are not a matched direction pair",
            ))

    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    return sorted(findings, key=lambda finding: order[finding.severity])
