"""SYN-dog: sniffing SYN flooding sources.

A complete reproduction of *SYN-dog: Sniffing SYN Flooding Sources*
(Haining Wang, Danlu Zhang, Kang G. Shin - ICDCS 2002): a stateless,
CUSUM-based detector of SYN flooding *sources*, installed at the leaf
routers that connect stub networks to the Internet.

Quickstart::

    from repro import SynDog
    dog = SynDog()                      # paper defaults: t0=20s, a=0.35, N=1.05
    for syn_count, synack_count in per_period_counts:
        record = dog.observe_period(syn_count, synack_count)
        if record.alarm:
            print(f"flooding source detected, y_n={record.statistic:.2f}")

Subpackages
-----------
``repro.core``
    The paper's contribution: sniffers, EWMA normalization,
    non-parametric CUSUM, parameter theory, baseline detectors.
``repro.packet`` / ``repro.pcap``
    Byte-accurate Ethernet/IPv4/TCP/UDP codecs, the TCP control-packet
    classifier, and a from-scratch libpcap reader/writer.
``repro.trace``
    Arrival processes (Poisson / self-similar / MMPP), the
    SYN<->SYN/ACK handshake model, calibrated site profiles for the
    paper's four traces, synthetic generation and attack mixing.
``repro.tcpsim``
    Discrete-event TCP substrate: handshake state machine, the victim's
    half-open backlog, links, and the service-denial experiment.
``repro.attack``
    Flooding sources, temporal patterns, spoofing strategies, DDoS
    campaign coordination.
``repro.defense``
    The stateful victim-side baselines (SYN cookies, Synkill, SYN
    proxy) and source-side ingress filtering.
``repro.router`` / ``repro.traceback``
    The leaf-router integration and MAC-based source localization.
``repro.experiments``
    The trace-driven harness regenerating every table and figure.
"""

from .core import (
    DEFAULT_PARAMETERS,
    TUNED_UNC_PARAMETERS,
    DetectionRecord,
    DetectionResult,
    NonParametricCusum,
    SynDog,
    SynDogParameters,
)
from .router import LeafRouter, SynDogAgent
from .trace import (
    AUCKLAND,
    HARVARD,
    LBL,
    UNC,
    AttackWindow,
    CountTrace,
    PacketTrace,
    SiteProfile,
    generate_count_trace,
    generate_packet_trace,
    get_profile,
    mix_flood_into_counts,
    mix_flood_into_packets,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMETERS",
    "TUNED_UNC_PARAMETERS",
    "DetectionRecord",
    "DetectionResult",
    "NonParametricCusum",
    "SynDog",
    "SynDogParameters",
    "LeafRouter",
    "SynDogAgent",
    "AUCKLAND",
    "HARVARD",
    "LBL",
    "UNC",
    "AttackWindow",
    "CountTrace",
    "PacketTrace",
    "SiteProfile",
    "generate_count_trace",
    "generate_packet_trace",
    "get_profile",
    "mix_flood_into_counts",
    "mix_flood_into_packets",
    "__version__",
]
