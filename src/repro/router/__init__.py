"""Leaf-router integration: the router model of Figure 2, the deployable
SYN-dog agent with its alarm-time response hooks, and the federation
view across a fleet of agents."""

from .agent import AlarmEvent, SynDogAgent
from .fleet import Federation, FederationFeedError, FederationIncident, MemberAlarm
from .leafrouter import Interface, LeafRouter

__all__ = [
    "AlarmEvent",
    "SynDogAgent",
    "Federation",
    "FederationFeedError",
    "FederationIncident",
    "MemberAlarm",
    "Interface",
    "LeafRouter",
]
