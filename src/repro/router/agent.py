"""The deployed SYN-dog agent: detector + router + response hooks.

:class:`SynDogAgent` is the operational package an administrator would
actually install (Section 2's "software agent at leaf routers"): it
attaches the two sniffers to a :class:`~repro.router.leafrouter.LeafRouter`'s
interfaces, runs the CUSUM pipeline, and on alarm executes the
Section 4.2.3 response — activate ingress filtering and localize the
flooding host(s) by MAC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import DetectionRecord, DetectionResult, SynDog
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.packet import Packet
from ..traceback.locator import LocalizationReport, SourceLocator
from .leafrouter import LeafRouter

__all__ = ["SynDogAgent", "AlarmEvent", "AGENT_ALARM_RULE"]

AlarmCallback = Callable[["AlarmEvent"], None]

#: The alert name a router-attached agent reports its alarms under when
#: driving a :class:`~repro.defense.response.ResponseEngine` directly
#: (no AlertManager in between) — playbooks bind rules to this name.
AGENT_ALARM_RULE = "syndog_alarm"


@dataclass(frozen=True)
class AlarmEvent:
    """Everything known at the moment an alarm fires."""

    time: float
    period_index: int
    statistic: float
    k_bar: float
    localization: Optional[LocalizationReport]


class SynDogAgent:
    """A SYN-dog wired into a leaf router.

    Parameters
    ----------
    router:
        The leaf router whose interfaces are monitored.
    parameters:
        Detector parameters (paper defaults unless tuned).
    auto_respond:
        When True (default), the first alarm activates the router's
        ingress filter and produces a localization report.
    on_alarm:
        Optional callback invoked at the first alarm.
    detector:
        Optional prebuilt :class:`SynDog` — what a supervisor passes
        when restarting a crashed agent from its last checkpoint, so
        the change-point test resumes instead of resetting.
    response_engine:
        Optional :class:`~repro.defense.response.ResponseEngine`.  When
        given, the agent feeds it a ``firing`` transition under
        :data:`AGENT_ALARM_RULE` at the first alarm (and steps it), and
        a ``resolved`` transition on :meth:`acknowledge_alarm` — the
        direct-drive wiring for deployments without an AlertManager.
    """

    def __init__(
        self,
        router: LeafRouter,
        parameters: SynDogParameters = DEFAULT_PARAMETERS,
        auto_respond: bool = True,
        on_alarm: Optional[AlarmCallback] = None,
        start_time: float = 0.0,
        obs: Optional[Instrumentation] = None,
        detector: Optional[SynDog] = None,
        response_engine: Optional[object] = None,
    ) -> None:
        self.router = router
        obs = resolve_instrumentation(obs)
        # The detector inherits the router's identity so the flight
        # recorder, events and /healthz attribute periods and alarms to
        # the right leaf router.
        self.detector = detector if detector is not None else SynDog(
            parameters=parameters, start_time=start_time, obs=obs,
            name=router.name,
        )
        self._events = obs.events if obs.events.enabled else None
        self.auto_respond = auto_respond
        self.on_alarm = on_alarm
        self.locator = SourceLocator(inventory=router.inventory)
        self.alarm_events: List[AlarmEvent] = []
        self._responded = False
        self.response_engine = response_engine
        # Tap the interfaces: outbound SYNs, inbound SYN/ACKs.
        router.outbound.attach(self._observe_outbound)
        router.inbound.attach(self._observe_inbound)

    # ------------------------------------------------------------------
    def _observe_outbound(self, packet: Packet) -> None:
        self._handle_records(self.detector.observe_outbound(packet))

    def _observe_inbound(self, packet: Packet) -> None:
        self._handle_records(self.detector.observe_inbound(packet))

    def _handle_records(self, records: List[DetectionRecord]) -> None:
        for record in records:
            if record.alarm and not self._responded:
                self._respond(record)

    def _respond(self, record: DetectionRecord) -> None:
        self._responded = True
        localization: Optional[LocalizationReport] = None
        if self.auto_respond:
            # Section 4.2.3: trigger ingress filtering, then check the
            # MAC addresses of packets whose sources are spoofed.
            self.router.ingress_filter.activate()
            localization = self.locator.locate_from_filter(
                self.router.ingress_filter
            )
        event = AlarmEvent(
            time=record.end_time,
            period_index=record.period_index,
            statistic=record.statistic,
            k_bar=record.k_bar,
            localization=localization,
        )
        self.alarm_events.append(event)
        if self._events is not None:
            self._events.emit(
                "response",
                router=self.router.name,
                time=event.time,
                period_index=event.period_index,
                statistic=event.statistic,
                ingress_filter_activated=self.auto_respond,
                hosts_localized=(
                    len(localization.hosts) if localization is not None else 0
                ),
            )
        if self.response_engine is not None:
            self.response_engine.on_transition(
                {
                    "rule": AGENT_ALARM_RULE,
                    "severity": "page",
                    "to": "firing",
                    "t": record.end_time,
                    "value": record.statistic,
                }
            )
            self.response_engine.step(record.end_time)
        if self.on_alarm is not None:
            self.on_alarm(event)

    # ------------------------------------------------------------------
    @property
    def alarmed(self) -> bool:
        return bool(self.alarm_events)

    @property
    def first_alarm(self) -> Optional[AlarmEvent]:
        return self.alarm_events[0] if self.alarm_events else None

    def finish(self, end_time: Optional[float] = None) -> DetectionResult:
        """Close the trailing observation period and return the full
        detection result."""
        self._handle_records(self.detector.flush(end_time=end_time))
        return self.detector.result()

    def localize_now(self) -> LocalizationReport:
        """On-demand localization from the evidence gathered so far."""
        return self.locator.locate_from_filter(self.router.ingress_filter)

    def acknowledge_alarm(
        self, deactivate_filter: bool = False, t: Optional[float] = None
    ) -> None:
        """Operator acknowledgement: re-arm detection and (optionally)
        lift the ingress filter once the flooding host is dealt with.
        Alarm history is kept for the incident record.  A wired
        response engine sees the alarm as resolved at *t* (defaults to
        the last alarm time) and rolls its actions back."""
        self.detector.clear_alarm()
        self._responded = False
        if deactivate_filter:
            self.router.ingress_filter.enforce = False
        if self.response_engine is not None:
            if t is None:
                t = self.alarm_events[-1].time if self.alarm_events else 0.0
            self.response_engine.on_transition(
                {
                    "rule": AGENT_ALARM_RULE,
                    "severity": "page",
                    "to": "resolved",
                    "t": t,
                    "value": 0.0,
                }
            )
            self.response_engine.step(t)
