"""A federation of SYN-dog agents — many stub networks, one view.

The paper argues SYN-dog "is incrementally deployable and works without
requiring a wide installation" — each agent is autonomous — but an ISP
or CERT operating many leaf routers still wants the fleet's alarms in
one place.  :class:`Federation` owns a set of (router, agent) pairs at
packet level, fans traffic out to the right member, gathers alarms on a
shared bus, and merges the per-network localization reports into one
incident view: which stub networks host slaves, which hosts they are,
and how much of the observed flood is attributed.

This is the packet-level counterpart of the count-level Monte-Carlo in
:mod:`repro.experiments.campaign`: that module answers statistical
questions over thousands of networks; this one runs the full pipeline —
classification, ingress filtering, MAC localization — for a handful of
networks in complete detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Network
from ..packet.packet import Packet
from ..traceback.locator import LocatedHost
from .agent import AlarmEvent, SynDogAgent
from .leafrouter import LeafRouter

__all__ = ["Federation", "FederationIncident", "MemberAlarm"]


@dataclass(frozen=True)
class MemberAlarm:
    """One member's alarm, as seen on the federation bus."""

    network_name: str
    event: AlarmEvent


@dataclass(frozen=True)
class FederationIncident:
    """The merged incident view across all alarming members."""

    alarms: Tuple[MemberAlarm, ...]
    suspects: Tuple[Tuple[str, LocatedHost], ...]  #: (network, host) pairs

    @property
    def networks_alarming(self) -> List[str]:
        return [alarm.network_name for alarm in self.alarms]

    @property
    def hosts_localized(self) -> int:
        return sum(1 for _network, host in self.suspects if host.known)


class Federation:
    """A fleet of leaf routers with SYN-dog agents.

    Usage::

        federation = Federation()
        federation.add_network("eng", IPv4Network.parse("10.1.0.0/16"))
        federation.add_network("dorms", IPv4Network.parse("10.2.0.0/16"))
        federation.feed("eng", outbound_packets, inbound_packets)
        ...
        incident = federation.incident()
    """

    def __init__(
        self,
        parameters: SynDogParameters = DEFAULT_PARAMETERS,
        on_alarm: Optional[Callable[[MemberAlarm], None]] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.parameters = parameters
        self.on_alarm = on_alarm
        self._members: Dict[str, Tuple[LeafRouter, SynDogAgent]] = {}
        self._bus: List[MemberAlarm] = []
        self._obs = resolve_instrumentation(obs)
        if self._obs.registry.enabled:
            self._m_fed_packets = self._obs.registry.counter(
                "federation_packets_total",
                "Packets replayed through the fleet, by member network",
                ("network",),
            )
            self._m_fed_alarms = self._obs.registry.counter(
                "federation_alarms_total",
                "Member alarms seen on the federation bus",
                ("network",),
            )
        else:
            self._m_fed_packets = None
            self._m_fed_alarms = None
        self._events = self._obs.events if self._obs.events.enabled else None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_network(
        self, name: str, stub_network: IPv4Network
    ) -> Tuple[LeafRouter, SynDogAgent]:
        """Enroll one stub network; returns its router and agent so the
        caller can register host inventory."""
        if name in self._members:
            raise ValueError(f"network {name!r} already enrolled")
        router = LeafRouter(
            stub_network=stub_network, name=f"router-{name}", obs=self._obs
        )

        def relay(event: AlarmEvent, network_name: str = name) -> None:
            member_alarm = MemberAlarm(network_name=network_name, event=event)
            self._bus.append(member_alarm)
            if self._m_fed_alarms is not None:
                self._m_fed_alarms.labels(network_name).inc()
            if self._events is not None:
                self._events.emit(
                    "federation_alarm",
                    network=network_name,
                    time=event.time,
                    period_index=event.period_index,
                    statistic=event.statistic,
                    k_bar=event.k_bar,
                )
            if self.on_alarm is not None:
                self.on_alarm(member_alarm)

        agent = SynDogAgent(
            router, parameters=self.parameters, on_alarm=relay, obs=self._obs
        )
        self._members[name] = (router, agent)
        return router, agent

    def member(self, name: str) -> Tuple[LeafRouter, SynDogAgent]:
        try:
            return self._members[name]
        except KeyError:
            raise KeyError(
                f"unknown network {name!r}; enrolled: {sorted(self._members)}"
            ) from None

    @property
    def network_names(self) -> List[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def feed(
        self,
        name: str,
        outbound: Iterable[Packet],
        inbound: Iterable[Packet],
    ) -> int:
        """Replay one member's traffic through its router; returns the
        number of packets processed."""
        router, _agent = self.member(name)
        processed = router.replay(outbound, inbound)
        if self._m_fed_packets is not None:
            self._m_fed_packets.labels(name).inc(processed)
        return processed

    def finish(self, end_time: Optional[float] = None) -> None:
        """Close trailing observation periods on every member."""
        for _router, agent in self._members.values():
            agent.finish(end_time=end_time)

    # ------------------------------------------------------------------
    # Incident view
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Dict[str, object]]:
        """Live per-member state, in the same shape the telemetry
        server's ``/healthz`` reports agents: periods observed, current
        alarm decision, latest statistic and K̄."""
        report: Dict[str, Dict[str, object]] = {}
        for name, (router, agent) in sorted(self._members.items()):
            detector = agent.detector
            report[name] = {
                "router": router.name,
                "periods": len(detector.records),
                "alarm": detector.alarm,
                "statistic": detector.statistic,
                "k_bar": detector.k_bar,
                "alarms_seen": len(agent.alarm_events),
            }
        return report

    @property
    def alarms(self) -> Tuple[MemberAlarm, ...]:
        return tuple(self._bus)

    @property
    def any_alarm(self) -> bool:
        return bool(self._bus)

    def incident(self) -> FederationIncident:
        """Merge every alarming member's localization into one report."""
        suspects: List[Tuple[str, LocatedHost]] = []
        for alarm in self._bus:
            _router, agent = self._members[alarm.network_name]
            report = agent.localize_now()
            for host in report.hosts:
                suspects.append((alarm.network_name, host))
        suspects.sort(key=lambda item: -item[1].spoofed_packet_count)
        return FederationIncident(
            alarms=tuple(self._bus), suspects=tuple(suspects)
        )
