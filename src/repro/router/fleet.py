"""A federation of SYN-dog agents — many stub networks, one view.

The paper argues SYN-dog "is incrementally deployable and works without
requiring a wide installation" — each agent is autonomous — but an ISP
or CERT operating many leaf routers still wants the fleet's alarms in
one place.  :class:`Federation` owns a set of (router, agent) pairs at
packet level, fans traffic out to the right member, gathers alarms on a
shared bus, and merges the per-network localization reports into one
incident view: which stub networks host slaves, which hosts they are,
and how much of the observed flood is attributed.

This is the packet-level counterpart of the count-level Monte-Carlo in
:mod:`repro.experiments.campaign`: that module answers statistical
questions over thousands of networks; this one runs the full pipeline —
classification, ingress filtering, MAC localization — for a handful of
networks in complete detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import SynDog
from ..obs.rollup import DEFAULT_TOP_K, AgentState, FleetRollup
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Network
from ..packet.packet import Packet
from ..traceback.locator import LocatedHost
from .agent import AlarmEvent, SynDogAgent
from .leafrouter import LeafRouter

__all__ = [
    "Federation",
    "FederationFeedError",
    "FederationIncident",
    "MemberAlarm",
    "MemberFeedTask",
    "MemberFeedOutcome",
]


@dataclass(frozen=True)
class MemberFeedTask:
    """One member's feed, self-contained and picklable: the member's
    durable state (detector checkpoint, ingress filter, MAC inventory)
    plus its traffic — a :mod:`repro.parallel` grid item."""

    name: str
    router_name: str
    stub_network: IPv4Network
    ingress_filter: object
    inventory: object
    detector_state: dict
    responded: bool
    parameters: SynDogParameters
    outbound: Tuple[Packet, ...]
    inbound: Tuple[Packet, ...]


@dataclass(frozen=True)
class MemberFeedOutcome:
    """What one member's replay ships home."""

    name: str
    processed: int
    #: ``(exception type name, message)`` when the member crashed
    #: mid-replay, else None.  The worker catches its own failure so the
    #: *federation's* crash semantics (mark down, optional restart)
    #: apply — the engine's shard-retry must never see it.
    error: Optional[Tuple[str, str]] = None
    detector_state: Optional[dict] = None
    ingress_filter: Optional[object] = None
    inventory: Optional[object] = None
    responded: bool = False
    alarm_events: Tuple[AlarmEvent, ...] = ()
    #: Detection records the feed produced (the checkpoint alone omits
    #: them by design — O(n) evidence a *crash* restart must not need,
    #: but a state *transfer* must keep for status()/result()).
    records: Tuple = ()
    #: The open period's partial SYN / SYN-ACK counts.  A checkpoint
    #: deliberately drops these (a crash genuinely loses them); a
    #: sharded feed did not crash, so they are carried across and
    #: reinjected — the serial run's trailing flush() must see them.
    pending_syn: int = 0
    pending_synack: int = 0


def feed_member_task(
    task: MemberFeedTask,
    obs: Optional[Instrumentation] = None,
) -> MemberFeedOutcome:
    """Replay one member's traffic on a reconstructed router + agent.

    Shared by the worker processes and (structurally) the serial path:
    the member is rebuilt from its shipped state exactly the way
    :meth:`Federation.restart_member` rebuilds a crashed one, so a
    sharded feed exercises the same restore machinery as supervision.
    """
    obs = resolve_instrumentation(obs)
    router = LeafRouter(
        stub_network=task.stub_network,
        ingress_filter=task.ingress_filter,
        inventory=task.inventory,
        name=task.router_name,
        obs=obs,
    )
    detector = SynDog.restore(
        task.detector_state, obs=obs, name=task.router_name,
        counted=False,
    )
    agent = SynDogAgent(
        router,
        parameters=task.parameters,
        obs=obs,
        detector=detector,
    )
    agent._responded = task.responded
    try:
        processed = router.replay(task.outbound, task.inbound)
    except Exception as error:
        return MemberFeedOutcome(
            name=task.name,
            processed=0,
            error=(type(error).__name__, str(error)),
        )
    return MemberFeedOutcome(
        name=task.name,
        processed=processed,
        detector_state=agent.detector.checkpoint(),
        ingress_filter=router.ingress_filter,
        inventory=router.inventory,
        responded=agent._responded,
        alarm_events=tuple(agent.alarm_events),
        records=agent.detector.records,
        pending_syn=agent.detector.exchange.outbound.count,
        pending_synack=agent.detector.exchange.inbound.count,
    )


class FederationFeedError(RuntimeError):
    """One or more members failed while the whole fleet was being fed.

    Raised *after* every member got its traffic, so a single crashing
    agent cannot starve its healthy peers of delivery.  ``errors`` maps
    member name → the exception it raised; ``processed`` maps member
    name → packets successfully replayed (0 for the failed ones).
    """

    def __init__(
        self,
        errors: Dict[str, BaseException],
        processed: Dict[str, int],
    ) -> None:
        summary = ", ".join(
            f"{name}: {type(error).__name__}: {error}"
            for name, error in sorted(errors.items())
        )
        super().__init__(
            f"{len(errors)} federation member(s) failed during feed "
            f"[{summary}]"
        )
        self.errors = dict(errors)
        self.processed = dict(processed)


@dataclass(frozen=True)
class MemberAlarm:
    """One member's alarm, as seen on the federation bus."""

    network_name: str
    event: AlarmEvent


@dataclass(frozen=True)
class FederationIncident:
    """The merged incident view across all alarming members.

    Quorum-aware: ``members_down`` names the agents that were crashed
    (and not restarted) when the incident was assembled, and ``quorum``
    is the alive fraction — an incident cut while half the fleet is
    down must say so, because "no alarm from network X" means nothing
    when X's agent was not observing.
    """

    alarms: Tuple[MemberAlarm, ...]
    suspects: Tuple[Tuple[str, LocatedHost], ...]  #: (network, host) pairs
    members_down: Tuple[str, ...] = ()
    quorum: float = 1.0

    @property
    def networks_alarming(self) -> List[str]:
        return [alarm.network_name for alarm in self.alarms]

    @property
    def hosts_localized(self) -> int:
        return sum(1 for _network, host in self.suspects if host.known)

    @property
    def degraded(self) -> bool:
        """True when the view was assembled with members missing."""
        return bool(self.members_down)


class Federation:
    """A fleet of leaf routers with SYN-dog agents.

    Usage::

        federation = Federation()
        federation.add_network("eng", IPv4Network.parse("10.1.0.0/16"))
        federation.add_network("dorms", IPv4Network.parse("10.2.0.0/16"))
        federation.feed("eng", outbound_packets, inbound_packets)
        ...
        incident = federation.incident()
    """

    def __init__(
        self,
        parameters: SynDogParameters = DEFAULT_PARAMETERS,
        on_alarm: Optional[Callable[[MemberAlarm], None]] = None,
        obs: Optional[Instrumentation] = None,
        auto_restart: bool = False,
        fleet_top_k: int = DEFAULT_TOP_K,
    ) -> None:
        self.parameters = parameters
        self.on_alarm = on_alarm
        #: Suspect-table size for fleet rollups (``fleet_*`` series and
        #: the ``/fleet`` document stay O(K) regardless of fleet size).
        self.fleet_top_k = fleet_top_k
        self._last_rollup: Optional[FleetRollup] = None
        #: Supervisor policy: when True a member that crashes mid-feed
        #: is immediately restarted from its last checkpoint instead of
        #: staying down until :meth:`restart_member` is called.
        self.auto_restart = auto_restart
        self._members: Dict[str, Tuple[LeafRouter, SynDogAgent]] = {}
        self._bus: List[MemberAlarm] = []
        self._checkpoints: Dict[str, dict] = {}
        self._down: Dict[str, str] = {}
        self._restarts: Dict[str, int] = {}
        self._obs = resolve_instrumentation(obs)
        if self._obs.registry.enabled:
            self._m_fed_packets = self._obs.registry.counter(
                "federation_packets_total",
                "Packets replayed through the fleet, by member network",
                ("network",),
            )
            self._m_fed_alarms = self._obs.registry.counter(
                "federation_alarms_total",
                "Member alarms seen on the federation bus",
                ("network",),
            )
            self._m_fed_failures = self._obs.registry.counter(
                "federation_member_failures_total",
                "Member crashes observed by the federation supervisor",
                ("network",),
            )
            self._m_fed_restarts = self._obs.registry.counter(
                "federation_member_restarts_total",
                "Members restarted from checkpoint by the supervisor",
                ("network",),
            )
            self._g_fed_down = self._obs.registry.gauge(
                "federation_members_down",
                "Members currently crashed and awaiting restart",
            )
        else:
            self._m_fed_packets = None
            self._m_fed_alarms = None
            self._m_fed_failures = None
            self._m_fed_restarts = None
            self._g_fed_down = None
        self._events = self._obs.events if self._obs.events.enabled else None
        self._tsdb = self._obs.tsdb if self._obs.tsdb.enabled else None
        # Coarse per-feed stage: one "federation.feed" call covers one
        # member replay, so it is always timed in timers mode.
        self._prof_feed = (
            self._obs.profiler.stage("federation.feed", sample_every=1)
            if self._obs.profiler.enabled
            else None
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_network(
        self, name: str, stub_network: IPv4Network
    ) -> Tuple[LeafRouter, SynDogAgent]:
        """Enroll one stub network; returns its router and agent so the
        caller can register host inventory."""
        if name in self._members:
            raise ValueError(f"network {name!r} already enrolled")
        router = LeafRouter(
            stub_network=stub_network, name=f"router-{name}", obs=self._obs
        )
        return self._install_member(name, router, detector=None)

    def _alarm_relay(self, name: str) -> Callable[[AlarmEvent], None]:
        def relay(event: AlarmEvent, network_name: str = name) -> None:
            member_alarm = MemberAlarm(network_name=network_name, event=event)
            self._bus.append(member_alarm)
            if self._m_fed_alarms is not None:
                self._m_fed_alarms.labels(network_name).inc()
            if self._tsdb is not None:
                # Fleet-level alarm history: the member's CUSUM value at
                # the moment its alarm crossed, on the event's logical
                # clock — queryable per network.
                self._tsdb.append(
                    "federation_alarm_statistic",
                    {"network": network_name},
                    event.time,
                    event.statistic,
                )
            if self._events is not None:
                self._events.emit(
                    "federation_alarm",
                    network=network_name,
                    time=event.time,
                    period_index=event.period_index,
                    statistic=event.statistic,
                    k_bar=event.k_bar,
                )
            if self.on_alarm is not None:
                self.on_alarm(member_alarm)

        return relay

    def _install_member(
        self,
        name: str,
        router: LeafRouter,
        detector: Optional[SynDog],
    ) -> Tuple[LeafRouter, SynDogAgent]:
        agent = SynDogAgent(
            router,
            parameters=self.parameters,
            on_alarm=self._alarm_relay(name),
            obs=self._obs,
            detector=detector,
        )
        self._members[name] = (router, agent)
        return router, agent

    def member(self, name: str) -> Tuple[LeafRouter, SynDogAgent]:
        try:
            return self._members[name]
        except KeyError:
            raise KeyError(
                f"unknown network {name!r}; enrolled: {sorted(self._members)}"
            ) from None

    @property
    def network_names(self) -> List[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def feed(
        self,
        name: str,
        outbound: Iterable[Packet],
        inbound: Iterable[Packet],
    ) -> int:
        """Replay one member's traffic through its router; returns the
        number of packets processed.

        A member that raises mid-replay is marked down (its packets
        from the crash point on are lost, as they would be on a real
        router) and — with ``auto_restart`` — immediately restarted
        from its last checkpoint.  Without auto-restart the exception
        propagates after the crash is recorded.
        """
        router, agent = self.member(name)
        prof = self._prof_feed
        token = None if prof is None else prof.begin()
        try:
            processed = router.replay(outbound, inbound)
        except Exception as error:
            # The crashed replay's token is dropped: only completed
            # feeds are attributed, mirroring the packet counter below.
            self._note_crash(name, error)
            if self.auto_restart:
                self.restart_member(name)
                return 0
            raise
        if prof is not None:
            prof.end(token, packets=processed)
        self._checkpoints[name] = agent.detector.checkpoint()
        if self._m_fed_packets is not None:
            self._m_fed_packets.labels(name).inc(processed)
        return processed

    def feed_all(
        self,
        traffic: Dict[str, Tuple[Iterable[Packet], Iterable[Packet]]],
        workers: Optional[int] = 1,
    ) -> Dict[str, int]:
        """Feed every named member its ``(outbound, inbound)`` streams.

        One member's exception does not abort delivery to the rest:
        every member is fed first, then — if any failed and were not
        auto-restarted — a single :class:`FederationFeedError`
        aggregating the per-member errors is raised.  Returns packets
        processed per member when all succeed.

        ``workers`` > 1 shards the members across processes
        (:mod:`repro.parallel`; members are independent leaf routers, so
        this is the federation's natural parallel axis).  Each member
        ships its durable state out, replays remotely, and is
        reinstalled — through the same restore path supervision uses —
        in sorted-name order, so alarms land on the bus exactly as a
        serial feed would place them.  A member that crashes mid-replay
        reports the failure itself (the engine's shard-retry is for
        *worker* deaths, not member bugs) and the federation's normal
        crash handling — mark down, optional ``auto_restart`` — applies.
        """
        from ..parallel import effective_workers

        if effective_workers(workers) == 1:
            errors: Dict[str, BaseException] = {}
            processed: Dict[str, int] = {}
            for name in sorted(traffic):
                outbound, inbound = traffic[name]
                try:
                    processed[name] = self.feed(name, outbound, inbound)
                except Exception as error:
                    errors[name] = error
                    processed[name] = 0
            self._emit_fleet_rollup()
            if errors:
                raise FederationFeedError(errors, processed)
            return processed
        return self._feed_all_sharded(traffic, workers)

    def _feed_all_sharded(
        self,
        traffic: Dict[str, Tuple[Iterable[Packet], Iterable[Packet]]],
        workers: Optional[int],
    ) -> Dict[str, int]:
        from ..parallel import WorkPlan, run_plan

        tasks: List[MemberFeedTask] = []
        stream_errors: Dict[str, BaseException] = {}
        for name in sorted(traffic):
            router, agent = self.member(name)
            outbound, inbound = traffic[name]
            try:
                # Materialize the streams up front: a live packet source
                # cannot cross a process boundary, and a source that
                # dies mid-read is this member's crash (the serial
                # path's mid-replay failure), not the feed's.
                outbound_packets = tuple(outbound)
                inbound_packets = tuple(inbound)
            except Exception as error:
                stream_errors[name] = error
                continue
            tasks.append(
                MemberFeedTask(
                    name=name,
                    router_name=router.name,
                    stub_network=router.stub_network,
                    ingress_filter=router.ingress_filter,
                    inventory=router.inventory,
                    detector_state=agent.detector.checkpoint(),
                    responded=agent._responded,
                    parameters=self.parameters,
                    outbound=outbound_packets,
                    inbound=inbound_packets,
                )
            )
        outcomes = run_plan(
            WorkPlan.partition(tasks), feed_member_task,
            workers=workers, obs=self._obs,
        )
        by_name = {outcome.name: outcome for outcome in outcomes}
        errors: Dict[str, BaseException] = {}
        processed: Dict[str, int] = {}
        for name in sorted(traffic):  # the serial feed's member order
            if name in stream_errors:
                error: BaseException = stream_errors[name]
            elif by_name[name].error is not None:
                # Reconstruct an exception whose type *name* matches the
                # member's original failure, so down/feed-error records
                # read the same as a serial feed's.
                error_type, message = by_name[name].error
                error = type(error_type, (RuntimeError,), {})(message)
            else:
                outcome = by_name[name]
                self._reinstall_fed_member(name, outcome)
                processed[name] = outcome.processed
                if self._m_fed_packets is not None:
                    self._m_fed_packets.labels(name).inc(outcome.processed)
                continue
            self._note_crash(name, error)
            processed[name] = 0
            if self.auto_restart:
                self.restart_member(name)
            else:
                errors[name] = error
        # The rollup is computed by the parent over the reinstalled
        # member state — identical to the serial path's, so the emitted
        # fleet_* samples are byte-identical at any worker count.
        self._emit_fleet_rollup()
        if errors:
            raise FederationFeedError(errors, processed)
        return processed

    def _reinstall_fed_member(
        self, name: str, outcome: MemberFeedOutcome
    ) -> None:
        """Adopt a remotely-fed member's state: rebuild its router and
        agent (the restart_member pattern), replay its alarms onto the
        federation bus, retain its checkpoint."""
        old_router, old_agent = self.member(name)
        router = LeafRouter(
            stub_network=old_router.stub_network,
            ingress_filter=outcome.ingress_filter,
            inventory=outcome.inventory,
            name=old_router.name,
            obs=self._obs,
        )
        detector = SynDog.restore(
            outcome.detector_state, obs=self._obs, name=old_router.name,
            counted=False,
        )
        # Restore resumes at next_period_index with an empty history and
        # empty in-period counters (correct for a crash, where both are
        # genuinely lost).  This member did not crash — splice its full
        # record history back in and reinject the open period's partial
        # counts so a later finish()/status() is indistinguishable from
        # a serially-fed member's.
        prior = list(old_agent.detector._records)
        detector._records = prior + list(outcome.records)
        detector._period_offset = (
            int(outcome.detector_state["next_period_index"])
            - len(detector._records)
        )
        detector.exchange.outbound._count = outcome.pending_syn
        detector.exchange.inbound._count = outcome.pending_synack
        _router, agent = self._install_member(name, router, detector)
        agent._responded = outcome.responded
        agent.alarm_events = list(outcome.alarm_events)
        relay = self._alarm_relay(name)
        for event in outcome.alarm_events:
            relay(event)
        self._checkpoints[name] = outcome.detector_state

    def finish(self, end_time: Optional[float] = None) -> None:
        """Close trailing observation periods on every member still up
        (a crashed member has no live period to close), then emit the
        final fleet rollup over the flushed state."""
        for name, (_router, agent) in self._members.items():
            if name not in self._down:
                agent.finish(end_time=end_time)
        self._emit_fleet_rollup()

    # ------------------------------------------------------------------
    # Fleet rollup (repro.obs.rollup)
    # ------------------------------------------------------------------
    def agent_states(self) -> List[AgentState]:
        """Every member's current detector state as rollup input rows,
        in sorted-name order.  A down member contributes its last known
        state (stale by definition) flagged ``down``."""
        states: List[AgentState] = []
        for name, (_router, agent) in sorted(self._members.items()):
            detector = agent.detector
            record = detector.records[-1] if detector.records else None
            states.append(
                AgentState(
                    name=name,
                    delta=(
                        float(record.syn_count - record.synack_count)
                        if record is not None
                        else 0.0
                    ),
                    x=record.x if record is not None else 0.0,
                    cusum=detector.statistic,
                    degraded_periods=sum(
                        1 for r in detector.records if r.degraded
                    ),
                    alarms=len(agent.alarm_events),
                    alarm=detector.alarm,
                    down=name in self._down,
                )
            )
        return states

    def rollup(self, k: Optional[int] = None) -> FleetRollup:
        """The fleet's current telemetry rollup — O(K·buckets) however
        many members are enrolled."""
        watermark = None
        for _name, (_router, agent) in self._members.items():
            records = agent.detector.records
            if records:
                end_time = records[-1].end_time
                if watermark is None or end_time > watermark:
                    watermark = end_time
        return FleetRollup.from_states(
            self.agent_states(),
            k=self.fleet_top_k if k is None else k,
            watermark=watermark,
        )

    @property
    def last_rollup(self) -> Optional[FleetRollup]:
        """The most recent rollup emitted by ``feed_all``/``finish``."""
        return self._last_rollup

    def _emit_fleet_rollup(self) -> None:
        """Fold the fleet into one digest and publish it: ``fleet_*``
        feed samples into the TSDB (the series the fleet alert rules
        watch) and one ``fleet_rollup`` event into the log, both at the
        fleet's period watermark — logical detector time, so the
        emission is deterministic and replayable."""
        rollup = self.rollup()
        self._last_rollup = rollup
        if not self._members or rollup.watermark is None:
            return  # no member has closed a period yet: nothing to stamp
        t = rollup.watermark
        if self._tsdb is not None:
            for name, value in rollup.fleet_series():
                self._tsdb.append(name, None, t, value)
        if self._events is not None:
            self._events.emit(
                "fleet_rollup",
                time=t,
                agents=rollup.counts["total"],
                series={name: value for name, value in rollup.fleet_series()},
            )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _note_crash(self, name: str, error: BaseException) -> None:
        self._down[name] = f"{type(error).__name__}: {error}"
        if self._m_fed_failures is not None:
            self._m_fed_failures.labels(name).inc()
        if self._g_fed_down is not None:
            self._g_fed_down.set(float(len(self._down)))
        if self._events is not None:
            self._events.emit(
                "federation_member_crashed",
                network=name,
                error=self._down[name],
                has_checkpoint=name in self._checkpoints,
            )

    def restart_member(self, name: str) -> Tuple[LeafRouter, SynDogAgent]:
        """Supervisor restart: rebuild the member's router and agent,
        restoring the detector from its last checkpoint.

        Detection state (K̄, CUSUM statistic, period clock) survives the
        restart; packets seen between the checkpoint and the crash are
        gone, which the detector's degraded mode absorbs.  The MAC
        inventory and ingress filter are carried over — they are the
        localization evidence an operator would not want wiped by a
        process bounce.
        """
        old_router, _old_agent = self.member(name)
        state = self._checkpoints.get(name)
        router = LeafRouter(
            stub_network=old_router.stub_network,
            ingress_filter=old_router.ingress_filter,
            inventory=old_router.inventory,
            name=old_router.name,
            obs=self._obs,
        )
        detector = (
            SynDog.restore(state, obs=self._obs, name=router.name)
            if state is not None
            else None
        )
        member = self._install_member(name, router, detector)
        self._down.pop(name, None)
        self._restarts[name] = self._restarts.get(name, 0) + 1
        if self._m_fed_restarts is not None:
            self._m_fed_restarts.labels(name).inc()
        if self._g_fed_down is not None:
            self._g_fed_down.set(float(len(self._down)))
        if self._events is not None:
            self._events.emit(
                "federation_member_restarted",
                network=name,
                from_checkpoint=state is not None,
                restarts=self._restarts[name],
            )
        return member

    def checkpoint_member(self, name: str) -> dict:
        """Take (and retain) a checkpoint of one member's detector."""
        _router, agent = self.member(name)
        state = agent.detector.checkpoint()
        self._checkpoints[name] = state
        return state

    @property
    def members_down(self) -> Tuple[str, ...]:
        return tuple(sorted(self._down))

    @property
    def restarts(self) -> Dict[str, int]:
        """Restart count per member (members never restarted absent)."""
        return dict(self._restarts)

    @property
    def quorum(self) -> float:
        """Alive fraction of the fleet (1.0 for an empty federation)."""
        if not self._members:
            return 1.0
        alive = len(self._members) - len(self._down)
        return alive / len(self._members)

    # ------------------------------------------------------------------
    # Incident view
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Dict[str, object]]:
        """Live per-member state, in the same shape the telemetry
        server's ``/healthz`` reports agents: periods observed, current
        alarm decision, latest statistic and K̄."""
        report: Dict[str, Dict[str, object]] = {}
        for name, (router, agent) in sorted(self._members.items()):
            detector = agent.detector
            report[name] = {
                "router": router.name,
                "periods": len(detector.records),
                "alarm": detector.alarm,
                "statistic": detector.statistic,
                "k_bar": detector.k_bar,
                "alarms_seen": len(agent.alarm_events),
                "down": name in self._down,
                "restarts": self._restarts.get(name, 0),
            }
        return report

    @property
    def alarms(self) -> Tuple[MemberAlarm, ...]:
        return tuple(self._bus)

    @property
    def any_alarm(self) -> bool:
        return bool(self._bus)

    def incident(self) -> FederationIncident:
        """Merge every alarming member's localization into one report."""
        suspects: List[Tuple[str, LocatedHost]] = []
        for alarm in self._bus:
            _router, agent = self._members[alarm.network_name]
            report = agent.localize_now()
            for host in report.hosts:
                suspects.append((alarm.network_name, host))
        suspects.sort(key=lambda item: -item[1].spoofed_packet_count)
        return FederationIncident(
            alarms=tuple(self._bus),
            suspects=tuple(suspects),
            members_down=self.members_down,
            quorum=self.quorum,
        )
