"""The leaf router hosting SYN-dog (Figure 2).

A leaf router connects a stub network to the Internet.  This model has
the two interfaces the paper draws — inbound (Internet → Intranet) and
outbound (Intranet → Internet) — each with a packet classifier, plus
the attachment points SYN-dog needs: the outbound Sniffer on the
outbound interface, the inbound Sniffer on the inbound interface, an
ingress filter, and the MAC inventory used for localization.

The router works as a *replay* device: feed it time-sorted packets per
direction (from synthetic traces, pcap files, or the tcpsim network)
and it forwards them to the opposite side while every observer sees
them — the way a passive software agent on a real router observes the
forwarding path.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Callable, Iterable, List, Optional

from ..defense.ingress import IngressFilter
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Network
from ..packet.classify import PacketClassifier
from ..packet.packet import Packet
from ..traceback.locator import HostInventory

__all__ = ["LeafRouter", "Interface"]

PacketObserver = Callable[[Packet], None]
PacketSink = Callable[[Packet], None]


class Interface:
    """One router interface: classifier statistics + observer taps.

    With instrumentation enabled the interface exports
    ``router_packets_total{interface,outcome}`` and times the passive
    observer fan-out into ``router_observer_seconds{interface}`` — the
    latency SYN-dog adds to the forwarding path, which the paper claims
    (and ``benchmarks/test_obs_overhead.py`` verifies) is negligible.
    """

    def __init__(self, name: str, obs: Optional[Instrumentation] = None) -> None:
        self.name = name
        obs = resolve_instrumentation(obs)
        self.classifier = PacketClassifier(obs=obs)
        self._observers: List[PacketObserver] = []
        self.packets_forwarded = 0
        self.packets_dropped = 0
        if obs.registry.enabled:
            outcomes = obs.registry.counter(
                "router_packets_total",
                "Packets handled per interface, by outcome",
                ("interface", "outcome"),
            )
            self._m_forwarded = outcomes.labels(name, "forwarded")
            self._m_dropped = outcomes.labels(name, "dropped")
            self._h_observer = obs.registry.histogram(
                "router_observer_seconds",
                "Wall-clock spent in passive observer taps per packet",
                ("interface",),
            ).labels(name)
        else:
            self._m_forwarded = None
            self._m_dropped = None
            self._h_observer = None

    def attach(self, observer: PacketObserver) -> None:
        """Register a passive tap (e.g. a SYN-dog sniffer feed)."""
        self._observers.append(observer)

    def process(self, packet: Packet) -> None:
        self.classifier.classify(packet)
        if self._h_observer is None:
            for observer in self._observers:
                observer(packet)
        else:
            start = time.perf_counter()
            for observer in self._observers:
                observer(packet)
            self._h_observer.observe(time.perf_counter() - start)

    def note_forwarded(self) -> None:
        self.packets_forwarded += 1
        if self._m_forwarded is not None:
            self._m_forwarded.inc()

    def note_dropped(self) -> None:
        self.packets_dropped += 1
        if self._m_dropped is not None:
            self._m_dropped.inc()


class LeafRouter:
    """A leaf router with inbound/outbound interfaces and a stub prefix.

    Parameters
    ----------
    stub_network:
        The prefix this router serves; used by the ingress filter and
        by direction sanity checks.
    to_internet / to_intranet:
        Optional downstream sinks receiving forwarded packets (wire the
        router into a tcpsim topology); omit for pure trace replay.
    """

    def __init__(
        self,
        stub_network: IPv4Network,
        to_internet: Optional[PacketSink] = None,
        to_intranet: Optional[PacketSink] = None,
        ingress_filter: Optional[IngressFilter] = None,
        inventory: Optional[HostInventory] = None,
        name: str = "leaf-router",
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.name = name
        self.stub_network = stub_network
        obs = resolve_instrumentation(obs)
        self.outbound = Interface("outbound", obs=obs)
        self.inbound = Interface("inbound", obs=obs)
        self._tracer = obs.tracer if obs.tracer.enabled else None
        self.to_internet = to_internet
        self.to_intranet = to_intranet
        self.ingress_filter = (
            ingress_filter if ingress_filter is not None
            else IngressFilter(stub_network)
        )
        # Explicit None-check: an empty HostInventory is falsy (it
        # defines __len__), and `or` would silently drop a shared one.
        self.inventory = inventory if inventory is not None else HostInventory()

    # ------------------------------------------------------------------
    # Forwarding paths
    # ------------------------------------------------------------------
    def forward_outbound(self, packet: Packet) -> bool:
        """A packet from the Intranet heading to the Internet.

        Order matters and mirrors a real pipeline: the interface taps
        (sniffers) observe the packet *before* the ingress filter may
        drop it — SYN-dog must keep seeing the flood that triggered the
        filter, and its own counts are of traffic offered at the
        interface.  Returns True when the packet was forwarded.
        """
        self.outbound.process(packet)
        # Learn MAC⇄IP bindings from legitimately-addressed traffic.
        if packet.src_ip in self.stub_network and packet.src_mac not in self.inventory:
            self.inventory.register(packet.src_mac, ip=packet.src_ip)
        if not self.ingress_filter.check(packet):
            self.outbound.note_dropped()
            return False
        self.outbound.note_forwarded()
        if self.to_internet is not None:
            self.to_internet(packet.forwarded())
        return True

    def forward_inbound(self, packet: Packet) -> bool:
        """A packet from the Internet heading into the stub network."""
        self.inbound.process(packet)
        self.inbound.note_forwarded()
        if self.to_intranet is not None:
            self.to_intranet(packet.forwarded())
        return True

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def replay(
        self,
        outbound: Iterable[Packet],
        inbound: Iterable[Packet],
    ) -> int:
        """Replay two time-sorted streams through the router in global
        timestamp order; returns the number of packets processed."""
        merged = sorted(
            [(packet, True) for packet in outbound]
            + [(packet, False) for packet in inbound],
            key=lambda item: item[0].timestamp,
        )
        span = (
            self._tracer.span("router.replay")
            if self._tracer is not None
            else nullcontext()
        )
        with span:
            for packet, is_outbound in merged:
                if is_outbound:
                    self.forward_outbound(packet)
                else:
                    self.forward_inbound(packet)
        return len(merged)
