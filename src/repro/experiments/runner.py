"""The trace-driven simulation harness (Figure 6).

Reproduces the paper's experimental procedure exactly:

1. synthesize background traffic for a site profile (the paper replays
   the captured trace; we replay the calibrated synthetic equivalent);
2. superpose a constant-rate SYN flood of per-router rate f_i over a
   10-minute window whose start is drawn uniformly from the paper's
   per-site range (3–9 min for the half-hour UNC traces, 3–136 min for
   the three-hour Auckland traces, at whole minutes);
3. run the SYN-dog CUSUM pipeline over the mixed counts;
4. record whether the alarm fired inside the attack window and after
   how many observation periods.

``run_detection_sweep`` repeats this over seeds and aggregates into the
rows of Tables 2 and 3.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..attack.ddos import TYPICAL_ATTACK_DURATION
from ..attack.flooder import FloodSource
from ..attack.patterns import RatePattern
from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import DetectionResult, SynDog
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..trace.events import CountTrace
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import AUCKLAND, UNC, SiteProfile
from ..trace.synthetic import generate_count_trace
from .metrics import DetectionPerformance, TrialOutcome, aggregate_trials

__all__ = [
    "attack_start_range_minutes",
    "run_normal_operation",
    "run_detection_trial",
    "run_detection_sweep",
    "sweep_trial_configs",
    "DetectionTrialConfig",
]


def attack_start_range_minutes(profile: SiteProfile) -> Tuple[int, int]:
    """The paper's attack-start windows: 3–9 minutes into the half-hour
    UNC traces, 3–136 minutes into the three-hour Auckland traces.
    Other/shorter profiles get a window that keeps the whole 10-minute
    attack inside the trace."""
    if profile.name == "Auckland":
        return (3, 136)
    if profile.name == "UNC":
        return (3, 9)
    latest = int(profile.duration / 60.0) - int(TYPICAL_ATTACK_DURATION / 60.0) - 1
    return (3, max(3, latest))


def run_normal_operation(
    profile: SiteProfile,
    seed: int,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    duration: Optional[float] = None,
) -> DetectionResult:
    """Run the detector over pure background traffic (the Figure 5
    experiment: y_n should stay far below N and raise no alarm)."""
    trace = generate_count_trace(
        profile, seed=seed, period=parameters.observation_period, duration=duration
    )
    detector = SynDog(parameters=parameters)
    return detector.observe_counts(trace.counts)


@dataclass(frozen=True)
class DetectionTrialConfig:
    """Parameters of one mixed-traffic trial."""

    profile: SiteProfile
    flood_rate: float
    seed: int
    attack_start: float
    attack_duration: float = TYPICAL_ATTACK_DURATION
    parameters: SynDogParameters = DEFAULT_PARAMETERS
    pattern: Optional[RatePattern] = None  #: overrides constant f_i


def run_detection_trial(
    config: DetectionTrialConfig,
    obs: Optional[Instrumentation] = None,
) -> TrialOutcome:
    """One full Figure 6 trial; see module docstring.

    With instrumentation enabled the trial's wall-clock (generation +
    mixing + detection, measured on :func:`time.perf_counter`) lands in
    the ``trial_seconds{site}`` histogram and a ``trial`` event.  The
    inner detector deliberately stays on the null default — per-period
    events from thousands of Monte-Carlo trials would drown the log.
    """
    obs = resolve_instrumentation(obs)
    trial_start = time.perf_counter()
    profile = config.profile
    parameters = config.parameters
    background = generate_count_trace(
        profile, seed=config.seed, period=parameters.observation_period
    )
    flood = FloodSource(
        pattern=(
            config.pattern if config.pattern is not None else float(config.flood_rate)
        )
    )
    window = AttackWindow(config.attack_start, config.attack_duration)
    if window.end > background.duration:
        raise ValueError(
            f"attack window [{window.start}, {window.end}) exceeds the "
            f"{background.duration}s trace"
        )
    mixed = mix_flood_into_counts(background, flood, window)
    detector = SynDog(parameters=parameters)
    result = detector.observe_counts(mixed.counts)
    delay = result.detection_delay_periods(window.start)
    # Count a detection only when the alarm fires during the attack
    # (alarms after the flood ends would be useless operationally, and
    # the paper's detection probabilities are per-attack).
    attack_periods = config.attack_duration / parameters.observation_period
    detected = delay is not None and delay <= attack_periods
    outcome = TrialOutcome(
        site=profile.name,
        flood_rate=config.flood_rate,
        seed=config.seed,
        attack_start=window.start,
        attack_duration=config.attack_duration,
        detected=detected,
        delay_periods=delay if detected else None,
        max_statistic=result.max_statistic,
    )
    if obs.enabled:
        elapsed = time.perf_counter() - trial_start
        obs.registry.histogram(
            "trial_seconds",
            "Wall-clock per detection trial",
            ("site",),
        ).labels(profile.name).observe(elapsed)
        obs.registry.counter(
            "trials_total",
            "Detection trials run, by site and verdict",
            ("site", "detected"),
        ).labels(profile.name, str(detected).lower()).inc()
        if obs.events.enabled:
            obs.events.emit(
                "trial",
                site=profile.name,
                flood_rate=config.flood_rate,
                seed=config.seed,
                attack_start=window.start,
                detected=detected,
                delay_periods=outcome.delay_periods,
                max_statistic=result.max_statistic,
                wall_seconds=elapsed,
            )
    return outcome


def sweep_trial_configs(
    profile: SiteProfile,
    flood_rates: Sequence[float],
    num_trials: int = 20,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    base_seed: int = 0,
    attack_duration: float = TYPICAL_ATTACK_DURATION,
) -> List[DetectionTrialConfig]:
    """The sweep's full (rate, trial) grid, in canonical serial order.

    Every per-trial random draw — the seed, the attack-start minute —
    is made *here*, in the parent, so the grid is a pure function of
    the sweep arguments and can be dealt to any number of workers
    without perturbing a single RNG stream.
    """
    start_lo, start_hi = attack_start_range_minutes(profile)
    configs: List[DetectionTrialConfig] = []
    for rate in flood_rates:
        # NOTE: not Python's hash() — string hashing is randomized per
        # process, which would make the sweep non-reproducible between
        # runs.  crc32 over a canonical string is stable everywhere.
        start_seed = zlib.crc32(
            f"{profile.name}:{rate}:{base_seed}".encode("utf-8")
        )
        start_rng = random.Random(start_seed)
        for trial in range(num_trials):
            start_minute = start_rng.randint(start_lo, start_hi)
            configs.append(
                DetectionTrialConfig(
                    profile=profile,
                    flood_rate=rate,
                    seed=base_seed + trial,
                    attack_start=60.0 * start_minute,
                    attack_duration=attack_duration,
                    parameters=parameters,
                )
            )
    return configs


def run_detection_sweep(
    profile: SiteProfile,
    flood_rates: Sequence[float],
    num_trials: int = 20,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    base_seed: int = 0,
    attack_duration: float = TYPICAL_ATTACK_DURATION,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
) -> List[DetectionPerformance]:
    """The Table 2 / Table 3 experiment: sweep f_i, many randomized
    trials each, aggregate probability and mean delay.

    ``workers`` > 1 shards the (rate, trial) grid across processes via
    :mod:`repro.parallel`; every trial's seed and attack start are
    fixed by :func:`sweep_trial_configs` before sharding, so the rows —
    and the observability stream, wall-clock fields aside — match the
    serial run exactly (``workers=None`` means every core).
    """
    obs = resolve_instrumentation(obs)
    configs = sweep_trial_configs(
        profile, flood_rates, num_trials, parameters, base_seed,
        attack_duration,
    )
    from ..parallel import WorkPlan, effective_workers, run_plan

    if effective_workers(workers) == 1:
        outcomes = []
        with obs.tracer.span("runner.sweep"):
            for config in configs:
                outcomes.append(run_detection_trial(config, obs=obs))
    else:
        plan = WorkPlan.partition(configs)
        with obs.tracer.span("runner.sweep"):
            outcomes = run_plan(
                plan, run_detection_trial, workers=workers, obs=obs
            )
    # The grid is rate-major (sweep_trial_configs), so row i's trials
    # are the i-th block of num_trials outcomes.
    rows: List[DetectionPerformance] = []
    for i, rate in enumerate(flood_rates):
        block = outcomes[i * num_trials:(i + 1) * num_trials]
        rows.append(aggregate_trials(rate, block))
    return rows
