"""Machine-readable export of experiment artifacts.

The ASCII rendering in :mod:`repro.experiments.report` is for humans;
this module serializes the same artifacts as plain JSON for external
plotting (matplotlib notebooks, gnuplot, spreadsheets).  Everything is
converted to JSON-native types — no numpy scalars, no dataclasses — so
the output loads anywhere.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.syndog import DetectionResult
from .figures import FigureSeries
from .forensics import AttackReport
from .metrics import DetectionPerformance
from .tables import DetectionTableRow

__all__ = [
    "detection_result_to_dict",
    "figure_to_dict",
    "table_rows_to_dict",
    "attack_report_to_dict",
    "campaign_result_to_dict",
    "sensitivity_cells_to_dict",
    "save_json",
]

PathLike = Union[str, Path]


def _clean(value: Any) -> Any:
    """Make a value JSON-safe (inf/nan → None, tuples → lists)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, tuple):
        return [_clean(item) for item in value]
    if isinstance(value, list):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {key: _clean(item) for key, item in value.items()}
    return value


def detection_result_to_dict(result: DetectionResult) -> Dict[str, Any]:
    """Serialize a full detection run: the per-period pipeline view plus
    the verdict."""
    return _clean({
        "alarmed": result.alarmed,
        "first_alarm_period": result.first_alarm_period,
        "first_alarm_time": result.first_alarm_time,
        "max_statistic": result.max_statistic,
        "periods": [
            {
                "index": record.period_index,
                "start": record.start_time,
                "end": record.end_time,
                "syn": record.syn_count,
                "synack": record.synack_count,
                "k_bar": record.k_bar,
                "x": record.x,
                "y": record.statistic,
                "alarm": record.alarm,
            }
            for record in result.records
        ],
    })


def figure_to_dict(figure: FigureSeries) -> Dict[str, Any]:
    """Serialize one figure panel: times plus every named series."""
    return _clean({
        "name": figure.name,
        "times": list(figure.times),
        "series": {label: list(values) for label, values in figure.series.items()},
        "annotations": [
            {"time": instant, "label": label}
            for instant, label in figure.annotations
        ],
    })


def table_rows_to_dict(
    rows: Sequence[DetectionTableRow], title: str = ""
) -> Dict[str, Any]:
    """Serialize a Table 2/3-style paper-vs-measured sweep."""
    return _clean({
        "title": title,
        "rows": [
            {
                "flood_rate": row.flood_rate,
                "paper_probability": row.paper_probability,
                "paper_detection_time": row.paper_detection_time,
                "measured_probability": row.measured.detection_probability,
                "measured_detection_time": row.measured.mean_detection_time,
                "measured_detection_time_std": row.measured.detection_time_std,
                "num_trials": row.measured.num_trials,
            }
            for row in rows
        ],
    })


def attack_report_to_dict(report: AttackReport) -> Dict[str, Any]:
    """Serialize a forensic attack report."""
    return _clean({
        "detected": report.detected,
        "complete": report.complete,
        "alarm_time": report.alarm_time,
        "estimated_onset_time": report.estimated_onset_time,
        "estimated_end_time": report.estimated_end_time,
        "estimated_duration": report.estimated_duration,
        "estimated_rate": report.estimated_rate,
        "baseline_x": report.baseline_x,
        "attack_x": report.attack_x,
    })


def campaign_result_to_dict(result: "CampaignResult") -> Dict[str, Any]:
    """Serialize a fleet campaign: the federation view plus every
    network's outcome.  Timestamp-free and fully determined by the
    campaign inputs, so two runs with the same seeds — at *any*
    ``--workers`` value — produce byte-identical files (the contract
    ``tests/parallel/test_differential.py`` and CI pin down)."""
    return _clean({
        "aggregate_rate": result.aggregate_rate,
        "num_networks": result.num_networks,
        "attack_start": result.attack_start,
        "attack_duration": result.attack_duration,
        "detection_fraction": result.detection_fraction,
        "first_alarm_delay": result.first_alarm_delay,
        "attributable_rate": result.attributable_rate,
        "attributable_fraction": result.attributable_fraction,
        "outcomes": [
            {
                "network_id": outcome.network_id,
                "flood_rate": outcome.flood_rate,
                "detected": outcome.detected,
                "delay_periods": outcome.delay_periods,
                "max_statistic": round(outcome.max_statistic, 9),
            }
            for outcome in result.outcomes
        ],
    })


def sensitivity_cells_to_dict(
    cells: Sequence["SensitivityCell"], site: str = ""
) -> Dict[str, Any]:
    """Serialize a parameter-sensitivity sweep (deterministic for the
    same grid + seeds, any worker count)."""
    return _clean({
        "site": site,
        "cells": [
            {
                "drift": cell.drift,
                "threshold": cell.threshold,
                "false_alarm_onsets": cell.false_alarm_onsets,
                "normal_periods": cell.normal_periods,
                "false_alarm_rate": round(cell.false_alarm_rate, 9),
                "detection_probability": cell.detection_probability,
                "mean_delay_periods": cell.mean_delay_periods,
                "f_min": round(cell.f_min, 9),
            }
            for cell in cells
        ],
    })


def save_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write a serialized artifact with stable formatting (sorted keys,
    two-space indent) so exports diff cleanly under version control."""
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
