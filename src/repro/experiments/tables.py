"""Regeneration of the paper's tables.

Each function returns structured rows carrying both the paper's
reported values and our measured ones, plus a ``render()``-ready ASCII
form via :mod:`repro.experiments.report`.  The benchmark files under
``benchmarks/`` are thin wrappers that call these and print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..trace.profiles import AUCKLAND, HARVARD, LBL, UNC, SiteProfile
from ..trace.stats import summarize_counts
from ..trace.synthetic import generate_count_trace
from .metrics import DetectionPerformance
from .report import render_table
from .runner import run_detection_sweep

__all__ = [
    "TABLE2_PAPER",
    "TABLE3_PAPER",
    "table1",
    "table2",
    "table3",
    "detection_table",
    "DetectionTableRow",
]

#: Table 2 (UNC): f_i -> (detection probability, detection time in periods)
TABLE2_PAPER: Dict[float, Tuple[float, float]] = {
    37.0: (0.8, 19.8),
    40.0: (1.0, 13.25),
    45.0: (1.0, 8.65),
    60.0: (1.0, 4.0),
    80.0: (1.0, 2.0),
    120.0: (1.0, 1.0),
}

#: Table 3 (Auckland): f_i -> (detection probability, detection time)
TABLE3_PAPER: Dict[float, Tuple[float, float]] = {
    1.5: (0.55, 20.64),
    1.75: (0.95, 12.95),
    2.0: (1.0, 7.85),
    5.0: (1.0, 2.0),
    10.0: (1.0, 1.0),  # paper reports "< 1"
}


def table1(seed: int = 0) -> str:
    """Table 1: a summary of the trace features.

    Regenerated from the synthetic profiles; durations and traffic
    types must match the paper verbatim, and the measured per-period
    volumes document the calibration.
    """
    rows: List[List[object]] = []
    for profile in (LBL, HARVARD, UNC, AUCKLAND):
        trace = generate_count_trace(profile, seed=seed)
        stats = summarize_counts(trace)
        names = (
            [profile.name]
            if profile.bidirectional
            else [f"{profile.name}-in", f"{profile.name}-out"]
        )
        for name in names:
            rows.append(
                [
                    name,
                    stats.duration,
                    "Bi-directional" if profile.bidirectional else "Uni-directional",
                    round(stats.mean_syn, 1),
                    round(stats.mean_synack, 1),
                    round(stats.syn_synack_correlation, 3),
                ]
            )
    return render_table(
        ["Trace", "Duration", "Traffic type", "SYN/period", "SYN-ACK/period", "corr"],
        rows,
        title="Table 1: A summary of the trace features (synthetic calibration)",
    )


@dataclass(frozen=True)
class DetectionTableRow:
    """One f_i row with paper and measured values side by side."""

    flood_rate: float
    paper_probability: float
    paper_detection_time: float
    measured: DetectionPerformance

    @property
    def probability_error(self) -> float:
        return abs(self.measured.detection_probability - self.paper_probability)


def detection_table(
    profile: SiteProfile,
    paper_rows: Dict[float, Tuple[float, float]],
    num_trials: int = 20,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    base_seed: int = 0,
    workers: Optional[int] = 1,
) -> List[DetectionTableRow]:
    """Run the sweep behind Table 2 or 3 and pair rows with the paper.

    ``workers`` > 1 shards the trials across processes
    (:mod:`repro.parallel`); the rows are identical either way.
    """
    rates = sorted(paper_rows)
    performances = run_detection_sweep(
        profile,
        rates,
        num_trials=num_trials,
        parameters=parameters,
        base_seed=base_seed,
        workers=workers,
    )
    return [
        DetectionTableRow(
            flood_rate=rate,
            paper_probability=paper_rows[rate][0],
            paper_detection_time=paper_rows[rate][1],
            measured=performance,
        )
        for rate, performance in zip(rates, performances)
    ]


def _render_detection_table(
    title: str, rows: Sequence[DetectionTableRow]
) -> str:
    return render_table(
        [
            "f_i (SYN/s)",
            "paper prob",
            "measured prob",
            "paper time (t0)",
            "measured time (t0)",
        ],
        [
            [
                row.flood_rate,
                row.paper_probability,
                round(row.measured.detection_probability, 2),
                row.paper_detection_time,
                (
                    round(row.measured.mean_detection_time, 2)
                    if row.measured.mean_detection_time is not None
                    else None
                ),
            ]
            for row in rows
        ],
        title=title,
    )


def table2(
    num_trials: int = 20, base_seed: int = 0, workers: Optional[int] = 1
) -> Tuple[List[DetectionTableRow], str]:
    """Table 2: detection performance of the SYN-dog at UNC."""
    rows = detection_table(
        UNC, TABLE2_PAPER, num_trials=num_trials, base_seed=base_seed,
        workers=workers,
    )
    return rows, _render_detection_table(
        "Table 2: Detection Performance of the SYN-dog at UNC", rows
    )


def table3(
    num_trials: int = 20, base_seed: int = 0, workers: Optional[int] = 1
) -> Tuple[List[DetectionTableRow], str]:
    """Table 3: detection performance of the SYN-dog at Auckland."""
    rows = detection_table(
        AUCKLAND, TABLE3_PAPER, num_trials=num_trials, base_seed=base_seed,
        workers=workers,
    )
    return rows, _render_detection_table(
        "Table 3: Detection Performance of the SYN-dog at Auckland", rows
    )
