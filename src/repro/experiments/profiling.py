"""Profiling workload: a small, deterministic packet-level campaign
that exercises every named pipeline stage end to end.

The :mod:`repro.obs.profiler` attributes cost to stages, but a stage
only shows up when something drives it.  This module is that driver —
the canonical workload behind ``repro profile`` and the committed
``BENCH_profile.json`` baseline.  Per network it:

1. synthesizes a packet trace (:func:`~repro.trace.synthetic
   .generate_packet_trace`),
2. serializes both directions to in-memory pcap images and parses them
   back through :class:`~repro.pcap.reader.PcapReader`
   (→ ``pcap.parse``),
3. replays the streams through a one-member
   :class:`~repro.router.fleet.Federation`
   (→ ``federation.feed`` → ``classify`` → ``sniff.update`` →
   ``cusum.step``).

``merge.fold`` comes from the :func:`~repro.parallel.run_plan` merge —
the campaign always goes through the sharded engine, even at
``workers=1`` (the engine runs the same shard loop inline), so the
profiler sees the identical call/packet counts at any worker count.
That is what makes cost-model profiles byte-identical across
``--workers``: the document is a pure function of those counts.

The member network is the :class:`~repro.trace.synthetic.AddressPlan`
default stub (``152.2.0.0/16``) so generated client sources pass the
leaf router's stub-membership check and every packet is forwarded.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Network
from ..pcap.reader import PcapReader
from ..pcap.writer import packets_to_pcap_bytes
from ..router.fleet import Federation
from ..trace.profiles import SiteProfile
from ..trace.synthetic import generate_packet_trace

__all__ = [
    "DEFAULT_PROFILE_DURATION",
    "PROFILE_STUB_NETWORK",
    "ProfileTask",
    "profile_network",
    "run_profile_campaign",
]

#: Seconds of synthetic trace per profiled network.  Long enough to
#: cross several observation periods (so ``cusum.step`` runs), short
#: enough that ``repro profile`` stays a sub-second smoke workload.
DEFAULT_PROFILE_DURATION = 60.0

#: The AddressPlan default stub network — client sources are drawn
#: from it, so the federation member must claim the same prefix.
PROFILE_STUB_NETWORK = "152.2.0.0/16"


@dataclass(frozen=True)
class ProfileTask:
    """One network's profiling workload — a plain, picklable grid item
    for :mod:`repro.parallel` (mirrors campaign.NetworkTask).

    ``fastpath`` selects the ingestion arm: the columnar batched
    pipeline (default; stages ``fastpath.parse`` / ``fastpath.classify``
    / ``cusum.step``) or the per-packet object pipeline (the
    differential oracle; stages ``pcap.parse`` / ``federation.feed`` /
    ``classify`` / ``sniff.update`` / ``cusum.step``)."""

    network_id: int
    profile: SiteProfile
    seed: int
    duration: float
    parameters: SynDogParameters
    fastpath: bool = True


def profile_network(
    task: ProfileTask,
    obs: Optional[Instrumentation] = None,
) -> Dict[str, Any]:
    """Drive one network's traffic through the full packet pipeline,
    instrumenting via *obs*.  A pure function of the task, shared by
    the inline and sharded paths.

    The two arms produce the *same outcome dict* for the same task —
    the fastpath is byte-identical to the object pipeline on decoded
    packet counts and alarm transitions — they differ only in which
    profiler stages the work is attributed to."""
    obs = resolve_instrumentation(obs)
    trace = generate_packet_trace(
        task.profile, seed=task.seed, duration=task.duration
    )
    outbound_image = packets_to_pcap_bytes(trace.outbound)
    inbound_image = packets_to_pcap_bytes(trace.inbound)
    if task.fastpath:
        from ..core.syndog import SynDog
        from ..fastpath.pipeline import (
            _drive_detector,
            _merge_columns,
            _periodize,
            scan_capture,
        )

        out_cols = scan_capture(outbound_image, obs=obs)
        in_cols = scan_capture(inbound_image, obs=obs)
        detector = SynDog(parameters=task.parameters, obs=obs)
        merged = _merge_columns(out_cols, in_cols)
        grid = _periodize(merged, task.parameters.observation_period)
        _drive_detector(detector, merged, grid, stop_at_first_alarm=False)
        # The federation bus records the agent's *first* alarm during the
        # feed (the trailing flush never relays); mirror that so the two
        # arms return the same outcome dict.
        fed_records = detector.records[: grid.closed_periods]
        alarms = 1 if any(record.alarm for record in fed_records) else 0
        return {
            "network_id": task.network_id,
            "packets": out_cols.decoded + in_cols.decoded,
            "outbound": out_cols.decoded,
            "inbound": in_cols.decoded,
            "alarms": alarms,
        }
    # Round-trip through the pcap layer so parsing is part of the
    # profile — the reader is the pipeline's real ingress.
    outbound = list(
        PcapReader(
            io.BytesIO(outbound_image), obs=obs
        ).iter_packets(strict=False)
    )
    inbound = list(
        PcapReader(
            io.BytesIO(inbound_image), obs=obs
        ).iter_packets(strict=False)
    )
    name = f"net-{task.network_id}"
    federation = Federation(parameters=task.parameters, obs=obs)
    federation.add_network(name, IPv4Network.parse(PROFILE_STUB_NETWORK))
    processed = federation.feed(name, outbound, inbound)
    # Close the trailing observation period so ``cusum.step`` runs even
    # when the trace is shorter than one full period — the flush is
    # count-based and therefore deterministic.
    _, agent = federation.member(name)
    agent.detector.flush()
    return {
        "network_id": task.network_id,
        "packets": processed,
        "outbound": len(outbound),
        "inbound": len(inbound),
        "alarms": len(federation.alarms),
    }


def run_profile_campaign(
    profile: SiteProfile,
    networks: int = 2,
    base_seed: int = 0,
    duration: float = DEFAULT_PROFILE_DURATION,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
    fastpath: bool = True,
) -> List[Dict[str, Any]]:
    """Profile *networks* independent stub networks and return their
    per-network summaries in grid order.

    Always executes through :func:`~repro.parallel.run_plan` — never a
    separate serial loop — so the profiler's stage counts (and hence
    the cost-model profile document) are identical at any ``workers``.

    ``fastpath`` picks which ingestion arm every task profiles; the
    outcome dicts are identical either way (the columnar path is
    byte-identical to the object oracle), only the stage attribution
    differs.
    """
    obs = resolve_instrumentation(obs)
    tasks = [
        ProfileTask(
            network_id=network_id,
            profile=profile,
            seed=base_seed * 100_003 + network_id,
            duration=duration,
            parameters=parameters,
            fastpath=fastpath,
        )
        for network_id in range(networks)
    ]
    from ..parallel import WorkPlan, run_plan

    return run_plan(
        WorkPlan.partition(tasks), profile_network,
        workers=workers, obs=obs,
    )
