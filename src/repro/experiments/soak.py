"""The soak campaign: days of continuous operation, judged by SLOs.

SYN-dog's claim is an always-on sentinel — CUSUM keeps the false-alarm
budget bounded over indefinite operation (the Eq. 8 operating point),
not over a half-hour trace.  The soak harness runs the claim at that
horizon: simulated **days** are cut into fixed-length *epochs*, and
every epoch drives the full production loop —

    synthesize → detect → checkpoint → restore → continue

— with attack windows on a fixed cadence (every 5th epoch floods),
fault bursts on another (every 5th epoch loses reports, once within and
once beyond the staleness cap), and a mid-epoch checkpoint/restore
whose continuation is compared bit-for-bit against an uninterrupted
reference detector.

Epochs shard over ``--workers`` through the standard WorkPlan/engine
machinery: the shard layout is a pure function of the epoch count, so
the final soak document is byte-identical at any worker count.  Each
epoch feeds ground-truth indicator series (``soak_false_alarm``,
``soak_detection_miss``, ``soak_detection_latency_periods``) into the
shard store; after the merge the parent

* replays the per-epoch detector trajectories into one **long-lived
  bounded store + flight recorder** and samples the resource ledger
  (:mod:`repro.obs.ledger`) at every epoch boundary — the occupancy
  trajectory whose per-day high-water marks must stay flat
  (``BENCH_soak.json`` gates growth at 5%);
* evaluates the builtin SLOs (:mod:`repro.obs.slo`) as multi-window
  burn rates at every epoch boundary (the burn timeline) and at the
  final watermark (the verdicts);
* replays the builtin + SLO alert rules over the merged store at epoch
  boundaries into a deterministic alerts document.

Wall-clock tracer spans (detect/checkpoint/restore per epoch) ride the
``soak_epoch`` event as ``span_seconds`` — excluded from the canonical
projection like every timing — while their *counts* land in the JSON
report.

Everything in :meth:`SoakReport.to_dict` is a pure function of the
scenario; no timestamps, mappings sorted — the byte-identity contract
CI diffs across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..attack.flooder import FloodSource
from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import SynDog
from ..obs import ledger
from ..obs.recorder import FlightRecorder
from ..obs.runtime import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    enabled_instrumentation,
)
from ..obs.slo import SLOEngine, builtin_slos
from ..obs.tracing import Tracer
from ..obs.tsdb import TimeSeriesDB
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import get_profile
from ..trace.synthetic import generate_count_trace

__all__ = [
    "SoakEpochTask",
    "SoakReport",
    "run_soak_epoch",
    "run_soak_campaign",
    "soak_alerts_document",
    "render_soak_report",
    "SECONDS_PER_DAY",
]

SECONDS_PER_DAY = 86400.0

#: Epoch cadences (attack on one residue, faults on another — both
#: divide the epochs-per-day evenly, so every simulated day sees the
#: identical pattern and cross-day ledger comparisons are like-for-like).
_ATTACK_EVERY = 5
_ATTACK_PHASE = 2
_FAULT_EVERY = 5
_FAULT_PHASE = 4

_AGENT = "soak"
_ROUND = 9


@dataclass(frozen=True)
class SoakEpochTask:
    """One epoch's full scenario — a picklable grid item.

    Every field is derived from the campaign arguments; the worker
    regenerates its traffic deterministically from
    ``derive_seed("soak", seed, epoch_index)``.
    """

    epoch_index: int
    site: str
    seed: int
    periods_per_epoch: int
    parameters: SynDogParameters
    staleness_cap: int
    attack: bool
    fault: bool
    rate: float
    attack_start_period: int
    attack_duration_periods: int
    latency_target_periods: int
    grace_periods: int
    checkpoint_period: int

    @property
    def epoch_seconds(self) -> float:
        return self.periods_per_epoch * self.parameters.observation_period

    @property
    def offset(self) -> float:
        """Absolute start time of this epoch on the campaign clock."""
        return self.epoch_index * self.epoch_seconds


def _fault_periods(task: SoakEpochTask) -> Tuple[int, ...]:
    """Local period indices whose reports are lost in a fault epoch:
    one burst the staleness cap bridges (carry-forward) and one it does
    not (hold) — both degraded-mode branches, every fault epoch."""
    if not task.fault:
        return ()
    cap = task.staleness_cap
    n = task.periods_per_epoch
    short_at = min(n // 5, n - 1)
    long_at = min((3 * n) // 5, n - 1)
    short = range(short_at, min(short_at + cap, n))
    long = range(long_at, min(long_at + cap + 2, n))
    return tuple(sorted(set(short) | set(long)))


def _attacked_periods(task: SoakEpochTask) -> Tuple[int, ...]:
    """Local periods overlapping the attack window (ground truth)."""
    if not task.attack:
        return ()
    start = task.attack_start_period
    end = min(start + task.attack_duration_periods, task.periods_per_epoch)
    return tuple(range(start, end))


def run_soak_epoch(
    task: SoakEpochTask, obs: Optional[Instrumentation] = None
) -> Dict[str, Any]:
    """One epoch end to end: generate traffic, run the checkpointed
    subject against an uninterrupted reference, score ground truth,
    feed indicator series, and return a picklable payload."""
    from ..parallel import derive_seed

    obs = obs if obs is not None else NULL_INSTRUMENTATION
    params = task.parameters
    t0 = params.observation_period
    offset = task.offset
    tracer = Tracer()

    profile = get_profile(task.site)
    background = generate_count_trace(
        profile,
        seed=derive_seed("soak", task.seed, task.epoch_index),
        period=t0,
        duration=task.epoch_seconds,
    )
    trace = background
    if task.attack:
        trace = mix_flood_into_counts(
            background,
            FloodSource(pattern=task.rate),
            AttackWindow(
                task.attack_start_period * t0,
                task.attack_duration_periods * t0,
            ),
        )
    counts = list(trace.counts)[: task.periods_per_epoch]
    missing = frozenset(_fault_periods(task))

    def feed(dog: SynDog, i: int) -> Any:
        start_time = offset + i * t0
        if i in missing:
            return dog.observe_missing_period(start_time=start_time)
        syn, synack = counts[i]
        return dog.observe_period(syn, synack, start_time=start_time)

    # Reference arm: same inputs, never interrupted, never instrumented
    # (explicitly null so an installed process default cannot leak in).
    reference = SynDog(
        parameters=params, staleness_cap=task.staleness_cap,
        obs=NULL_INSTRUMENTATION, name=_AGENT,
    )
    reference_records = [
        feed(reference, i) for i in range(task.periods_per_epoch)
    ]

    # Subject arm: instrumented, checkpointed mid-epoch and rebuilt
    # from the checkpoint — the supervisor's restart path, every epoch.
    events = getattr(obs, "events", None)
    events_live = events is not None and getattr(events, "enabled", False)
    emitted_before = events.events_emitted if events_live else 0
    subject = SynDog(
        parameters=params, staleness_cap=task.staleness_cap,
        obs=obs, name=_AGENT,
    )
    records = []
    with tracer.span("soak.detect"):
        for i in range(task.checkpoint_period):
            records.append(feed(subject, i))
    with tracer.span("soak.checkpoint"):
        state = subject.checkpoint()
    with tracer.span("soak.restore"):
        subject = SynDog.restore(state, obs=obs, name=_AGENT)
    with tracer.span("soak.detect"):
        for i in range(task.checkpoint_period, task.periods_per_epoch):
            records.append(feed(subject, i))

    # Restore-continuity: the restored subject must continue the run
    # bit-identically to the uninterrupted reference.
    continuity_ok = all(
        (a.period_index, a.syn_count, a.synack_count, a.k_bar,
         a.x, a.statistic, a.alarm, a.degraded)
        == (b.period_index, b.syn_count, b.synack_count, b.k_bar,
            b.x, b.statistic, b.alarm, b.degraded)
        for a, b in zip(records, reference_records)
    ) and len(records) == len(reference_records)

    # Ground truth scoring.
    attacked = set(_attacked_periods(task))
    if attacked:
        last_attacked = max(attacked)
        excused = attacked | set(
            range(last_attacked + 1, last_attacked + 1 + task.grace_periods)
        )
    else:
        excused = set()
    false_alarm_flags = [
        1.0 if (record.alarm and i not in excused) else 0.0
        for i, record in enumerate(records)
    ]
    detected_latency: Optional[float] = None
    if attacked:
        first_attacked = min(attacked)
        deadline = first_attacked + task.latency_target_periods
        for i, record in enumerate(records):
            if record.alarm and first_attacked <= i <= deadline:
                detected_latency = float(i - first_attacked)
                break

    # Indicator series (ground truth the SLO engine consumes).  All
    # values are pure functions of the scenario, so the merged store is
    # worker-invariant.
    tsdb = obs.tsdb
    if getattr(tsdb, "enabled", False):
        for i, flag in enumerate(false_alarm_flags):
            tsdb.append(
                "soak_false_alarm", {}, offset + (i + 1) * t0, flag
            )
        if attacked:
            window_end = offset + (max(attacked) + 1) * t0
            tsdb.append(
                "soak_detection_miss", {}, window_end,
                0.0 if detected_latency is not None else 1.0,
            )
            if detected_latency is not None:
                tsdb.append(
                    "soak_detection_latency_periods", {}, window_end,
                    detected_latency,
                )

    spans = {
        name: {
            "count": stats.count,
            "total_seconds": stats.total_seconds,
            "min_seconds": stats.min_seconds,
            "max_seconds": stats.max_seconds,
        }
        for name, stats in sorted(tracer.stats().items())
    }
    payload: Dict[str, Any] = {
        "epoch_index": task.epoch_index,
        "attack": task.attack,
        "fault": task.fault,
        "continuity_ok": continuity_ok,
        "alarm_periods": sum(1 for r in records if r.alarm),
        "false_alarms": int(sum(false_alarm_flags)),
        "degraded_periods": sum(1 for r in records if r.degraded),
        "detected": (detected_latency is not None) if task.attack else None,
        "latency_periods": detected_latency,
        "records": [
            (r.syn_count, r.synack_count, r.k_bar, r.x, r.statistic,
             r.alarm, r.degraded)
            for r in records
        ],
        "spans": spans,
        "events_emitted": None,
    }
    if events_live:
        events.emit(
            "soak_epoch",
            epoch=task.epoch_index,
            attack=task.attack,
            fault=task.fault,
            continuity_ok=continuity_ok,
            alarm_periods=payload["alarm_periods"],
            false_alarms=payload["false_alarms"],
            degraded_periods=payload["degraded_periods"],
            detected=payload["detected"],
            latency_periods=detected_latency,
            restores=1,
            span_counts={name: s["count"] for name, s in spans.items()},
            span_seconds={
                name: s["total_seconds"] for name, s in spans.items()
            },
        )
        payload["events_emitted"] = events.events_emitted - emitted_before
    return payload


def _soak_epoch_worker(
    task: SoakEpochTask, obs: Instrumentation
) -> Dict[str, Any]:
    """Engine adapter (module-level: crosses the process boundary)."""
    return run_soak_epoch(task, obs=obs)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoakReport:
    """The full, deterministic record of one soak campaign."""

    site: str
    seed: int
    sim_days: int
    periods_per_epoch: int
    epochs: int
    parameters: SynDogParameters
    staleness_cap: int
    rate: float
    latency_target_periods: int
    grace_periods: int
    continuity_failures: Tuple[int, ...]
    restores: int
    attack_epochs: Tuple[int, ...]
    missed_epochs: Tuple[int, ...]
    latencies: Dict[int, float]
    false_alarms: int
    total_periods: int
    degraded_periods: int
    slo: Dict[str, Any]
    burn_timeline: List[Dict[str, Any]]
    flatness: Dict[str, Any]
    final_occupancy: Dict[str, float]
    alerts: Dict[str, Any]
    span_counts: Dict[str, int]
    span_seconds: Dict[str, float]
    events_emitted: int

    @property
    def continuity_ok(self) -> bool:
        return not self.continuity_failures

    @property
    def max_ledger_growth(self) -> Optional[float]:
        return self.flatness.get("max_growth")

    @property
    def healthy(self) -> bool:
        """The campaign's pass/fail: every restore continued
        bit-identically and no SLO is burning or exhausted."""
        return self.continuity_ok and self.slo.get("verdict") in (
            "ok", "no_data",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic, timestamp-free JSON image.  Span wall-clock
        seconds are deliberately absent — they can never be identical
        between two runs; the rendered report shows them instead."""
        epoch_seconds = (
            self.periods_per_epoch * self.parameters.observation_period
        )
        mean_latency = (
            sum(self.latencies.values()) / len(self.latencies)
            if self.latencies
            else None
        )
        return {
            "scenario": {
                "site": self.site,
                "seed": self.seed,
                "sim_days": self.sim_days,
                "periods_per_epoch": self.periods_per_epoch,
                "epochs": self.epochs,
                "epoch_seconds": epoch_seconds,
                "observation_period": self.parameters.observation_period,
                "threshold": self.parameters.threshold,
                "staleness_cap": self.staleness_cap,
                "rate": self.rate,
                "latency_target_periods": self.latency_target_periods,
                "grace_periods": self.grace_periods,
            },
            "continuity": {
                "epochs": self.epochs,
                "restores": self.restores,
                "failures": list(self.continuity_failures),
                "ok": self.continuity_ok,
            },
            "detection": {
                "attack_epochs": list(self.attack_epochs),
                "detected": len(self.latencies),
                "missed_epochs": list(self.missed_epochs),
                "latency_periods": {
                    str(epoch): round(latency, _ROUND)
                    for epoch, latency in sorted(self.latencies.items())
                },
                "mean_latency_periods": (
                    None if mean_latency is None
                    else round(mean_latency, _ROUND)
                ),
            },
            "false_alarms": {
                "count": self.false_alarms,
                "total_periods": self.total_periods,
            },
            "degraded_periods": self.degraded_periods,
            "slo": self.slo,
            "burn_timeline": self.burn_timeline,
            "ledger": {
                "flatness": self.flatness,
                "final_occupancy": {
                    name: self.final_occupancy[name]
                    for name in sorted(self.final_occupancy)
                },
            },
            "alerts": self.alerts,
            "spans": dict(sorted(self.span_counts.items())),
            "events_emitted": self.events_emitted,
            "healthy": self.healthy,
        }


def _epochs_per_day(periods_per_epoch: int, t0: float) -> int:
    epoch_seconds = periods_per_epoch * t0
    per_day = SECONDS_PER_DAY / epoch_seconds
    if abs(per_day - round(per_day)) > 1e-9 or round(per_day) < 1:
        raise ValueError(
            f"periods_per_epoch={periods_per_epoch} (epoch "
            f"{epoch_seconds:g}s) must divide a simulated day evenly"
        )
    return int(round(per_day))


def run_soak_campaign(
    site: str = "auckland",
    seed: int = 42,
    sim_days: int = 2,
    periods_per_epoch: int = 288,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    staleness_cap: int = 3,
    rate: float = 5.0,
    latency_target_periods: int = 30,
    grace_periods: int = 45,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
) -> SoakReport:
    """Run *sim_days* of continuous operation and judge the result.

    The default scenario: Auckland-sized site, 96-minute epochs
    (288 periods of t0 = 20 s; 15 epochs per day), a 5 SYN/s flood in
    every 5th epoch, report-loss bursts in every 5th (offset so attack
    and fault epochs never coincide), a checkpoint/restore at every
    epoch's midpoint.  Epochs always execute through
    :func:`repro.parallel.run_plan` — at any ``workers`` value the
    shard layout, merge order, and therefore the report bytes are
    identical.
    """
    from ..parallel import WorkPlan, run_plan

    if sim_days < 1:
        raise ValueError(f"sim_days must be >= 1: {sim_days}")
    t0 = parameters.observation_period
    per_day = _epochs_per_day(periods_per_epoch, t0)
    epochs = sim_days * per_day
    if obs is None:
        # A soak without an operator-supplied bundle still needs a
        # store to judge itself against — memory-only, no file sinks.
        obs = enabled_instrumentation(memory_events=True)
    attack_duration = max(1, min(15, periods_per_epoch // 4))
    attack_start = max(0, min(periods_per_epoch // 6, periods_per_epoch - attack_duration))
    tasks = [
        SoakEpochTask(
            epoch_index=epoch,
            site=site,
            seed=seed,
            periods_per_epoch=periods_per_epoch,
            parameters=parameters,
            staleness_cap=staleness_cap,
            attack=(epoch % _ATTACK_EVERY == _ATTACK_PHASE),
            fault=(epoch % _FAULT_EVERY == _FAULT_PHASE),
            rate=rate,
            attack_start_period=attack_start,
            attack_duration_periods=attack_duration,
            latency_target_periods=latency_target_periods,
            grace_periods=grace_periods,
            checkpoint_period=periods_per_epoch // 2,
        )
        for epoch in range(epochs)
    ]
    payloads = run_plan(
        WorkPlan.partition(tasks), _soak_epoch_worker,
        workers=workers, obs=obs,
    )

    epoch_seconds = periods_per_epoch * t0
    boundaries = [(epoch + 1) * epoch_seconds for epoch in range(epochs)]

    # ------------------------------------------------------------------
    # Long-lived store replay + resource ledger.
    #
    # Each shard held at most a few epochs, so no shard's occupancy
    # describes a process that ran for days.  The parent rebuilds that
    # process deterministically: every epoch's detector trajectory is
    # re-appended, in campaign order, into one bounded store and one
    # flight recorder, and the ledger samples their occupancy at each
    # epoch boundary — into the *parent* store (a self-sample would add
    # points to the structure under test).
    # ------------------------------------------------------------------
    retention = obs.tsdb.retention if obs.tsdb.enabled else 4096
    recorder_capacity = obs.recorder.capacity if obs.recorder.enabled else 120
    recorder_post = (
        obs.recorder.post_alarm_periods if obs.recorder.enabled else 5
    )
    replay_bundle = Instrumentation(
        tsdb=TimeSeriesDB(retention=retention, record_snapshots=False),
        recorder=FlightRecorder(
            capacity=recorder_capacity, post_alarm_periods=recorder_post
        ),
    )
    labels = {"agent": _AGENT}
    for task, payload in zip(tasks, payloads):
        offset = task.offset
        for i, (syn, synack, k_bar, x, statistic, alarm, degraded) in (
            enumerate(payload["records"])
        ):
            t = offset + (i + 1) * t0
            store = replay_bundle.tsdb
            store.append("syndog_delta", labels, t, float(syn - synack))
            store.append("syndog_x_n", labels, t, x)
            store.append("syndog_cusum", labels, t, statistic)
            store.append(
                "syndog_alarm_active", labels, t, 1.0 if alarm else 0.0
            )
            store.append(
                "syndog_degraded", labels, t, 1.0 if degraded else 0.0
            )
            replay_bundle.recorder.record(
                _AGENT,
                {
                    "period_index": int(round(t / t0)) - 1,
                    "end_time": t,
                    "statistic": statistic,
                    "k_bar": k_bar,
                    "x": x,
                    "alarm": alarm,
                    "degraded": degraded,
                    "threshold": parameters.threshold,
                },
            )
        extra = {}
        if payload["events_emitted"] is not None:
            extra["obs_ledger_event_sink_depth"] = float(
                payload["events_emitted"]
            )
        ledger.sample(
            replay_bundle,
            boundaries[task.epoch_index],
            into=obs.tsdb,
            extra=extra,
        )
    flatness = ledger.ledger_flatness(obs.tsdb)

    # ------------------------------------------------------------------
    # SLO burn-rate timeline + final verdicts over the merged store.
    # ------------------------------------------------------------------
    engine = SLOEngine(builtin_slos())
    burn_timeline: List[Dict[str, Any]] = []
    slo_doc: Dict[str, Any] = engine.evaluate(obs.tsdb, at=None)
    if obs.tsdb.enabled:
        for t in boundaries:
            doc = engine.record(obs.tsdb, at=t)
            burn_timeline.append(
                {
                    "t": t,
                    "verdict": doc["verdict"],
                    "slos": {
                        entry["name"]: {
                            "verdict": entry["verdict"],
                            "budget_consumed": entry["budget_consumed"],
                        }
                        for entry in doc["slos"]
                    },
                }
            )
        slo_doc = engine.evaluate(obs.tsdb, at=boundaries[-1])

    # Deterministic alerts document: builtin + SLO budget rules walked
    # over the epoch boundaries (the soak's reporting cadence).
    alerts_doc = soak_alerts_document(
        obs, parameters=parameters, times=boundaries
    )

    # Final live-parent occupancy — labeled apart from the replay
    # trajectory so the two ledgers stay separate series.
    final_occupancy = ledger.sample(
        obs,
        boundaries[-1],
        labels={"store": "live"},
    )

    # ------------------------------------------------------------------
    # Roll the per-epoch payloads up.
    # ------------------------------------------------------------------
    latencies = {
        p["epoch_index"]: p["latency_periods"]
        for p in payloads
        if p["latency_periods"] is not None
    }
    span_counts: Dict[str, int] = {}
    span_seconds: Dict[str, float] = {}
    for payload in payloads:
        for name, stats in payload["spans"].items():
            span_counts[name] = span_counts.get(name, 0) + stats["count"]
            span_seconds[name] = (
                span_seconds.get(name, 0.0) + stats["total_seconds"]
            )
    return SoakReport(
        site=get_profile(site).name,
        seed=seed,
        sim_days=sim_days,
        periods_per_epoch=periods_per_epoch,
        epochs=epochs,
        parameters=parameters,
        staleness_cap=staleness_cap,
        rate=rate,
        latency_target_periods=latency_target_periods,
        grace_periods=grace_periods,
        continuity_failures=tuple(
            p["epoch_index"] for p in payloads if not p["continuity_ok"]
        ),
        restores=len(payloads),
        attack_epochs=tuple(
            p["epoch_index"] for p in payloads if p["attack"]
        ),
        missed_epochs=tuple(
            p["epoch_index"]
            for p in payloads
            if p["attack"] and not p["detected"]
        ),
        latencies=latencies,
        false_alarms=sum(p["false_alarms"] for p in payloads),
        total_periods=sum(len(p["records"]) for p in payloads),
        degraded_periods=sum(p["degraded_periods"] for p in payloads),
        slo=slo_doc,
        burn_timeline=burn_timeline,
        flatness=flatness,
        final_occupancy=final_occupancy,
        alerts=alerts_doc,
        span_counts=span_counts,
        span_seconds=span_seconds,
        events_emitted=(
            obs.events.events_emitted
            if getattr(obs.events, "enabled", False)
            else 0
        ),
    )


def soak_alerts_document(
    obs: Instrumentation,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    times: Optional[List[float]] = None,
) -> Dict[str, Any]:
    """Builtin + SLO budget-exhaustion rules evaluated over the merged
    store — at *times* (the soak passes epoch boundaries: a multi-day
    store holds thousands of per-period watermarks, and the boundary
    cadence is the soak's reporting grid) or, when omitted, at every
    retained watermark like the chaos replay."""
    from ..obs.alerts import AlertManager, builtin_rules, replay_rules

    rules = builtin_rules(threshold=parameters.threshold, slo=True)
    if times is None:
        return replay_rules(rules, obs.tsdb).to_dict()
    manager = AlertManager(rules=rules, tsdb=obs.tsdb)
    for t in times:
        manager.evaluate(t)
    if times:
        manager.close(times[-1])
    return manager.to_dict()


def render_soak_report(report: SoakReport) -> str:
    """Human-readable summary (the CLI's stdout) — the one place span
    wall-clock totals appear."""
    doc = report.to_dict()
    slo_lines = [
        f"  {entry['name']:<22} {entry['verdict']:<10} "
        f"budget_consumed={entry['budget_consumed']}"
        for entry in doc["slo"]["slos"]
    ]
    growth = report.max_ledger_growth
    span_lines = [
        f"  {name:<18} x{report.span_counts[name]}  "
        f"{report.span_seconds.get(name, 0.0):.3f}s total"
        for name in sorted(report.span_counts)
    ]
    lines = [
        f"site             : {report.site}  (seed {report.seed})",
        f"horizon          : {report.sim_days} simulated day(s), "
        f"{report.epochs} epochs x {report.periods_per_epoch} periods",
        f"continuity       : {report.restores} restore(s), "
        + ("all bit-identical" if report.continuity_ok
           else f"FAILED epochs {list(report.continuity_failures)}"),
        f"detection        : {len(report.latencies)}/"
        f"{len(report.attack_epochs)} attack windows caught"
        + (f", mean delay {sum(report.latencies.values()) / len(report.latencies):.1f} periods"
           if report.latencies else ""),
        f"false alarms     : {report.false_alarms} in "
        f"{report.total_periods} periods "
        f"({report.degraded_periods} degraded)",
        "slo verdicts     : " + doc["slo"]["verdict"],
        *slo_lines,
        f"ledger           : max high-water growth "
        + ("n/a" if growth is None else f"{100 * growth:.2f}%")
        + " across days",
        "spans            :",
        *span_lines,
        "verdict          : "
        + ("continuous operation healthy"
           if report.healthy else "SOAK UNHEALTHY"),
    ]
    return "\n".join(lines)
