"""Post-alarm attack characterization (forensics).

An alarm tells the operator *that* a flooding source is active; the
next questions are *since when*, *how hard*, and *is it over*.  All
three are answerable from the same per-period evidence the detector
already collected:

* **onset** — the offline (posterior) change-point test of [1, 4] run
  over the normalized series localizes the attack start far more
  precisely than the alarm time (the CUSUM alarm lags onset by the
  detection delay, by design);
* **rate** — during the attack the mean normalized excess is
  E[X] − c = f·t0/K̄, so the flood rate is recoverable as
  f̂ = (mean attacked X − baseline c) · K̄ / t0;
* **end** — after the flood stops, X returns to its baseline; the end
  is localized by the last period whose X exceeds the attack/baseline
  midpoint.

This turns the detector's evidence into the report an operator files —
and each estimate is validated against the mixer's ground truth in the
test suite and the ``test_forensics_accuracy`` bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.sequential import posterior_mean_shift_test
from ..core.syndog import DetectionResult

__all__ = ["AttackReport", "characterize_attack"]


@dataclass(frozen=True)
class AttackReport:
    """The forensic summary of one detected attack."""

    detected: bool
    alarm_time: Optional[float]              #: when the CUSUM fired
    estimated_onset_time: Optional[float]    #: posterior change point
    estimated_end_time: Optional[float]      #: last clearly-attacked period end
    estimated_rate: Optional[float]          #: SYN/s seen by this router
    estimated_duration: Optional[float]      #: seconds
    baseline_x: float                        #: pre-attack mean of X_n
    attack_x: Optional[float]                #: attacked-period mean of X_n

    @property
    def complete(self) -> bool:
        """True when every estimate could be formed."""
        return (
            self.detected
            and self.estimated_onset_time is not None
            and self.estimated_end_time is not None
            and self.estimated_rate is not None
        )


def characterize_attack(
    result: DetectionResult,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    posterior_threshold: float = 4.0,
) -> AttackReport:
    """Build the forensic report from a completed detection run.

    Works on the :class:`DetectionResult` alone — no access to the raw
    trace is needed, because the records carry X_n and K̄ per period.
    """
    records = result.records
    if not records:
        return AttackReport(
            detected=False, alarm_time=None, estimated_onset_time=None,
            estimated_end_time=None, estimated_rate=None,
            estimated_duration=None, baseline_x=0.0, attack_x=None,
        )
    xs = [record.x for record in records]
    period = records[0].end_time - records[0].start_time

    if not result.alarmed:
        baseline = sum(xs) / len(xs)
        return AttackReport(
            detected=False, alarm_time=None, estimated_onset_time=None,
            estimated_end_time=None, estimated_rate=None,
            estimated_duration=None, baseline_x=baseline, attack_x=None,
        )

    # ------------------------------------------------------------------
    # Onset: posterior change-point over the prefix ending shortly after
    # the alarm (the suffix after attack end would otherwise register as
    # a second change and bias the split).
    # ------------------------------------------------------------------
    alarm_index = result.first_alarm_period
    prefix_end = min(len(xs), alarm_index + 3)
    posterior = posterior_mean_shift_test(
        xs[:prefix_end], threshold=posterior_threshold
    )
    if posterior.change_detected and posterior.change_index is not None:
        onset_index = posterior.change_index
    else:
        # Fall back to the CUSUM's own evidence: the statistic's last
        # departure from zero before the alarm.
        onset_index = alarm_index
        for index in range(alarm_index, -1, -1):
            if records[index].statistic == 0.0:
                onset_index = index + 1
                break
        else:
            onset_index = 0
    onset_time = records[onset_index].start_time

    # ------------------------------------------------------------------
    # Baseline and attacked means.
    # ------------------------------------------------------------------
    baseline_samples = xs[:onset_index] or xs[:1]
    baseline = sum(baseline_samples) / len(baseline_samples)

    # End: walk forward through the *contiguous* attacked stretch — the
    # attack is over at the first sustained (two-period) return below
    # the baseline/attack midpoint.  Taking the last crossing anywhere
    # would instead latch onto unrelated congestion spikes hours later.
    early_attack = xs[onset_index : min(len(xs), onset_index + 5)]
    attack_level = sum(early_attack) / len(early_attack)
    midpoint = (baseline + attack_level) / 2.0
    end_index = onset_index
    consecutive_below = 0
    for index in range(onset_index, len(xs)):
        if xs[index] >= midpoint:
            end_index = index
            consecutive_below = 0
        else:
            consecutive_below += 1
            if consecutive_below >= 2:
                break
    end_time = records[end_index].end_time

    attacked = xs[onset_index : end_index + 1]
    attack_x = sum(attacked) / len(attacked)

    # Rate: f = (X_attack − X_baseline) · K̄ / t0, using the K̄ the
    # detector actually applied over the attacked periods.
    k_values = [records[i].k_bar for i in range(onset_index, end_index + 1)]
    k_bar = sum(k_values) / len(k_values)
    rate = max(0.0, (attack_x - baseline) * k_bar / period)

    return AttackReport(
        detected=True,
        alarm_time=result.first_alarm_time,
        estimated_onset_time=onset_time,
        estimated_end_time=end_time,
        estimated_rate=rate,
        estimated_duration=end_time - onset_time,
        baseline_x=baseline,
        attack_x=attack_x,
    )
