"""Parameter-sensitivity analysis over (a, N).

Supports the Section 4.2.3 tuning discussion with a full trade-off
surface instead of the single (0.2, 0.6) point the paper shows: for a
grid of drift/threshold pairs, measure

* the false-alarm rate on normal traffic (alarm onsets per trace), and
* the detection delay for a reference flood,

so an operator can pick the most sensitive setting with an acceptable
false-alarm budget — the procedure the paper sketches in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.cusum import cusum_statistic_series
from ..core.normalization import NormalizedDifference
from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..attack.flooder import FloodSource
from ..trace.events import CountTrace
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import SiteProfile
from ..trace.synthetic import generate_count_trace
from .metrics import estimate_false_alarm_time

__all__ = [
    "SensitivityCell",
    "SeriesTask",
    "sweep_parameters",
    "recommend_parameters",
]


@dataclass(frozen=True)
class SensitivityCell:
    """One (a, N) grid point's measurements."""

    drift: float
    threshold: float
    false_alarm_onsets: int        #: over all normal traces swept
    normal_periods: int
    detection_probability: float   #: for the reference flood
    mean_delay_periods: Optional[float]
    f_min: float                   #: Eq. 8 floor at the site's K̄

    @property
    def false_alarm_rate(self) -> float:
        """Alarm onsets per observed normal period."""
        if self.normal_periods == 0:
            return 0.0
        return self.false_alarm_onsets / self.normal_periods


def _normalized_series(trace: CountTrace, alpha: float) -> List[float]:
    """The X_n series for a count trace (shared across grid cells so the
    expensive part is computed once per trace, not once per cell)."""
    normalizer = NormalizedDifference(alpha=alpha)
    return [
        normalizer.observe(syn, synack) for syn, synack in trace.counts
    ]


@dataclass(frozen=True)
class SeriesTask:
    """One trace's normalization job — a picklable grid item for
    :mod:`repro.parallel` (trace synthesis + EWMA normalization is the
    sweep's expensive phase; the (a, N) grid loop over the finished
    series stays in the parent)."""

    kind: str  #: "normal" | "attack"
    profile: SiteProfile
    seed: int
    alpha: float
    period: float
    flood_rate: float = 0.0
    attack_start: float = 0.0
    attack_duration: float = 0.0


def _series_for_task(task: SeriesTask, obs=None) -> List[float]:
    trace: CountTrace = generate_count_trace(
        task.profile, seed=task.seed, period=task.period
    )
    if task.kind == "attack":
        trace = mix_flood_into_counts(
            trace,
            FloodSource(pattern=task.flood_rate),
            AttackWindow(task.attack_start, task.attack_duration),
        )
    return _normalized_series(trace, task.alpha)


def sweep_parameters(
    profile: SiteProfile,
    drifts: Sequence[float],
    thresholds: Sequence[float],
    flood_rate: float,
    num_normal_traces: int = 5,
    num_attack_trials: int = 5,
    attack_start: float = 360.0,
    attack_duration: float = 600.0,
    base_seed: int = 0,
    k_bar: Optional[float] = None,
    workers: Optional[int] = 1,
) -> List[SensitivityCell]:
    """Measure the (a, N) grid.

    The X_n series depends only on the EWMA (not on a or N), so each
    trace is normalized once and every grid cell re-runs only the O(n)
    CUSUM recursion — the sweep is cheap even on fine grids.

    ``workers`` > 1 shards the per-trace synthesis + normalization
    across processes (:mod:`repro.parallel`; ``None`` means every
    core); each trace's seed is fixed up front, so the cells are
    identical to a serial sweep.
    """
    alpha = DEFAULT_PARAMETERS.ewma_alpha
    period = DEFAULT_PARAMETERS.observation_period
    site_k = k_bar if k_bar is not None else (
        profile.k_bar_target or profile.expected_k_bar(period)
    )

    tasks = [
        SeriesTask(
            kind="normal", profile=profile, seed=base_seed + i,
            alpha=alpha, period=period,
        )
        for i in range(num_normal_traces)
    ] + [
        SeriesTask(
            kind="attack", profile=profile, seed=base_seed + 1000 + i,
            alpha=alpha, period=period, flood_rate=flood_rate,
            attack_start=attack_start, attack_duration=attack_duration,
        )
        for i in range(num_attack_trials)
    ]

    from ..parallel import WorkPlan, effective_workers, run_plan

    if effective_workers(workers) == 1:
        series = [_series_for_task(task) for task in tasks]
    else:
        series = run_plan(
            WorkPlan.partition(tasks), _series_for_task, workers=workers
        )
    normal_series = series[:num_normal_traces]
    attack_series = series[num_normal_traces:]

    attack_start_period = int(attack_start // period)
    attack_periods = attack_duration / period
    cells: List[SensitivityCell] = []
    for drift in drifts:
        for threshold in thresholds:
            onsets = 0
            periods = 0
            for series in normal_series:
                y = cusum_statistic_series(series, drift)
                estimate = estimate_false_alarm_time(y, threshold)
                onsets += estimate.false_alarms
                periods += estimate.observed_periods
            detected = 0
            delays: List[float] = []
            for series in attack_series:
                y = cusum_statistic_series(series, drift)
                alarm_index = next(
                    (i for i, value in enumerate(y) if value > threshold), None
                )
                if alarm_index is None or alarm_index < attack_start_period:
                    continue  # missed, or fired before the attack (false)
                delay = alarm_index - attack_start_period + 1
                if delay <= attack_periods:
                    detected += 1
                    delays.append(delay)
            cells.append(
                SensitivityCell(
                    drift=drift,
                    threshold=threshold,
                    false_alarm_onsets=onsets,
                    normal_periods=periods,
                    detection_probability=detected / max(len(attack_series), 1),
                    mean_delay_periods=(
                        sum(delays) / len(delays) if delays else None
                    ),
                    f_min=(drift * site_k / period),
                )
            )
    return cells


def recommend_parameters(
    cells: Sequence[SensitivityCell],
    max_false_alarm_rate: float = 0.0,
) -> Optional[SensitivityCell]:
    """The operator's pick: among cells within the false-alarm budget,
    the one with the lowest detection floor (ties broken by faster
    detection)."""
    admissible = [
        cell for cell in cells if cell.false_alarm_rate <= max_false_alarm_rate
    ]
    if not admissible:
        return None
    return min(
        admissible,
        key=lambda cell: (
            cell.f_min,
            cell.mean_delay_periods if cell.mean_delay_periods is not None else 1e9,
        ),
    )
