"""Regeneration of the paper's figures as data series.

Each ``figureN`` function returns the plotted series (plus context) and
an ASCII rendering; the benchmark files print them and EXPERIMENTS.md
records the quantitative anchors (spike maxima, crossing periods).

Figure 1 (TCP state diagram), Figure 2 (agent structure) and Figure 6
(experiment topology) are architecture diagrams, not measurements —
their content lives in the :mod:`repro.tcpsim` state machine, the
:mod:`repro.router` wiring and :mod:`repro.experiments.runner`
respectively, each verified by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..attack.ddos import TYPICAL_ATTACK_DURATION
from ..core.parameters import (
    DEFAULT_PARAMETERS,
    TUNED_UNC_PARAMETERS,
    SynDogParameters,
)
from ..core.syndog import DetectionResult, SynDog
from ..attack.flooder import FloodSource
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import AUCKLAND, HARVARD, LBL, UNC, SiteProfile
from ..trace.stats import per_bin_series
from ..trace.synthetic import generate_count_trace, generate_packet_trace
from .report import render_series

__all__ = [
    "FigureSeries",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "figure9",
    "dynamics_figure",
    "normal_cusum_figure",
    "attack_cusum_figure",
]


@dataclass(frozen=True)
class FigureSeries:
    """One panel of a figure."""

    name: str
    times: Tuple[float, ...]
    series: Dict[str, Tuple[float, ...]]
    annotations: Tuple[Tuple[float, str], ...] = ()

    def render(self) -> str:
        parts = [f"== {self.name} =="]
        for label, values in self.series.items():
            parts.append(
                render_series(label, self.times, values, annotations=self.annotations)
            )
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Figures 3 & 4: SYN / SYN-ACK dynamics
# ----------------------------------------------------------------------
def dynamics_figure(
    profile: SiteProfile,
    seed: int = 0,
    bin_seconds: float = 60.0,
    duration: Optional[float] = None,
) -> FigureSeries:
    """Per-minute SYN vs SYN/ACK counts — one panel of Figure 3 or 4.

    Uses the packet-level generator so the series comes from actual
    classified packets, exactly as the paper parsed its traces.
    """
    trace = generate_packet_trace(profile, seed=seed, duration=duration)
    syns, synacks = per_bin_series(trace, bin_seconds=bin_seconds)
    times = tuple((index + 1) * bin_seconds for index in range(len(syns)))
    direction = "" if profile.bidirectional else "Outgoing "
    reverse = "" if profile.bidirectional else "Incoming "
    return FigureSeries(
        name=f"{profile.name}: SYN and SYN/ACK dynamics",
        times=times,
        series={
            f"{direction}SYN": tuple(float(v) for v in syns),
            f"{reverse}SYN/ACK": tuple(float(v) for v in synacks),
        },
    )


def figure3(seed: int = 0, duration: Optional[float] = None) -> List[FigureSeries]:
    """Figure 3: dynamics at LBL (a) and Harvard (b), both directions
    combined (bidirectional sites)."""
    return [
        dynamics_figure(LBL, seed=seed, duration=duration),
        dynamics_figure(HARVARD, seed=seed, duration=duration),
    ]


def figure4(seed: int = 0, duration: Optional[float] = None) -> List[FigureSeries]:
    """Figure 4: outgoing SYN / incoming SYN/ACK dynamics at UNC (a) and
    Auckland (b)."""
    return [
        dynamics_figure(UNC, seed=seed, duration=duration),
        dynamics_figure(AUCKLAND, seed=seed, duration=duration),
    ]


# ----------------------------------------------------------------------
# Figure 5: CUSUM statistic under normal operation
# ----------------------------------------------------------------------
def normal_cusum_figure(
    profile: SiteProfile,
    seed: int = 0,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
) -> Tuple[FigureSeries, DetectionResult]:
    """y_n over pure background traffic for one site."""
    trace = generate_count_trace(
        profile, seed=seed, period=parameters.observation_period
    )
    result = SynDog(parameters=parameters).observe_counts(trace.counts)
    times = tuple(record.end_time for record in result.records)
    figure = FigureSeries(
        name=f"{profile.name}: CUSUM test statistic under normal operation",
        times=times,
        series={"y_n": tuple(result.statistics)},
        annotations=(
            (times[-1] if times else 0.0, f"max y_n = {result.max_statistic:.4f}, "
             f"threshold N = {parameters.threshold} — "
             + ("FALSE ALARM" if result.alarmed else "no false alarm")),
        ),
    )
    return figure, result


def figure5(
    seed: int = 0, parameters: SynDogParameters = DEFAULT_PARAMETERS
) -> List[Tuple[FigureSeries, DetectionResult]]:
    """Figure 5: normal-operation y_n at Harvard (a), UNC (b) and
    Auckland (c).  Paper anchors: all series mostly zero, Harvard max
    spike ≈ 0.05, Auckland max ≈ 0.26, no false alarms anywhere."""
    return [
        normal_cusum_figure(profile, seed=seed, parameters=parameters)
        for profile in (HARVARD, UNC, AUCKLAND)
    ]


# ----------------------------------------------------------------------
# Figures 7–9: CUSUM dynamics under attack
# ----------------------------------------------------------------------
def attack_cusum_figure(
    profile: SiteProfile,
    flood_rate: float,
    seed: int = 0,
    attack_start: float = 360.0,
    attack_duration: float = TYPICAL_ATTACK_DURATION,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
) -> Tuple[FigureSeries, DetectionResult]:
    """y_n with a flood of f_i SYN/s mixed in — one panel of Figures
    7, 8 or 9."""
    background = generate_count_trace(
        profile, seed=seed, period=parameters.observation_period
    )
    window = AttackWindow(attack_start, attack_duration)
    mixed = mix_flood_into_counts(background, FloodSource(pattern=flood_rate), window)
    result = SynDog(parameters=parameters).observe_counts(mixed.counts)
    times = tuple(record.end_time for record in result.records)
    delay = result.detection_delay_periods(window.start)
    annotations: List[Tuple[float, str]] = [
        (window.start, f"attack starts (f_i = {flood_rate} SYN/s)")
    ]
    if result.first_alarm_time is not None:
        annotations.append(
            (
                result.first_alarm_time,
                f"ALARM: y_n = "
                f"{result.records[result.first_alarm_period].statistic:.3f} "
                f"> N = {parameters.threshold} after {delay:.0f} periods",
            )
        )
    else:
        annotations.append((times[-1] if times else 0.0, "no alarm"))
    figure = FigureSeries(
        name=(
            f"{profile.name}: CUSUM dynamics under a {flood_rate} SYN/s flood"
        ),
        times=times,
        series={"y_n": tuple(result.statistics)},
        annotations=tuple(annotations),
    )
    return figure, result


def figure7(
    seed: int = 0, attack_start: float = 360.0
) -> List[Tuple[FigureSeries, DetectionResult]]:
    """Figure 7: detection sensitivity at UNC for f_i = 45, 60, 80
    SYN/s.  Paper anchors: detection in ≈9, 4 and 2 periods."""
    return [
        attack_cusum_figure(UNC, rate, seed=seed, attack_start=attack_start)
        for rate in (45.0, 60.0, 80.0)
    ]


def figure8(
    seed: int = 0, attack_start: float = 3600.0
) -> List[Tuple[FigureSeries, DetectionResult]]:
    """Figure 8: detection sensitivity at Auckland for f_i = 2, 5, 10
    SYN/s.  Paper anchors: detection in ≈8, 2 and 1 periods."""
    return [
        attack_cusum_figure(AUCKLAND, rate, seed=seed, attack_start=attack_start)
        for rate in (2.0, 5.0, 10.0)
    ]


def figure9(
    seed: int = 0, attack_start: float = 360.0, flood_rate: float = 25.0
) -> Tuple[FigureSeries, DetectionResult]:
    """Figure 9: site-tuned sensitivity at UNC — a = 0.2, N = 0.6 lowers
    the detection floor by the ratio a_tuned/a_default = 0.57, and the
    figure shows y_n for a flood between the two floors crossing the
    lowered threshold, with no new false alarms.

    Calibration note: the paper quotes the tuned floor as 15 SYN/s,
    which implies K̄ ≈ 1500/period — inconsistent with the K̄ ≈ 2114
    its Eq. 8 example implies and the K̄ ≈ 1922 its Table 2 delays
    imply.  Our profile is calibrated to the Table 2 delays, giving a
    tuned floor of ≈ 19 SYN/s, so the default figure runs at
    f_i = 25 SYN/s: invisible to the default parameters (floor ≈ 34)
    and caught by the tuned ones, exactly the paper's qualitative
    point.  Pass ``flood_rate=15.0`` to reproduce the paper's literal
    setting (sub-floor under our calibration).
    """
    return attack_cusum_figure(
        UNC,
        flood_rate,
        seed=seed,
        attack_start=attack_start,
        parameters=TUNED_UNC_PARAMETERS,
    )
