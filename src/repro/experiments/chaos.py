"""The chaos campaign: detection quality under injected faults.

Runs the same flooding scenario twice — a fault-free baseline and a
faulted arm driven by a :class:`~repro.faults.injector.FaultInjector`
plan — and asserts a *degradation envelope*: the faulted detector must
still catch the flood, with a detection delay within a bounded multiple
of the baseline's.  That turns "the detector survives chaos" from a
demo into a regression test.

The faulted arm exercises the full robustness machinery end to end:
perturbed counts flow through :meth:`SynDog.observe_period`, lost
reports through :meth:`SynDog.observe_missing_period` (degraded mode),
and each crash discards the live agent and rebuilds it with
:meth:`SynDog.restore` from the last per-period checkpoint — exactly
what the federation supervisor does for a crashed member.

Everything is a pure function of (site, seed, schedule, scenario
parameters): :meth:`ChaosReport.to_dict` contains no timestamps and
sorts every mapping, so two runs with the same inputs produce
byte-identical reports — the reproducibility contract CI diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..attack.flooder import FloodSource
from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import DetectionRecord, SynDog
from ..faults.injector import FaultInjector, InjectionPlan
from ..faults.schedule import FaultSchedule
from ..obs.runtime import Instrumentation
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import get_profile
from ..trace.synthetic import generate_count_trace

__all__ = [
    "ChaosReport",
    "ChaosArm",
    "ChaosArmTask",
    "run_chaos_arm",
    "run_chaos_campaign",
    "chaos_alerts_document",
    "render_chaos_report",
]


@dataclass(frozen=True)
class ChaosArm:
    """Detection outcome of one arm (baseline or faulted)."""

    periods: int
    alarmed: bool
    first_alarm_time: Optional[float]
    detection_delay_periods: Optional[float]
    max_statistic: float
    degraded_periods: int = 0
    restarts: int = 0

    def to_dict(self) -> dict:
        return {
            "alarmed": self.alarmed,
            "degraded_periods": self.degraded_periods,
            "detection_delay_periods": self.detection_delay_periods,
            "first_alarm_time": self.first_alarm_time,
            "max_statistic": round(self.max_statistic, 9),
            "periods": self.periods,
            "restarts": self.restarts,
        }


@dataclass(frozen=True)
class ChaosReport:
    """The full, deterministic record of one chaos campaign."""

    site: str
    seed: int
    schedule: FaultSchedule
    rate: float
    attack_start: float
    attack_duration: float
    duration: float
    max_delay_ratio: float
    baseline: ChaosArm
    faulted: ChaosArm
    faults_injected: Dict[str, int]
    missing_periods: int
    perturbed_periods: int

    @property
    def delay_ratio(self) -> Optional[float]:
        """Faulted delay over baseline delay, with a one-period floor on
        the denominator so an instant baseline cannot make any faulted
        delay look unbounded."""
        baseline = self.baseline.detection_delay_periods
        faulted = self.faulted.detection_delay_periods
        if baseline is None or faulted is None:
            return None
        return faulted / max(baseline, 1.0)

    @property
    def within_envelope(self) -> bool:
        """Both arms alarm, and the faulted delay stays within
        ``max_delay_ratio`` of the baseline."""
        ratio = self.delay_ratio
        return (
            self.baseline.alarmed
            and self.faulted.alarmed
            and ratio is not None
            and ratio <= self.max_delay_ratio
        )

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def to_dict(self) -> dict:
        """Deterministic, timestamp-free JSON image — byte-identical
        across runs with the same (site, seed, schedule, scenario)."""
        ratio = self.delay_ratio
        return {
            "scenario": {
                "site": self.site,
                "seed": self.seed,
                "rate": self.rate,
                "attack_start": self.attack_start,
                "attack_duration": self.attack_duration,
                "duration": self.duration,
                "max_delay_ratio": self.max_delay_ratio,
            },
            "schedule": self.schedule.to_dict(),
            "baseline": self.baseline.to_dict(),
            "faulted": self.faulted.to_dict(),
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "missing_periods": self.missing_periods,
            "perturbed_periods": self.perturbed_periods,
            "delay_ratio": None if ratio is None else round(ratio, 9),
            "within_envelope": self.within_envelope,
        }


def _summarize_arm(
    records: List[DetectionRecord],
    attack_start: float,
    period: float,
    restarts: int = 0,
) -> ChaosArm:
    first = next((record for record in records if record.alarm), None)
    delay = None
    if first is not None:
        delay = max(0.0, first.end_time - attack_start) / period
    return ChaosArm(
        periods=len(records),
        alarmed=first is not None,
        first_alarm_time=None if first is None else first.end_time,
        detection_delay_periods=delay,
        max_statistic=max(
            (record.statistic for record in records), default=0.0
        ),
        degraded_periods=sum(1 for record in records if record.degraded),
        restarts=restarts,
    )


def _run_faulted_arm(
    plan: InjectionPlan,
    parameters: SynDogParameters,
    staleness_cap: int,
    obs: Optional[Instrumentation],
) -> Tuple[List[DetectionRecord], int]:
    """Drive a SynDog through an injection plan, realizing crashes as
    checkpoint-restore cycles with an outage of missed periods."""
    dog = SynDog(
        parameters=parameters,
        staleness_cap=staleness_cap,
        obs=obs,
        name="chaos-faulted",
    )
    crash_at = {crash.period_index: crash for crash in plan.crashes}
    checkpoint = dog.checkpoint()
    records: List[DetectionRecord] = []
    restarts = 0
    outage_remaining = 0
    for action in plan.actions:
        crash = crash_at.get(action.period_index)
        if crash is not None:
            # The process dies: live state is gone, the supervisor
            # rebuilds the agent from the last checkpoint, and the
            # periods elapsing during the restart go unreported.
            dog = SynDog.restore(checkpoint, obs=obs, name="chaos-faulted")
            restarts += 1
            outage_remaining = max(outage_remaining, crash.outage_periods)
        if outage_remaining > 0:
            outage_remaining -= 1
            records.append(dog.observe_missing_period())
        elif action.kind == "missing":
            records.append(dog.observe_missing_period())
        else:
            records.append(
                dog.observe_period(
                    action.syn, action.synack, start_time=action.start_time
                )
            )
        checkpoint = dog.checkpoint()
    return records, restarts


@dataclass(frozen=True)
class ChaosArmTask:
    """One arm's full scenario description — a picklable grid item for
    :mod:`repro.parallel`.  Each arm regenerates the mixed trace from
    the scenario (deterministic, so both arms see identical counts
    without sharing memory)."""

    arm: str  #: "baseline" | "faulted"
    site: str
    seed: int
    schedule: FaultSchedule
    rate: float
    attack_start: float
    attack_duration: float
    duration: float
    parameters: SynDogParameters
    staleness_cap: int


def run_chaos_arm(task: ChaosArmTask, obs: Optional[Instrumentation] = None) -> dict:
    """Run one arm end to end; returns the summarized arm plus the
    injection bookkeeping (empty for the baseline)."""
    profile = get_profile(task.site)
    background = generate_count_trace(
        profile, seed=task.seed,
        period=task.parameters.observation_period,
        duration=task.duration,
    )
    mixed = mix_flood_into_counts(
        background,
        FloodSource(pattern=task.rate),
        AttackWindow(task.attack_start, task.attack_duration),
    )
    period = task.parameters.observation_period
    if task.arm == "baseline":
        # Clean inputs, uninstrumented control.
        dog = SynDog(parameters=task.parameters, name="chaos-baseline")
        result = dog.observe_counts(mixed.counts)
        return {
            "site": profile.name,
            "arm": _summarize_arm(
                list(result.records), task.attack_start, period
            ),
            "injected": {},
            "missing_periods": 0,
            "perturbed_periods": 0,
        }
    injector = FaultInjector(task.schedule, seed=task.seed, obs=obs)
    plan = injector.plan_counts(mixed)
    records, restarts = _run_faulted_arm(
        plan, task.parameters, task.staleness_cap, obs
    )
    return {
        "site": profile.name,
        "arm": _summarize_arm(
            records, task.attack_start, period, restarts=restarts
        ),
        "injected": dict(injector.injected),
        "missing_periods": plan.missing_periods,
        "perturbed_periods": plan.perturbed_periods,
    }


def run_chaos_campaign(
    site: str = "auckland",
    seed: int = 42,
    schedule: Optional[FaultSchedule] = None,
    rate: float = 5.0,
    attack_start: float = 360.0,
    attack_duration: float = 600.0,
    duration: float = 1800.0,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    staleness_cap: int = 3,
    max_delay_ratio: float = 2.0,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
) -> ChaosReport:
    """Run the baseline and faulted arms and bound the degradation.

    The default scenario mirrors the telemetry smoke run: an
    Auckland-sized site (detection floor ~1.75 SYN/s), a 5 SYN/s flood
    from t = 360 s, 30 minutes of traffic.  Only the faulted arm is
    instrumented (``obs``), so exported fault and degradation counters
    describe the chaos run, not the control.

    ``workers`` > 1 runs the two arms as :mod:`repro.parallel` grid
    items (each regenerating the deterministic trace); the report is
    byte-identical to the serial one.
    """
    if schedule is None:
        from ..faults.schedule import DEFAULT_SCHEDULE, get_schedule

        schedule = get_schedule(DEFAULT_SCHEDULE)
    tasks = [
        ChaosArmTask(
            arm=arm, site=site, seed=seed, schedule=schedule, rate=rate,
            attack_start=attack_start, attack_duration=attack_duration,
            duration=duration, parameters=parameters,
            staleness_cap=staleness_cap,
        )
        for arm in ("baseline", "faulted")
    ]

    from ..parallel import WorkPlan, effective_workers, run_plan

    if effective_workers(workers) == 1:
        results = [run_chaos_arm(tasks[0]), run_chaos_arm(tasks[1], obs=obs)]
    else:
        results = run_plan(
            WorkPlan.partition(tasks), _chaos_arm_worker,
            workers=workers, obs=obs,
        )
    baseline_result, faulted_result = results
    return ChaosReport(
        site=baseline_result["site"],
        seed=seed,
        schedule=schedule,
        rate=rate,
        attack_start=attack_start,
        attack_duration=attack_duration,
        duration=duration,
        max_delay_ratio=max_delay_ratio,
        baseline=baseline_result["arm"],
        faulted=faulted_result["arm"],
        faults_injected=faulted_result["injected"],
        missing_periods=faulted_result["missing_periods"],
        perturbed_periods=faulted_result["perturbed_periods"],
    )


def _chaos_arm_worker(task: ChaosArmTask, obs: Instrumentation) -> dict:
    """Engine adapter: only the faulted arm instruments, matching the
    serial path's "the control stays dark" contract."""
    return run_chaos_arm(task, obs=obs if task.arm == "faulted" else None)


def chaos_alerts_document(
    obs: Instrumentation,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
) -> dict:
    """The campaign's deterministic alerts document: the builtin rule
    set replayed over the run's telemetry history.

    Replay walks the (possibly worker-merged) store's logical sample
    times, so the same scenario yields byte-identical output at any
    ``--workers`` value — what ``repro chaos --alerts-out`` writes and
    CI byte-compares.
    """
    from ..obs.alerts import builtin_rules, replay_rules

    manager = replay_rules(
        builtin_rules(threshold=parameters.threshold), obs.tsdb
    )
    return manager.to_dict()


def render_chaos_report(report: ChaosReport) -> str:
    """Human-readable summary of a campaign (the CLI's stdout)."""
    lines = [
        f"site             : {report.site}  "
        f"(flood {report.rate:g} SYN/s from t={report.attack_start:.0f}s)",
        f"schedule         : {report.schedule.name}  (seed {report.seed})",
        f"faults injected  : {report.total_faults} "
        f"({', '.join(f'{kind}={count}' for kind, count in sorted(report.faults_injected.items())) or 'none'})",
        f"missing periods  : {report.missing_periods} lost reports; "
        f"{report.faulted.degraded_periods} degraded periods; "
        f"{report.faulted.restarts} restart(s)",
    ]
    for label, arm in (("baseline", report.baseline), ("faulted", report.faulted)):
        if arm.alarmed:
            lines.append(
                f"{label:<17}: ALARM at t={arm.first_alarm_time:.0f}s "
                f"(delay {arm.detection_delay_periods:.2f} periods)"
            )
        else:
            lines.append(
                f"{label:<17}: no alarm "
                f"(max statistic {arm.max_statistic:.4f})"
            )
    ratio = report.delay_ratio
    lines.append(
        f"delay ratio      : "
        f"{'n/a' if ratio is None else format(ratio, '.3f')} "
        f"(envelope <= {report.max_delay_ratio:g})"
    )
    lines.append(
        "verdict          : "
        + ("degradation within envelope"
           if report.within_envelope
           else "DEGRADATION EXCEEDS ENVELOPE")
    )
    return "\n".join(lines)
