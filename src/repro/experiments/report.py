"""ASCII rendering for tables, series and paper-vs-measured comparisons.

Every benchmark prints through these helpers so the regenerated rows
look like the paper's tables and the figure benches emit inspectable
series (a terminal sparkline plus the raw numbers on request).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["render_table", "render_series", "render_comparison", "sparkline"]

Cell = Union[str, int, float, None]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        if math.isnan(cell):
            return "nan"
        # Trim trailing zeros but keep sensible precision.
        text = f"{cell:.4f}".rstrip("0").rstrip(".")
        return text if text else "0"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render a boxed ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(char: str = "-", joint: str = "+") -> str:
        return joint + joint.join(char * (width + 2) for width in widths) + joint

    def render_row(cells: Sequence[str]) -> str:
        return (
            "|"
            + "|".join(
                f" {cell:>{width}} " for cell, width in zip(cells, widths)
            )
            + "|"
        )

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line())
    parts.append(render_row(list(headers)))
    parts.append(line("="))
    for row in formatted:
        parts.append(render_row(row))
    parts.append(line())
    return "\n".join(parts)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """A unicode sparkline, downsampled to *width* buckets by maximum
    (spikes must stay visible — they are the whole point of Figure 5)."""
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        sampled = [
            max(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    else:
        sampled = list(values)
    low = min(sampled)
    high = max(sampled)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(sampled)
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int((value - low) / span * len(_SPARK_LEVELS)),
            )
        ]
        for value in sampled
    )


def render_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    unit: str = "",
    annotations: Optional[Sequence[Tuple[float, str]]] = None,
) -> str:
    """Render one figure series: header stats, sparkline, and any
    annotated instants (e.g. attack start / first alarm)."""
    if len(times) != len(values):
        raise ValueError(f"length mismatch: {len(times)} vs {len(values)}")
    parts = [
        f"{name}: n={len(values)}"
        + (
            f" min={min(values):.4g} max={max(values):.4g} "
            f"mean={sum(values) / len(values):.4g}{(' ' + unit) if unit else ''}"
            if values
            else ""
        )
    ]
    parts.append("  " + sparkline(values))
    for instant, label in annotations or ():
        parts.append(f"  @t={instant:.0f}s: {label}")
    return "\n".join(parts)


def render_comparison(
    title: str,
    rows: Iterable[Tuple[str, Cell, Cell]],
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> str:
    """Paper-vs-measured table — the EXPERIMENTS.md currency."""
    return render_table(
        ["quantity", paper_label, measured_label],
        [list(row) for row in rows],
        title=title,
    )
