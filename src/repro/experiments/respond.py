"""The respond campaign: detect → respond → recover, measured.

Runs the victim-side flooding scenario twice:

* **unmitigated** — the attack lands on a bare finite-backlog server;
  legitimate handshake completion collapses for the duration of the
  flood (the paper's Section 1 damage model);
* **mitigated** — a SYN-dog sniffer on the victim's last-mile taps
  (Figure 6's deployment point) feeds a per-period ``syndog_delta``
  series into a local alert rule; the firing alert drives a
  :class:`~repro.defense.response.ResponseEngine` whose playbook
  blocks the flood's suspect prefixes and flips the victim to SYN
  cookies — inside the live simulation — then rolls everything back
  when the alert resolves after the attack ends.

The report compares legitimate handshake completion rates in the same
time window (first mitigation → attack end) across both arms: the
acceptance bar is *mitigated ≥ recovery_factor × unmitigated*, with
measured collateral below the playbook's cap.

Determinism contract: each arm is a pure function of its
:class:`RespondArmTask`; ``workers > 1`` runs the arms as
:mod:`repro.parallel` grid items and the report — and the mitigation
timeline, and the merged events JSONL it can be rebuilt from — is
byte-identical to the serial run.

Direction note: at the victim's last mile the sniffer's roles invert
relative to the source-side stub deployment — SYNs *arrive* on the
inbound tap (fed to the detector's SYN-direction interface) and
SYN/ACKs *leave* on the outbound tap (fed to the SYN/ACK-direction
interface).  The delta semantics are unchanged: SYNs unanswered by
SYN/ACKs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..attack.flooder import FloodSource
from ..attack.spoofing import SubnetRandomSpoofer
from ..core.parameters import SynDogParameters
from ..core.syndog import SynDog
from ..defense.response import (
    FlakyActuator,
    Playbook,
    ResponseEngine,
    VictimActuator,
)
from ..obs.alerts import AlertManager, AlertRule
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..obs.tsdb import TimeSeriesDB
from ..packet.addresses import IPv4Network
from ..tcpsim.network import VictimNetwork

__all__ = [
    "RespondArmTask",
    "RespondReport",
    "default_playbook",
    "run_respond_arm",
    "run_respond_campaign",
    "timeline_document",
    "render_respond_report",
]

#: The alert the campaign's playbook binds to.
RESPOND_ALERT = "syn_flood"


def default_playbook(
    top_k: int = 4,
    min_score: float = 200.0,
    max_collateral_fraction: float = 0.25,
) -> Dict[str, Any]:
    """The stock respond playbook: block the flood's suspect prefixes
    (bounded collateral, generous TTL) and shield the victim with SYN
    cookies until the alert resolves.

    ``min_score`` separates flood prefixes from legitimate ones in the
    unanswered-SYN ranking; it should sit between the legitimate and
    flood per-period SYN volumes (the default fits the stock scenario's
    200 SYN/s flood over 5 s periods ≈ 1000/period vs ≲ 100 legitimate).
    """
    return {
        "name": "block-and-shield",
        "cooldown_periods": 2,
        "rules": [
            {
                "alert": RESPOND_ALERT,
                "actions": [
                    {
                        "kind": "block_prefixes",
                        "params": {"top_k": top_k, "min_score": min_score},
                        "ttl_periods": 60,
                        "max_retries": 3,
                        "backoff_periods": 1,
                        "max_collateral_fraction": max_collateral_fraction,
                    },
                    {
                        "kind": "syn_cookies",
                        "max_retries": 1,
                        "backoff_periods": 1,
                    },
                ],
            }
        ],
    }


@dataclass(frozen=True)
class RespondArmTask:
    """One arm's full scenario — a picklable grid item.  The playbook
    travels as canonical JSON so the task stays hashable."""

    arm: str  #: "unmitigated" | "mitigated"
    seed: int
    rate: float
    client_rate: float
    duration: float
    attack_start: float
    attack_duration: float
    period: float
    backlog_capacity: int
    playbook_json: str
    spoof_network: str
    alert_cut: float
    actuator_failures: int


def _build_network(task: RespondArmTask) -> Tuple[VictimNetwork, FloodSource]:
    network = VictimNetwork(
        seed=task.seed,
        backlog_capacity=task.backlog_capacity,
        client_rate=task.client_rate,
    )
    flood = FloodSource(
        pattern=task.rate,
        victim=network.victim_address,
        spoofer=SubnetRandomSpoofer(IPv4Network.parse(task.spoof_network)),
    )
    return network, flood


def _schedule_occupancy_samples(
    network: VictimNetwork, duration: float, period: float
) -> List[Tuple[float, int]]:
    """Sample the *active* server's half-open occupancy once per period
    (the victim-recovery signal the report summarizes)."""
    samples: List[Tuple[float, int]] = []
    boundary = period
    while boundary <= duration:
        def sample(t: float = boundary) -> None:
            samples.append((t, network.server.half_open_count))

        network.scheduler.schedule(boundary, sample)
        boundary += period
    return samples


def _summarize_occupancy(
    samples: List[Tuple[float, int]], attack_end: float
) -> Dict[str, Any]:
    at_attack_end = 0
    for t, value in samples:
        if t <= attack_end:
            at_attack_end = value
    return {
        "peak": max((value for _, value in samples), default=0),
        "at_attack_end": at_attack_end,
        "final": samples[-1][1] if samples else 0,
    }


def _completion_rate(
    outcomes: List[Tuple[float, bool]], lo: float, hi: float
) -> Optional[float]:
    """Fraction of connection attempts started in [lo, hi) that
    eventually established; None when the window saw no attempts."""
    attempts = succeeded = 0
    for t, ok in outcomes:
        if lo <= t < hi:
            attempts += 1
            succeeded += 1 if ok else 0
    if attempts == 0:
        return None
    return succeeded / attempts


def _phase_rates(
    outcomes: List[Tuple[float, bool]], attack_start: float, attack_end: float
) -> Dict[str, Optional[float]]:
    rates = {
        "pre_attack": _completion_rate(outcomes, float("-inf"), attack_start),
        "attack": _completion_rate(outcomes, attack_start, attack_end),
        "post_attack": _completion_rate(outcomes, attack_end, float("inf")),
    }
    return {
        phase: None if value is None else round(value, 9)
        for phase, value in rates.items()
    }


def run_respond_arm(
    task: RespondArmTask, obs: Optional[Instrumentation] = None
) -> Dict[str, Any]:
    """Run one arm end to end; returns a picklable result dict."""
    ambient = resolve_instrumentation(obs)
    network, flood = _build_network(task)
    attack_end = task.attack_start + task.attack_duration
    occupancy = _schedule_occupancy_samples(
        network, task.duration, task.period
    )

    if task.arm == "unmitigated":
        result = network.run(
            task.duration,
            flood=flood,
            flood_start=task.attack_start,
            flood_duration=task.attack_duration,
        )
        outcomes = network.attempt_outcomes()
        return {
            "arm": task.arm,
            "attempts": result.legitimate_attempts,
            "established": result.legitimate_established,
            "phase_rates": _phase_rates(
                outcomes, task.attack_start, attack_end
            ),
            "backlog_peak": result.backlog_peak,
            "backlog_refused": result.backlog_refused,
            "half_open": _summarize_occupancy(occupancy, attack_end),
            "filtered_inbound": network.filtered_inbound,
            "outcomes": [[round(t, 9), bool(ok)] for t, ok in outcomes],
            "detection": None,
            "response": None,
            "timeline": [],
        }

    # ------------------------------------------------------------------
    # Mitigated arm: detector + alert rule + response engine, in-loop.
    # ------------------------------------------------------------------
    playbook = Playbook.from_dict(json.loads(task.playbook_json))
    parameters = SynDogParameters(observation_period=task.period)
    # Per-arm telemetry store and alert manager: always enabled, local
    # to this arm, so detection → alert → response behaves identically
    # whether the arm runs serially or inside a parallel shard (shard
    # bundles carry no live alert rules of their own).  Snapshots are
    # off — only the detector's explicit series matter here.
    local_tsdb = TimeSeriesDB(retention=8192, record_snapshots=False)
    local_alerts = AlertManager(
        rules=[
            AlertRule(
                name=RESPOND_ALERT,
                expr=(
                    f"last_over_time(syndog_delta[{2 * task.period:g}s])"
                    f" > {task.alert_cut!r}"
                ),
                for_periods=1,
                severity="page",
                description=(
                    "Victim last-mile SYN-dog sees a sustained excess of "
                    "inbound SYNs over outbound SYN/ACKs"
                ),
            )
        ]
    )
    detector_obs = Instrumentation(
        registry=ambient.registry,
        events=ambient.events,
        tsdb=local_tsdb,
        alerts=local_alerts,
    )
    dog = SynDog(
        parameters=parameters, obs=detector_obs, name="victim-lastmile"
    )
    actuator = VictimActuator(network, obs=ambient)
    engine_actuator = (
        FlakyActuator(actuator, failures=task.actuator_failures)
        if task.actuator_failures > 0
        else actuator
    )
    # The engine reports through the *ambient* bundle: its counters,
    # response_* series, and response_action events are campaign
    # telemetry (merged across workers), unlike the arm-local rule
    # plumbing above.
    engine = ResponseEngine(playbook, engine_actuator, obs=ambient).attach(
        local_alerts
    )

    period_records: List[Any] = []

    def handle(records: List[Any]) -> None:
        for record in records:
            period_records.append(record)
            local_alerts.evaluate(record.end_time)
            engine.step(record.end_time)

    def tap_inbound(packet: Any) -> None:
        actuator.observe(packet)
        handle(dog.observe_outbound(packet))

    def tap_outbound(packet: Any) -> None:
        handle(dog.observe_inbound(packet))

    network.tap_inbound = tap_inbound
    network.tap_outbound = tap_outbound

    result = network.run(
        task.duration,
        flood=flood,
        flood_start=task.attack_start,
        flood_duration=task.attack_duration,
    )
    handle(dog.flush())
    final_t = task.duration + 30.0
    local_alerts.close(final_t)
    engine.finish(final_t)

    outcomes = network.attempt_outcomes()
    first_alarm = next((r for r in period_records if r.alarm), None)
    first_applied = next(
        (e for e in engine.timeline if e["outcome"] == "applied"), None
    )
    summary = engine.to_dict()
    return {
        "arm": task.arm,
        "attempts": result.legitimate_attempts,
        "established": result.legitimate_established,
        "phase_rates": _phase_rates(outcomes, task.attack_start, attack_end),
        "backlog_peak": result.backlog_peak,
        "backlog_refused": result.backlog_refused,
        "half_open": _summarize_occupancy(occupancy, attack_end),
        "filtered_inbound": network.filtered_inbound,
        "outcomes": [[round(t, 9), bool(ok)] for t, ok in outcomes],
        "detection": {
            "periods": len(period_records),
            "alarmed": first_alarm is not None,
            "first_alarm_time": (
                None if first_alarm is None else round(first_alarm.end_time, 9)
            ),
        },
        "response": {
            "mitigation_time": (
                None if first_applied is None else first_applied["t"]
            ),
            "outcomes": summary["outcomes"],
            "aborted": summary["aborted"],
            "peak_collateral": summary["peak_collateral"],
            "blocked_prefixes": sorted(actuator.blocked_history),
            "drops": {
                kind: actuator.drops(kind)
                for kind in ("block_prefixes", "rate_limit")
            },
            "legit_syns_seen": actuator.legit_syns_seen,
        },
        "timeline": [dict(entry) for entry in engine.timeline],
    }


def _respond_arm_worker(task: RespondArmTask, obs: Instrumentation) -> dict:
    """Engine adapter: only the mitigated arm instruments — the control
    stays dark, matching the chaos campaign's contract."""
    return run_respond_arm(task, obs=obs if task.arm == "mitigated" else None)


@dataclass(frozen=True)
class RespondReport:
    """The full, deterministic record of one respond campaign."""

    seed: int
    rate: float
    client_rate: float
    duration: float
    attack_start: float
    attack_duration: float
    period: float
    backlog_capacity: int
    spoof_network: str
    alert_cut: float
    actuator_failures: int
    recovery_factor: float
    playbook: Playbook
    unmitigated: Dict[str, Any]
    mitigated: Dict[str, Any]

    @property
    def attack_end(self) -> float:
        return self.attack_start + self.attack_duration

    @property
    def mitigation_time(self) -> Optional[float]:
        response = self.mitigated.get("response") or {}
        return response.get("mitigation_time")

    def _window(self) -> Tuple[float, float]:
        start = self.mitigation_time
        if start is None:
            start = self.attack_start
        return (start, self.attack_end)

    def _window_rates(self) -> Tuple[Optional[float], Optional[float]]:
        lo, hi = self._window()
        unmit = _completion_rate(
            [(t, ok) for t, ok in self.unmitigated["outcomes"]], lo, hi
        )
        mit = _completion_rate(
            [(t, ok) for t, ok in self.mitigated["outcomes"]], lo, hi
        )
        return unmit, mit

    @property
    def recovery_ratio(self) -> Optional[float]:
        unmit, mit = self._window_rates()
        if mit is None or unmit is None or unmit == 0.0:
            return None
        return mit / unmit

    @property
    def recovered(self) -> bool:
        """Mitigated completion in the mitigation window beats the
        unmitigated arm's in the same window by ``recovery_factor``
        (any completion at all beats a flatlined baseline)."""
        if self.mitigation_time is None:
            return False
        unmit, mit = self._window_rates()
        if mit is None:
            return False
        if unmit is None or unmit == 0.0:
            return mit > 0.0
        return mit >= self.recovery_factor * unmit

    @property
    def collateral_cap(self) -> float:
        caps = [
            spec.max_collateral_fraction
            for rule in self.playbook.rules
            for spec in rule.actions
            if spec.max_collateral_fraction is not None
        ]
        return min(caps) if caps else 1.0

    @property
    def collateral_within_cap(self) -> bool:
        response = self.mitigated.get("response") or {}
        return (
            response.get("aborted", 0) == 0
            and response.get("peak_collateral", 0.0) <= self.collateral_cap
        )

    @property
    def passed(self) -> bool:
        return self.recovered and self.collateral_within_cap

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic, timestamp-free JSON image (raw per-attempt
        outcome lists are summarized away)."""
        unmit_rate, mit_rate = self._window_rates()
        lo, hi = self._window()
        ratio = self.recovery_ratio

        def arm_doc(arm: Dict[str, Any]) -> Dict[str, Any]:
            doc = {k: v for k, v in arm.items() if k != "outcomes"}
            return doc

        return {
            "scenario": {
                "seed": self.seed,
                "rate": self.rate,
                "client_rate": self.client_rate,
                "duration": self.duration,
                "attack_start": self.attack_start,
                "attack_duration": self.attack_duration,
                "period": self.period,
                "backlog_capacity": self.backlog_capacity,
                "spoof_network": self.spoof_network,
                "alert_cut": self.alert_cut,
                "actuator_failures": self.actuator_failures,
                "recovery_factor": self.recovery_factor,
            },
            "playbook": self.playbook.to_dict(),
            "unmitigated": arm_doc(self.unmitigated),
            "mitigated": arm_doc(self.mitigated),
            "recovery": {
                "window": [round(lo, 9), round(hi, 9)],
                "mitigation_time": self.mitigation_time,
                "unmitigated_window_rate": (
                    None if unmit_rate is None else round(unmit_rate, 9)
                ),
                "mitigated_window_rate": (
                    None if mit_rate is None else round(mit_rate, 9)
                ),
                "recovery_ratio": None if ratio is None else round(ratio, 9),
                "recovered": self.recovered,
                "collateral_cap": self.collateral_cap,
                "collateral_within_cap": self.collateral_within_cap,
                "passed": self.passed,
            },
            "timeline": [dict(e) for e in self.mitigated["timeline"]],
        }


def run_respond_campaign(
    seed: int = 7,
    rate: float = 200.0,
    client_rate: float = 15.0,
    duration: float = 300.0,
    attack_start: float = 60.0,
    attack_duration: float = 120.0,
    period: float = 5.0,
    backlog_capacity: int = 256,
    playbook: Optional[Any] = None,
    spoof_network: str = "10.66.0.0/16",
    alert_cut: float = 50.0,
    actuator_failures: int = 0,
    recovery_factor: float = 2.0,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
) -> RespondReport:
    """Run the unmitigated and mitigated arms and measure recovery.

    The stock scenario: a 200 SYN/s flood with sources spoofed inside
    one /16 hits a 256-entry backlog for two minutes; legitimate
    clients attempt ~15 connections/s throughout.  Only the mitigated
    arm is instrumented (``obs``), so exported ``response_*`` telemetry
    describes the closed loop, not the control.  ``actuator_failures``
    injects that many deterministic apply-faults into the actuator to
    exercise the engine's retry/backoff path end to end.
    """
    if playbook is None:
        playbook_doc = default_playbook()
    elif isinstance(playbook, Playbook):
        playbook_doc = playbook.to_dict()
    else:
        playbook_doc = playbook
    parsed = Playbook.from_dict(playbook_doc)  # validate before running
    playbook_json = json.dumps(playbook_doc, sort_keys=True)
    tasks = [
        RespondArmTask(
            arm=arm,
            seed=seed,
            rate=rate,
            client_rate=client_rate,
            duration=duration,
            attack_start=attack_start,
            attack_duration=attack_duration,
            period=period,
            backlog_capacity=backlog_capacity,
            playbook_json=playbook_json,
            spoof_network=spoof_network,
            alert_cut=alert_cut,
            actuator_failures=actuator_failures,
        )
        for arm in ("unmitigated", "mitigated")
    ]

    from ..parallel import WorkPlan, effective_workers, run_plan

    if effective_workers(workers) == 1:
        results = [
            run_respond_arm(tasks[0]),
            run_respond_arm(tasks[1], obs=obs),
        ]
    else:
        results = run_plan(
            WorkPlan.partition(tasks), _respond_arm_worker,
            workers=workers, obs=obs,
        )
    unmitigated, mitigated = results
    return RespondReport(
        seed=seed,
        rate=rate,
        client_rate=client_rate,
        duration=duration,
        attack_start=attack_start,
        attack_duration=attack_duration,
        period=period,
        backlog_capacity=backlog_capacity,
        spoof_network=spoof_network,
        alert_cut=alert_cut,
        actuator_failures=actuator_failures,
        recovery_factor=recovery_factor,
        playbook=parsed,
        unmitigated=unmitigated,
        mitigated=mitigated,
    )


def timeline_document(timeline: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The canonical mitigation-timeline document — produced identically
    from a live report (``report.mitigated["timeline"]``) or from
    :func:`repro.defense.response.timeline_from_events` over a recorded
    events JSONL, which is what ``repro respond --replay`` byte-diffs."""
    return {"entries": [dict(e) for e in timeline], "count": len(timeline)}


def render_respond_report(report: RespondReport) -> str:
    """Human-readable campaign summary (the CLI's stdout)."""
    doc = report.to_dict()
    recovery = doc["recovery"]
    mitigation = recovery["mitigation_time"]
    detection = doc["mitigated"]["detection"] or {}
    lines = [
        f"scenario         : {report.rate:g} SYN/s flood from "
        f"t={report.attack_start:g}s for {report.attack_duration:g}s "
        f"(clients {report.client_rate:g}/s, backlog "
        f"{report.backlog_capacity})",
        f"playbook         : {report.playbook.name}  "
        f"(seed {report.seed}, {len(report.playbook.rules)} rule(s))",
        f"detection        : "
        + (
            f"alert fired, first CUSUM alarm at "
            f"t={detection.get('first_alarm_time'):.0f}s"
            if detection.get("alarmed")
            else "no alarm"
        ),
        f"mitigation       : "
        + (
            f"first action applied at t={mitigation:.0f}s"
            if mitigation is not None
            else "never applied"
        ),
    ]
    for label in ("unmitigated", "mitigated"):
        rates = doc[label]["phase_rates"]

        def fmt(value: Optional[float]) -> str:
            return "n/a" if value is None else format(value, ".3f")

        lines.append(
            f"{label:<17}: completion pre={fmt(rates['pre_attack'])} "
            f"attack={fmt(rates['attack'])} "
            f"post={fmt(rates['post_attack'])}  "
            f"(backlog peak {doc[label]['backlog_peak']})"
        )
    ratio = recovery["recovery_ratio"]
    lines.append(
        f"recovery         : window rate "
        f"{recovery['mitigated_window_rate']} vs "
        f"{recovery['unmitigated_window_rate']} unmitigated "
        f"(ratio {'n/a' if ratio is None else format(ratio, '.2f')}, "
        f"need >= {report.recovery_factor:g}x)"
    )
    response = doc["mitigated"]["response"] or {}
    lines.append(
        f"collateral       : peak "
        f"{response.get('peak_collateral', 0.0):.6f} "
        f"(cap {recovery['collateral_cap']:g}; "
        f"{response.get('aborted', 0)} aborted)"
    )
    lines.append(
        "verdict          : "
        + (
            "victim recovered within collateral cap"
            if recovery["passed"]
            else "RESPONSE DID NOT MEET THE BAR"
        )
    )
    return "\n".join(lines)
