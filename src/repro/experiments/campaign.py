"""Multi-agent campaign simulation (Section 4.2.3, made operational).

The paper's coverage argument is analytic: spreading an aggregate flood
V over A stub networks keeps each per-network rate f_i = V/A under the
local detection floor once A > V/f_min.  This module runs the actual
*fleet*: every participating stub network gets its own background
traffic and its own SYN-dog, the campaign's slaves are mixed in, and
the result reports what a federation of deployed agents would see —
how many dogs bark, how fast the first one barks, and what fraction of
the attack flow is attributable once the barking routers activate
ingress filtering.

Because stub networks are independent, each is simulated at count level
with its own seed; a campaign over hundreds of networks runs in
seconds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..attack.ddos import DDoSCampaign, TYPICAL_ATTACK_DURATION
from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import SynDog
from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..trace.mixer import AttackWindow, mix_flood_into_counts
from ..trace.profiles import SiteProfile
from ..trace.synthetic import generate_count_trace
from .runner import attack_start_range_minutes

__all__ = [
    "CampaignResult",
    "NetworkOutcome",
    "NetworkTask",
    "simulate_campaign",
    "simulate_network",
]


@dataclass(frozen=True)
class NetworkOutcome:
    """One stub network's view of the campaign."""

    network_id: int
    flood_rate: float               #: f_i seen by this network's router
    detected: bool
    delay_periods: Optional[float]
    max_statistic: float


@dataclass(frozen=True)
class CampaignResult:
    """The federation's aggregate view."""

    aggregate_rate: float
    num_networks: int
    attack_start: float
    attack_duration: float
    outcomes: Tuple[NetworkOutcome, ...]

    @property
    def detection_fraction(self) -> float:
        """Fraction of participating networks whose SYN-dog alarmed —
        each alarm localizes one slave."""
        if not self.outcomes:
            return 0.0
        return sum(o.detected for o in self.outcomes) / len(self.outcomes)

    @property
    def first_alarm_delay(self) -> Optional[float]:
        """Periods until the *first* dog in the federation barks — the
        federation-level time to first actionable evidence."""
        delays = [
            o.delay_periods for o in self.outcomes
            if o.detected and o.delay_periods is not None
        ]
        return min(delays) if delays else None

    @property
    def attributable_rate(self) -> float:
        """Flood volume (SYN/s) whose sources are localized by alarmed
        routers — the traffic ingress filtering can cut at the source."""
        return sum(o.flood_rate for o in self.outcomes if o.detected)

    @property
    def simulated_rate(self) -> float:
        """Total flood rate of the simulated networks (equals the
        campaign's aggregate unless ``max_networks`` subsampled)."""
        return sum(o.flood_rate for o in self.outcomes)

    @property
    def attributable_fraction(self) -> float:
        """Fraction of the *simulated* flood volume that alarmed routers
        can attribute — under uniform subsampling this is an unbiased
        estimate of the campaign-wide fraction."""
        if self.simulated_rate <= 0:
            return 0.0
        return self.attributable_rate / self.simulated_rate


@dataclass(frozen=True)
class NetworkTask:
    """Everything one stub network's simulation depends on — a plain,
    picklable grid item for :mod:`repro.parallel`."""

    network_id: int
    profile: SiteProfile
    seed: int
    flood_rate: float
    sources: Tuple  #: FloodSources of this network's slaves
    attack_start: float
    attack_duration: float
    parameters: SynDogParameters


def simulate_network(
    task: NetworkTask,
    obs: Optional[Instrumentation] = None,
) -> NetworkOutcome:
    """Simulate one stub network: background + local slaves through its
    SYN-dog.  A pure function of the task (plus wall-clock telemetry),
    shared verbatim by the serial and sharded paths."""
    obs = resolve_instrumentation(obs)
    network_start = time.perf_counter()
    window = AttackWindow(task.attack_start, task.attack_duration)
    attack_periods = (
        task.attack_duration / task.parameters.observation_period
    )
    background = generate_count_trace(
        task.profile,
        seed=task.seed,
        period=task.parameters.observation_period,
    )
    counts = background
    for source in task.sources:
        counts = mix_flood_into_counts(counts, source, window)
    result = SynDog(parameters=task.parameters).observe_counts(counts.counts)
    delay = result.detection_delay_periods(window.start)
    detected = delay is not None and delay <= attack_periods
    outcome = NetworkOutcome(
        network_id=task.network_id,
        flood_rate=task.flood_rate,
        detected=detected,
        delay_periods=delay if detected else None,
        max_statistic=result.max_statistic,
    )
    if obs.enabled:
        obs.registry.histogram(
            "campaign_network_seconds",
            "Wall-clock to simulate one stub network",
        ).observe(time.perf_counter() - network_start)
        obs.registry.counter(
            "campaign_networks_total",
            "Stub networks simulated, by verdict",
            ("detected",),
        ).labels(str(detected).lower()).inc()
        if obs.events.enabled:
            obs.events.emit(
                "campaign_network",
                network_id=task.network_id,
                flood_rate=task.flood_rate,
                detected=detected,
                delay_periods=delay if detected else None,
                max_statistic=result.max_statistic,
            )
    return outcome


def simulate_campaign(
    campaign: DDoSCampaign,
    profile: SiteProfile,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    base_seed: int = 0,
    attack_start: Optional[float] = None,
    max_networks: Optional[int] = None,
    profile_selector=None,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = 1,
) -> CampaignResult:
    """Run every participating stub network's SYN-dog over the campaign.

    Parameters
    ----------
    campaign:
        The DDoS campaign (slaves grouped by stub network).
    profile:
        The site profile every stub network draws its background from
        (each with an independent seed — the homogeneous-fleet model;
        heterogeneous fleets can be composed by calling this per
        profile and merging).
    attack_start:
        Campaign start time; defaults to a seed-derived whole minute in
        the profile's paper range.
    max_networks:
        Simulate only the first N networks (a uniform subsample —
        useful to estimate the detection fraction of a multi-thousand-
        network campaign without simulating every one).
    profile_selector:
        Optional ``network_id -> SiteProfile`` callable for
        *heterogeneous* fleets (e.g. a mix of UNC- and Auckland-scale
        networks); overrides *profile* per network.  Real campaigns
        compromise hosts wherever they can, so the per-network floors —
        and thus which dogs bark — vary across the fleet.
    workers:
        Shard the network grid across this many processes
        (:mod:`repro.parallel`; ``None`` means every core).  Seeds,
        rates and the attack window are all fixed in the parent before
        sharding, so the result is byte-identical to ``workers=1``.
    """
    obs = resolve_instrumentation(obs)
    rng = random.Random(base_seed)
    if attack_start is None:
        lo, hi = attack_start_range_minutes(profile)
        attack_start = 60.0 * rng.randint(lo, hi)
    window = AttackWindow(attack_start, campaign.duration)

    network_ids = sorted({slave.stub_network_id for slave in campaign.slaves})
    if max_networks is not None:
        network_ids = network_ids[:max_networks]

    tasks: List[NetworkTask] = []
    for network_id in network_ids:
        local_profile = (
            profile_selector(network_id) if profile_selector else profile
        )
        if window.end > local_profile.duration:
            raise ValueError(
                f"attack window [{window.start}, {window.end}) exceeds the "
                f"{local_profile.duration}s trace of {local_profile.name} "
                f"(network {network_id}); pick an earlier attack_start"
            )
        tasks.append(
            NetworkTask(
                network_id=network_id,
                profile=local_profile,
                seed=base_seed * 100_003 + network_id,
                flood_rate=campaign.per_network_rate(network_id),
                sources=tuple(campaign.sources_in_network(network_id)),
                attack_start=window.start,
                attack_duration=window.duration,
                parameters=parameters,
            )
        )

    from ..parallel import WorkPlan, effective_workers, run_plan

    if effective_workers(workers) == 1:
        outcomes = [simulate_network(task, obs=obs) for task in tasks]
    else:
        outcomes = run_plan(
            WorkPlan.partition(tasks), simulate_network,
            workers=workers, obs=obs,
        )
    if obs.enabled:
        obs.registry.gauge(
            "campaign_detection_fraction",
            "Fraction of simulated networks whose SYN-dog alarmed",
        ).set(
            sum(o.detected for o in outcomes) / len(outcomes)
            if outcomes else 0.0
        )
    return CampaignResult(
        aggregate_rate=campaign.aggregate_rate,
        num_networks=len(network_ids),
        attack_start=window.start,
        attack_duration=window.duration,
        outcomes=tuple(outcomes),
    )
