"""Experiment harness: the Figure 6 trace-driven simulation runner,
detection/false-alarm metrics, and regenerators for every table and
figure in the paper's evaluation (Section 4)."""

from .campaign import CampaignResult, NetworkOutcome, simulate_campaign
from .profiling import ProfileTask, profile_network, run_profile_campaign
from .chaos import ChaosArm, ChaosReport, render_chaos_report, run_chaos_campaign
from .sensitivity import SensitivityCell, recommend_parameters, sweep_parameters
from .streaming import (
    counts_from_pcaps,
    detect_from_pcaps,
    merge_directional_streams,
    stream_detection,
)
from .export import (
    attack_report_to_dict,
    detection_result_to_dict,
    figure_to_dict,
    save_json,
    table_rows_to_dict,
)
from .forensics import AttackReport, characterize_attack
from .figures import (
    FigureSeries,
    attack_cusum_figure,
    dynamics_figure,
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    normal_cusum_figure,
)
from .metrics import (
    DetectionPerformance,
    FalseAlarmEstimate,
    TrialOutcome,
    aggregate_trials,
    estimate_false_alarm_time,
)
from .report import render_comparison, render_series, render_table, sparkline
from .runner import (
    DetectionTrialConfig,
    attack_start_range_minutes,
    run_detection_sweep,
    run_detection_trial,
    run_normal_operation,
)
from .tables import (
    TABLE2_PAPER,
    TABLE3_PAPER,
    DetectionTableRow,
    detection_table,
    table1,
    table2,
    table3,
)

__all__ = [
    "CampaignResult",
    "NetworkOutcome",
    "simulate_campaign",
    "ChaosArm",
    "ChaosReport",
    "render_chaos_report",
    "run_chaos_campaign",
    "SensitivityCell",
    "recommend_parameters",
    "sweep_parameters",
    "counts_from_pcaps",
    "detect_from_pcaps",
    "merge_directional_streams",
    "stream_detection",
    "attack_report_to_dict",
    "detection_result_to_dict",
    "figure_to_dict",
    "save_json",
    "table_rows_to_dict",
    "AttackReport",
    "characterize_attack",
    "FigureSeries",
    "attack_cusum_figure",
    "dynamics_figure",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "figure9",
    "normal_cusum_figure",
    "DetectionPerformance",
    "FalseAlarmEstimate",
    "TrialOutcome",
    "aggregate_trials",
    "estimate_false_alarm_time",
    "render_comparison",
    "render_series",
    "render_table",
    "sparkline",
    "DetectionTrialConfig",
    "attack_start_range_minutes",
    "run_detection_sweep",
    "run_detection_trial",
    "run_normal_operation",
    "TABLE2_PAPER",
    "TABLE3_PAPER",
    "DetectionTableRow",
    "detection_table",
    "table1",
    "table2",
    "table3",
]
