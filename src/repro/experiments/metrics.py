"""Detection-performance metrics (Section 3.2's two fundamental
measures).

* **Detection time** — delay from attack start to the first alarm, in
  observation periods (the unit of Tables 2 and 3).
* **False-alarm time** — mean time between false alarms under pure
  background traffic; Eq. 5 predicts it grows exponentially with the
  threshold N.

Plus the aggregate the tables report: detection probability over
repeated randomized trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "TrialOutcome",
    "DetectionPerformance",
    "aggregate_trials",
    "FalseAlarmEstimate",
    "estimate_false_alarm_time",
]


@dataclass(frozen=True)
class TrialOutcome:
    """One detection trial."""

    site: str
    flood_rate: float
    seed: int
    attack_start: float
    attack_duration: float
    detected: bool
    delay_periods: Optional[float]  #: None when not detected in-window
    max_statistic: float


@dataclass(frozen=True)
class DetectionPerformance:
    """One row of Table 2 / Table 3."""

    flood_rate: float
    num_trials: int
    detection_probability: float
    mean_detection_time: Optional[float]   #: periods; None if never detected
    detection_times: Tuple[float, ...] = ()

    @property
    def detection_time_std(self) -> Optional[float]:
        if len(self.detection_times) < 2:
            return None
        mean = sum(self.detection_times) / len(self.detection_times)
        variance = sum((t - mean) ** 2 for t in self.detection_times) / (
            len(self.detection_times) - 1
        )
        return math.sqrt(variance)


def aggregate_trials(
    flood_rate: float, outcomes: Sequence[TrialOutcome]
) -> DetectionPerformance:
    """Fold per-trial outcomes into one performance row."""
    if not outcomes:
        raise ValueError("need at least one trial")
    delays = tuple(
        outcome.delay_periods
        for outcome in outcomes
        if outcome.detected and outcome.delay_periods is not None
    )
    detected = sum(1 for outcome in outcomes if outcome.detected)
    return DetectionPerformance(
        flood_rate=flood_rate,
        num_trials=len(outcomes),
        detection_probability=detected / len(outcomes),
        mean_detection_time=(sum(delays) / len(delays)) if delays else None,
        detection_times=delays,
    )


@dataclass(frozen=True)
class FalseAlarmEstimate:
    """Empirical false-alarm behaviour at one threshold."""

    threshold: float
    observed_periods: int
    false_alarms: int

    @property
    def alarm_probability(self) -> float:
        """Per-period alarm probability P∞{d_N(y_n) = 1} (Eq. 5's LHS)."""
        if self.observed_periods == 0:
            return 0.0
        return self.false_alarms / self.observed_periods

    @property
    def mean_time_between_alarms_periods(self) -> float:
        """Mean periods between false alarms (inf when none observed)."""
        if self.false_alarms == 0:
            return math.inf
        return self.observed_periods / self.false_alarms


def estimate_false_alarm_time(
    statistic_series: Sequence[float], threshold: float
) -> FalseAlarmEstimate:
    """Count alarm *onsets* of a y_n series against a threshold.

    An alarm onset is a crossing from ≤N to >N; a statistic that stays
    above N for several periods is one alarm, matching how an operator
    would count pages.
    """
    alarms = 0
    above = False
    for value in statistic_series:
        if value > threshold:
            if not above:
                alarms += 1
            above = True
        else:
            above = False
    return FalseAlarmEstimate(
        threshold=threshold,
        observed_periods=len(statistic_series),
        false_alarms=alarms,
    )
