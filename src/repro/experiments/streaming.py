"""Streaming detection over pcap files.

A deployed SYN-dog never holds a trace in memory — it processes an
unbounded packet stream with O(1) state.  This module gives the library
the same property when reading capture files: the two interface pcaps
are lazily merged on timestamps (heapq.merge over generators) and fed
to the detector packet by packet, so arbitrarily large captures run in
constant memory.

``detect_from_pcaps`` is the function behind the CLI's ``detect
--pcap-out/--pcap-in`` path.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

from ..core.parameters import DEFAULT_PARAMETERS, SynDogParameters
from ..core.syndog import DetectionResult, SynDog
from ..obs.runtime import Instrumentation
from ..packet.packet import Packet
from ..pcap.reader import PcapReader

__all__ = [
    "detect_from_pcaps",
    "merge_directional_streams",
    "stream_detection",
    "counts_from_pcaps",
]

PathLike = Union[str, Path]


def merge_directional_streams(
    outbound: Iterable[Packet],
    inbound: Iterable[Packet],
) -> Iterator[Tuple[Packet, bool]]:
    """Lazily merge two time-sorted packet streams.

    Yields ``(packet, is_outbound)`` in global timestamp order without
    materializing either stream (heapq.merge pulls one element at a
    time).  Ties break outbound-first, deterministically.
    """
    tagged_out = ((p.timestamp, 0, p) for p in outbound)
    tagged_in = ((p.timestamp, 1, p) for p in inbound)
    for _ts, tag, packet in heapq.merge(tagged_out, tagged_in):
        yield packet, tag == 0


def stream_detection(
    detector: SynDog,
    outbound: Iterable[Packet],
    inbound: Iterable[Packet],
    end_time: Optional[float] = None,
    stop_at_first_alarm: bool = False,
) -> DetectionResult:
    """Drive *detector* from two lazy packet streams.

    With ``stop_at_first_alarm`` the function returns as soon as the
    alarm fires — the on-line deployment behaviour, where the response
    (ingress filtering, paging the operator) begins mid-stream rather
    than after the capture ends.
    """
    for packet, is_outbound in merge_directional_streams(outbound, inbound):
        if is_outbound:
            records = detector.observe_outbound(packet)
        else:
            records = detector.observe_inbound(packet)
        if stop_at_first_alarm and any(record.alarm for record in records):
            return detector.result()
    detector.flush(end_time=end_time)
    return detector.result()


def counts_from_pcaps(
    outbound_path: PathLike,
    inbound_path: PathLike,
    period: float = 20.0,
    name: str = "pcap",
    fastpath: bool = True,
):
    """Aggregate two interface capture files into a
    :class:`~repro.trace.events.CountTrace`, streaming (O(1) memory).

    The bridge from *any* real capture to the count-level experiment
    machinery: calibrate profiles against it, replay it through the
    tables, or feed it to the detector offline.

    ``fastpath=True`` (default) routes through the columnar pipeline
    (:mod:`repro.fastpath`); ``fastpath=False`` keeps the per-packet
    object pipeline, which is retained permanently as the differential
    oracle — the two produce byte-identical counts.
    """
    if fastpath:
        from ..fastpath.pipeline import counts_from_pcaps_fast

        return counts_from_pcaps_fast(
            outbound_path, inbound_path, period=period, name=name
        )
    from ..core.sniffer import CountExchange
    from ..trace.events import CountTrace, TraceMetadata

    exchange = CountExchange(observation_period=period)
    last_timestamp = 0.0
    reports = []
    with PcapReader.open(outbound_path) as outbound_reader, \
            PcapReader.open(inbound_path) as inbound_reader:
        for packet, is_outbound in merge_directional_streams(
            outbound_reader.iter_packets(strict=False),
            inbound_reader.iter_packets(strict=False),
        ):
            last_timestamp = packet.timestamp
            if is_outbound:
                reports.extend(exchange.observe_outbound(packet))
            else:
                reports.extend(exchange.observe_inbound(packet))
    reports.extend(exchange.flush(end_time=last_timestamp))
    metadata = TraceMetadata(
        name=name,
        duration=len(reports) * period,
        bidirectional=False,
        description=f"aggregated from {outbound_path} / {inbound_path}",
    )
    return CountTrace(
        metadata=metadata,
        period=period,
        counts=tuple(
            (report.syn_count, report.synack_count) for report in reports
        ),
    )


def detect_from_pcaps(
    outbound_path: PathLike,
    inbound_path: PathLike,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    stop_at_first_alarm: bool = False,
    obs: Optional[Instrumentation] = None,
    fastpath: bool = True,
) -> Tuple[DetectionResult, SynDog]:
    """Run SYN-dog over two interface capture files in constant memory.

    Returns the detection result together with the detector (whose live
    K̄ and Eq. 8 floor the caller may want to report).

    ``fastpath=True`` (default) runs the columnar batched pipeline
    (:mod:`repro.fastpath`): pcap records are parsed into parallel
    arrays, classified with vectorized passes, and the detector is fed
    per-period count deltas.  ``fastpath=False`` keeps the per-packet
    object pipeline — the permanent differential oracle.  The two paths
    produce byte-identical per-period counts, detection records and
    metric totals (``tests/fastpath`` enforces this).
    """
    if fastpath:
        from ..fastpath.pipeline import detect_from_pcaps_fast

        return detect_from_pcaps_fast(
            outbound_path,
            inbound_path,
            parameters=parameters,
            stop_at_first_alarm=stop_at_first_alarm,
            obs=obs,
        )
    detector = SynDog(parameters=parameters, obs=obs)
    with PcapReader.open(outbound_path) as outbound_reader, \
            PcapReader.open(inbound_path) as inbound_reader:
        # Tolerant reads: a capture truncated mid-record (crashed
        # tcpdump, full disk, chaos injection) degrades to "stream ended
        # here" instead of aborting detection; the loss stays visible on
        # the readers' truncation/skipped_records counters.
        result = stream_detection(
            detector,
            outbound_reader.iter_packets(strict=False),
            inbound_reader.iter_packets(strict=False),
            stop_at_first_alarm=stop_at_first_alarm,
        )
    return result, detector
