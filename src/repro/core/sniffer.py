"""The two packet-counting sniffers of a SYN-dog agent (Section 2).

A SYN-dog consists of an *outbound Sniffer* at the leaf router's
outbound interface, counting SYNs leaving the stub network, and an
*inbound Sniffer* at the inbound interface, counting SYN/ACKs coming
back from the Internet.  The sniffers keep exactly one integer each —
no per-flow state — and periodically report their counts through a
shared :class:`CountExchange`, modelling the "shared memory or IPC
inside the router" the paper describes.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.classify import PacketClass, classify_packet
from ..packet.packet import Packet

__all__ = [
    "Direction",
    "OutboundSniffer",
    "InboundSniffer",
    "CountExchange",
    "PeriodReport",
]


class Direction:
    """Traffic direction names as the paper defines them: *inbound* flows
    from the Internet into the Intranet, *outbound* the other way."""

    INBOUND = "inbound"
    OUTBOUND = "outbound"


@dataclass(frozen=True)
class PeriodReport:
    """One observation period's counts, as delivered to the CUSUM stage."""

    period_index: int
    start_time: float
    end_time: float
    syn_count: int
    synack_count: int

    @property
    def difference(self) -> int:
        """Δ_n = outgoing SYNs − incoming SYN/ACKs."""
        return self.syn_count - self.synack_count


class _CountingSniffer:
    """Shared machinery: classify each packet, bump one counter."""

    _target_class: PacketClass

    def __init__(self) -> None:
        self._count = 0
        self._total_seen = 0

    def observe(self, packet: Packet) -> bool:
        """Count *packet* if it matches the sniffer's target class.
        Returns True when it was counted."""
        self._total_seen += 1
        if classify_packet(packet) is self._target_class:
            self._count += 1
            return True
        return False

    def observe_classified(self, packet_class: Optional[PacketClass]) -> bool:
        """The update half of :meth:`observe` for callers that already
        classified the packet (the profiled hot path, which needs to
        attribute classification and counter update separately)."""
        self._total_seen += 1
        if packet_class is self._target_class:
            self._count += 1
            return True
        return False

    def observe_many(self, packets: Iterable[Packet]) -> int:
        counted = 0
        for packet in packets:
            if self.observe(packet):
                counted += 1
        return counted

    @property
    def count(self) -> int:
        """Packets counted since the last :meth:`drain`."""
        return self._count

    @property
    def total_seen(self) -> int:
        """All packets inspected over the sniffer's lifetime."""
        return self._total_seen

    def drain(self) -> int:
        """Report and reset the period counter (end of observation
        period)."""
        count, self._count = self._count, 0
        return count


class OutboundSniffer(_CountingSniffer):
    """Counts TCP SYN packets leaving the stub network."""

    _target_class = PacketClass.SYN


class InboundSniffer(_CountingSniffer):
    """Counts TCP SYN/ACK packets entering the stub network."""

    _target_class = PacketClass.SYN_ACK


class CountExchange:
    """Coordinates the two sniffers across observation-period boundaries.

    Models the paper's shared-memory/IPC exchange: at the end of each
    period :math:`t_0` the two counters are drained atomically into a
    :class:`PeriodReport`.  Packets are fed by timestamp; a packet whose
    timestamp crosses the current period boundary first closes the
    period (emitting a report — and empty reports for any fully idle
    periods in between) and then counts toward the new one.
    """

    def __init__(
        self,
        observation_period: float,
        start_time: float = 0.0,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if observation_period <= 0:
            raise ValueError(
                f"observation period must be positive: {observation_period}"
            )
        self.observation_period = float(observation_period)
        self.outbound = OutboundSniffer()
        self.inbound = InboundSniffer()
        self._period_index = 0
        self._period_start = float(start_time)
        # Hot-path contract (see repro.obs): bind instruments once here;
        # when the registry is disabled (even if events or the flight
        # recorder are live) every per-packet guard is a single None
        # check — null-instrument method calls are not free at 100k pps.
        obs = resolve_instrumentation(obs)
        if obs.registry.enabled:
            seen = obs.registry.counter(
                "sniffer_packets_total",
                "Packets inspected at the sniffers, by direction",
                ("direction",),
            )
            counted = obs.registry.counter(
                "sniffer_packets_counted_total",
                "Packets matching the sniffer's target class, by direction",
                ("direction",),
            )
            self._m_out_seen = seen.labels(Direction.OUTBOUND)
            self._m_in_seen = seen.labels(Direction.INBOUND)
            self._m_out_counted = counted.labels(Direction.OUTBOUND)
            self._m_in_counted = counted.labels(Direction.INBOUND)
            self._m_periods = obs.registry.counter(
                "exchange_periods_total",
                "Observation periods closed by the count exchange",
            )
        else:
            self._m_out_seen = None
            self._m_in_seen = None
            self._m_out_counted = None
            self._m_in_counted = None
            self._m_periods = None
        # Profiler stage handles follow the same bind-once contract:
        # when disabled, observe_* pays exactly one extra None check.
        if obs.profiler.enabled:
            self._prof_classify = obs.profiler.stage("classify")
            self._prof_sniff = obs.profiler.stage("sniff.update")
        else:
            self._prof_classify = None
            self._prof_sniff = None

    @property
    def current_period_end(self) -> float:
        return self._period_start + self.observation_period

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The period clock as a JSON-serializable dict.

        Partial in-period counters are deliberately *not* captured: a
        crash loses the packets counted since the last period boundary,
        and pretending otherwise would fabricate counts.  Restore
        resumes the clock at the checkpointed boundary with empty
        counters.
        """
        return {
            "period_index": self._period_index,
            "period_start": self._period_start,
        }

    def load_state(self, state: dict) -> None:
        """Resume the period clock from :meth:`state_dict` output."""
        self._period_index = int(state["period_index"])
        self._period_start = float(state["period_start"])
        self.outbound.drain()
        self.inbound.drain()

    def _close_period(self) -> PeriodReport:
        report = PeriodReport(
            period_index=self._period_index,
            start_time=self._period_start,
            end_time=self.current_period_end,
            syn_count=self.outbound.drain(),
            synack_count=self.inbound.drain(),
        )
        self._period_index += 1
        self._period_start += self.observation_period
        if self._m_periods is not None:
            self._m_periods.inc()
        return report

    def _advance_to(self, timestamp: float) -> List[PeriodReport]:
        reports: List[PeriodReport] = []
        while timestamp >= self.current_period_end:
            reports.append(self._close_period())
        return reports

    def observe_outbound(self, packet: Packet) -> List[PeriodReport]:
        """Feed one packet seen at the outbound interface.  Returns the
        (possibly empty) list of period reports this packet's timestamp
        caused to close.

        When the profiler is on, every packet is *counted* against the
        ``classify`` and ``sniff.update`` stages (calls/packets/bytes —
        pure integer adds, worker-invariant); clocks are read only on
        sampled calls in timers mode and never in cost-model mode.  The
        untimed branch inlines the handles' countdown test and
        accumulation (the documented ``StageHandle`` hot-path contract):
        method calls per packet here were a measured 40% slowdown,
        inline integer adds keep the enabled profiler within its 1.15x
        budget (``benchmarks/test_profiler_overhead.py``)."""
        reports = self._advance_to(packet.timestamp)
        prof_classify = self._prof_classify
        if prof_classify is not None:
            nbytes = packet.ip.total_length
            if prof_classify.countdown == 1:  # sampled (timers mode)
                counted = self._observe_sampled(packet, self.outbound, nbytes)
            else:
                prof_classify.countdown -= 1
                counted = self.outbound.observe(packet)
                prof_sniff = self._prof_sniff
                prof_classify.calls += 1
                prof_classify.packets += 1
                prof_classify.bytes += nbytes
                prof_sniff.calls += 1
                prof_sniff.packets += 1
                prof_sniff.bytes += nbytes
        else:
            counted = self.outbound.observe(packet)
        if self._m_out_seen is not None:
            self._m_out_seen.inc()
            if counted:
                self._m_out_counted.inc()
        return reports

    def observe_inbound(self, packet: Packet) -> List[PeriodReport]:
        """Feed one packet seen at the inbound interface.  Mirrors
        :meth:`observe_outbound`, including its inlined profiled path."""
        reports = self._advance_to(packet.timestamp)
        prof_classify = self._prof_classify
        if prof_classify is not None:
            nbytes = packet.ip.total_length
            if prof_classify.countdown == 1:  # sampled (timers mode)
                counted = self._observe_sampled(packet, self.inbound, nbytes)
            else:
                prof_classify.countdown -= 1
                counted = self.inbound.observe(packet)
                prof_sniff = self._prof_sniff
                prof_classify.calls += 1
                prof_classify.packets += 1
                prof_classify.bytes += nbytes
                prof_sniff.calls += 1
                prof_sniff.packets += 1
                prof_sniff.bytes += nbytes
        else:
            counted = self.inbound.observe(packet)
        if self._m_in_seen is not None:
            self._m_in_seen.inc()
            if counted:
                self._m_in_counted.inc()
        return reports

    def _observe_sampled(
        self, packet: Packet, sniffer: _CountingSniffer, nbytes: int
    ) -> bool:
        """The 1-in-N clocked observe: classification and counter update
        measured separately so each lands on its own stage.  Rare by
        construction (the caller's countdown gate), so plain method
        calls are fine here."""
        prof_classify = self._prof_classify
        prof_sniff = self._prof_sniff
        prof_classify.countdown = prof_classify.every
        a0 = gc.get_count()[0]
        c0 = time.process_time_ns()
        w0 = time.perf_counter_ns()
        packet_class = classify_packet(packet)
        w1 = time.perf_counter_ns()
        c1 = time.process_time_ns()
        a1 = gc.get_count()[0]
        counted = sniffer.observe_classified(packet_class)
        w2 = time.perf_counter_ns()
        c2 = time.process_time_ns()
        a2 = gc.get_count()[0]
        # Alloc deltas clamped at 0: a gen-0 collection between reads
        # resets the counter (see repro.obs.profiler.allocation_count).
        prof_classify.add_timed(
            w1 - w0, c1 - c0, max(0, a1 - a0), nbytes=nbytes
        )
        prof_sniff.add_timed(
            w2 - w1, c2 - c1, max(0, a2 - a1), nbytes=nbytes
        )
        return counted

    def flush(self, end_time: Optional[float] = None) -> List[PeriodReport]:
        """Close the current period (and any idle periods up to
        *end_time*) at end of stream."""
        reports: List[PeriodReport] = []
        if end_time is not None:
            reports.extend(self._advance_to(end_time))
        reports.append(self._close_period())
        return reports
