"""Vectorized (numpy) batch evaluation of the detection pipeline.

The scalar :class:`~repro.core.syndog.SynDog` is the reference
implementation — O(1) state, exactly what a router runs.  Monte-Carlo
studies, however, evaluate thousands of (trace × parameter) cells, and
the per-period Python loop dominates.  This module provides bit-exact
vectorized equivalents operating on whole matrices of traces at once:

* :func:`batch_normalize` — Eq. 1's EWMA normalization over a
  (num_traces × num_periods) count matrix;
* :func:`batch_cusum` — Eq. 2's recursion for all rows simultaneously
  (the recursion is inherently sequential in time, so the loop runs
  over *periods* while numpy parallelizes over *traces* — ~rows× fewer
  Python iterations);
* :func:`batch_first_alarms` — the Eq. 4 decision over a whole batch.

Every function is property-tested against the scalar pipeline for
exact (ULP-level) agreement.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .parameters import DEFAULT_PARAMETERS, SynDogParameters

__all__ = [
    "batch_normalize",
    "batch_cusum",
    "batch_first_alarms",
    "batch_detect",
]


def batch_normalize(
    syn_counts: np.ndarray,
    synack_counts: np.ndarray,
    alpha: float = DEFAULT_PARAMETERS.ewma_alpha,
    floor: float = 1.0,
    initial_k: Optional[float] = None,
) -> np.ndarray:
    """Vectorized Eq. 1 normalization.

    Parameters are matrices of shape (num_traces, num_periods); the
    returned X has the same shape.  Semantics replicate
    :class:`~repro.core.normalization.NormalizedDifference` exactly:
    the current period is normalized by the *pre-update* K̄, the first
    period warm-starts the estimate, and K̄ is floor-clamped.
    """
    syn = np.asarray(syn_counts, dtype=np.float64)
    synack = np.asarray(synack_counts, dtype=np.float64)
    if syn.shape != synack.shape:
        raise ValueError(f"shape mismatch: {syn.shape} vs {synack.shape}")
    if syn.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got shape {syn.shape}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0,1): {alpha}")
    num_traces, num_periods = syn.shape
    x = np.empty_like(syn)
    if initial_k is None:
        k = synack[:, 0].copy()          # warm start from the first period
        initialized = np.zeros(num_traces, dtype=bool)
    else:
        k = np.full(num_traces, float(initial_k))
        initialized = np.ones(num_traces, dtype=bool)
    for period in range(num_periods):
        observed = synack[:, period]
        # Warm start: traces whose estimator is uninitialized adopt the
        # current observation before normalizing (matches the scalar
        # `observe` path).
        fresh = ~initialized
        if fresh.any():
            k[fresh] = observed[fresh]
            initialized |= True
        k_clamped = np.maximum(k, floor)
        x[:, period] = (syn[:, period] - observed) / k_clamped
        k = alpha * k + (1.0 - alpha) * observed
    return x


def batch_cusum(x: np.ndarray, drift: float) -> np.ndarray:
    """Vectorized Eq. 2: y[:, n] = max(0, y[:, n-1] + x[:, n] − a)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D batch, got shape {x.shape}")
    if drift <= 0:
        raise ValueError(f"drift must be positive: {drift}")
    y = np.empty_like(x)
    running = np.zeros(x.shape[0])
    for period in range(x.shape[1]):
        running = np.maximum(0.0, running + x[:, period] - drift)
        y[:, period] = running
    return y


def batch_first_alarms(y: np.ndarray, threshold: float) -> np.ndarray:
    """Vectorized Eq. 4: index of the first period with y > N per trace,
    or −1 when no alarm fires."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive: {threshold}")
    above = np.asarray(y) > threshold
    any_alarm = above.any(axis=1)
    first = above.argmax(axis=1)
    return np.where(any_alarm, first, -1)


def batch_detect(
    syn_counts: np.ndarray,
    synack_counts: np.ndarray,
    parameters: SynDogParameters = DEFAULT_PARAMETERS,
    initial_k: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The full pipeline over a batch: returns (y matrix, first-alarm
    indices)."""
    x = batch_normalize(
        syn_counts,
        synack_counts,
        alpha=parameters.ewma_alpha,
        initial_k=initial_k,
    )
    y = batch_cusum(x, parameters.drift)
    return y, batch_first_alarms(y, parameters.threshold)
