"""The last-mile (victim-side) SYN-dog variant (Figure 6).

The paper's experiment topology (Figure 6) places sniffers at *both*
ends of the attack path: the **first-mile** sniffer — the paper's main
subject — watches the flooding source's stub network, while a
**last-mile** sniffer at the victim's leaf router sees the flood
arriving.  The last-mile direction pairing is mirrored:

* count **incoming SYNs** at the inbound interface (connection requests
  arriving for local servers), and
* count **outgoing SYN/ACKs** at the outbound interface (the local
  servers' answers leaving).

Under normal load, local servers answer nearly every request within an
RTT, so the normalized difference is again small and stationary.  Under
a flood the victim's backlog saturates and SYN/ACK production stops
tracking the SYN arrivals, so the same non-parametric CUSUM fires.
Semantics differ in one important way, which this module makes
explicit: a last-mile alarm says *a local server is being flooded* —
useful for mitigation — but carries no information about the sources;
localization still needs the first-mile agents (the paper's core
argument for first-mile placement).

Implementation-wise the variant is the same pipeline with the
direction/flag pairing swapped, so it reuses the count-level
:class:`~repro.core.syndog.SynDog` machinery through composition.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..packet.packet import Packet
from .parameters import DEFAULT_PARAMETERS, SynDogParameters
from .syndog import DetectionRecord, DetectionResult, SynDog

__all__ = ["LastMileSynDog"]


class LastMileSynDog:
    """A victim-side SYN-dog: incoming SYNs vs outgoing SYN/ACKs.

    The public surface mirrors :class:`SynDog`, with the directional
    methods renamed to match the mirrored pairing:

    * :meth:`observe_inbound` — packets arriving from the Internet
      (incoming SYNs are counted here);
    * :meth:`observe_outbound` — packets leaving toward the Internet
      (outgoing SYN/ACKs are counted here).
    """

    def __init__(
        self,
        parameters: SynDogParameters = DEFAULT_PARAMETERS,
        start_time: float = 0.0,
        initial_k: Optional[float] = None,
    ) -> None:
        # The inner SynDog's "outbound sniffer" slot counts our incoming
        # SYNs and its "inbound sniffer" slot counts our outgoing
        # SYN/ACKs; the count-level pipeline is direction-agnostic.
        self._inner = SynDog(
            parameters=parameters, start_time=start_time, initial_k=initial_k
        )

    # ------------------------------------------------------------------
    # Count-level API
    # ------------------------------------------------------------------
    def observe_period(
        self,
        incoming_syn_count: int,
        outgoing_synack_count: int,
        start_time: Optional[float] = None,
    ) -> DetectionRecord:
        """Feed one period's (incoming SYN, outgoing SYN/ACK) counts."""
        return self._inner.observe_period(
            incoming_syn_count, outgoing_synack_count, start_time=start_time
        )

    def observe_counts(
        self, counts: Iterable[Tuple[int, int]]
    ) -> DetectionResult:
        return self._inner.observe_counts(counts)

    # ------------------------------------------------------------------
    # Packet-level API (mirrored pairing)
    # ------------------------------------------------------------------
    def observe_inbound(self, packet: Packet) -> List[DetectionRecord]:
        """A packet arriving from the Internet: SYNs are counted.

        The inner detector's SYN-counting slot does the filtering — a
        non-SYN packet merely advances the observation clock.
        """
        return self._inner.observe_outbound(packet)

    def observe_outbound(self, packet: Packet) -> List[DetectionRecord]:
        """A packet leaving toward the Internet: SYN/ACKs are counted."""
        return self._inner.observe_inbound(packet)

    def observe_streams(
        self,
        inbound: Iterable[Packet],
        outbound: Iterable[Packet],
        end_time: Optional[float] = None,
    ) -> DetectionResult:
        """Replay two time-sorted streams with the last-mile pairing."""
        merged = sorted(
            [(packet, True) for packet in inbound]
            + [(packet, False) for packet in outbound],
            key=lambda item: item[0].timestamp,
        )
        for packet, is_inbound in merged:
            if is_inbound:
                self.observe_inbound(packet)
            else:
                self.observe_outbound(packet)
        self.flush(end_time=end_time)
        return self.result()

    def flush(self, end_time: Optional[float] = None) -> List[DetectionRecord]:
        return self._inner.flush(end_time=end_time)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def alarm(self) -> bool:
        """Is a local server currently under a SYN flood?"""
        return self._inner.alarm

    @property
    def statistic(self) -> float:
        return self._inner.statistic

    @property
    def k_bar(self) -> float:
        return self._inner.k_bar

    @property
    def parameters(self) -> SynDogParameters:
        return self._inner.parameters

    def result(self) -> DetectionResult:
        return self._inner.result()

    def min_detectable_rate(self) -> float:
        """Eq. 8 with the victim-side K̄: the smallest *arriving*
        aggregate flood this agent can eventually detect."""
        return self._inner.min_detectable_rate()

    def __repr__(self) -> str:
        return f"LastMile{self._inner!r}"
