"""Baseline flood detectors contrasted against SYN-dog.

The paper argues CUSUM's cumulative statistic beats naive per-period
rules: a fixed threshold must be set per site (defeating universal
deployment) and misses slow floods whose per-period excess never
crosses it, while CUSUM accumulates arbitrarily small excesses (the
"can sniff a flooding source with rate less than h at the expense of a
longer response time" property).  These baselines make that argument
measurable in ``benchmarks/`` and ``examples/compare_detectors.py``.

All baselines consume the same per-period (SYN, SYN/ACK) reports as the
real agent, so comparisons are apples-to-apples.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .normalization import EwmaEstimator

__all__ = [
    "PeriodDetector",
    "StaticThresholdDetector",
    "AdaptiveEwmaDetector",
    "SynRateDetector",
    "run_detector",
]


class PeriodDetector(abc.ABC):
    """Interface: one decision per observation period."""

    @abc.abstractmethod
    def observe_period(self, syn_count: int, synack_count: int) -> bool:
        """Fold one period's counts; return the current alarm decision."""

    @property
    @abc.abstractmethod
    def alarm(self) -> bool:
        """Current decision."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to initial state."""


class StaticThresholdDetector(PeriodDetector):
    """Alarms when the raw per-period difference SYN − SYN/ACK exceeds a
    fixed absolute threshold.

    The threshold is in *packets per period*, so a value sized for a
    large site (UNC: thousands of SYN/ACKs per period) is uselessly
    insensitive at a small one (Auckland: ~100), and vice versa — the
    site-dependence problem normalization solves.
    """

    def __init__(self, threshold_packets: float) -> None:
        if threshold_packets <= 0:
            raise ValueError(f"threshold must be positive: {threshold_packets}")
        self.threshold_packets = threshold_packets
        self._alarm = False

    def observe_period(self, syn_count: int, synack_count: int) -> bool:
        self._alarm = (syn_count - synack_count) > self.threshold_packets
        return self._alarm

    @property
    def alarm(self) -> bool:
        return self._alarm

    def reset(self) -> None:
        self._alarm = False


class AdaptiveEwmaDetector(PeriodDetector):
    """Alarms when the normalized difference X_n = Δ_n/K̄ exceeds a fixed
    per-period bound.

    This is SYN-dog *without the CUSUM accumulation*: it inherits the
    site-independence of normalization but has no memory, so a flood
    whose per-period excess stays below the bound is never detected no
    matter how long it persists — precisely the sensitivity CUSUM's
    cumulative statistic adds (Eq. 8 discussion).
    """

    def __init__(self, bound: float = 0.7, alpha: float = 0.95) -> None:
        if bound <= 0:
            raise ValueError(f"bound must be positive: {bound}")
        self.bound = bound
        self._estimator = EwmaEstimator(alpha=alpha)
        self._alarm = False

    def observe_period(self, syn_count: int, synack_count: int) -> bool:
        if not self._estimator.initialized:
            self._estimator.update(synack_count)
        k_bar = self._estimator.value
        x = (syn_count - synack_count) / k_bar
        self._estimator.update(synack_count)
        self._alarm = x > self.bound
        return self._alarm

    @property
    def alarm(self) -> bool:
        return self._alarm

    def reset(self) -> None:
        self._estimator.reset()
        self._alarm = False


class SynRateDetector(PeriodDetector):
    """Alarms on absolute outgoing-SYN *rate* (packets/second), ignoring
    SYN/ACKs entirely.

    Models the crude rate-limiter view: it cannot distinguish a flood
    from a legitimate burst of new connections (a flash crowd), because
    it never checks whether the SYNs are being answered.  Generates the
    false alarms on bursty normal traffic that the figures-5 benchmark
    quantifies.
    """

    def __init__(self, rate_threshold: float, observation_period: float = 20.0) -> None:
        if rate_threshold <= 0:
            raise ValueError(f"rate threshold must be positive: {rate_threshold}")
        if observation_period <= 0:
            raise ValueError(
                f"observation period must be positive: {observation_period}"
            )
        self.rate_threshold = rate_threshold
        self.observation_period = observation_period
        self._alarm = False

    def observe_period(self, syn_count: int, synack_count: int) -> bool:
        rate = syn_count / self.observation_period
        self._alarm = rate > self.rate_threshold
        return self._alarm

    @property
    def alarm(self) -> bool:
        return self._alarm

    def reset(self) -> None:
        self._alarm = False


def run_detector(
    detector: PeriodDetector,
    counts: Iterable[Tuple[int, int]],
) -> Optional[int]:
    """Feed a (SYN, SYN/ACK) count series; return the index of the first
    alarmed period, or None."""
    for index, (syn_count, synack_count) in enumerate(counts):
        if detector.observe_period(syn_count, synack_count):
            return index
    return None
