"""The non-parametric CUSUM change-point test (Section 3.2, Eq. 2–5).

Given observations :math:`X_n` with pre-change mean :math:`c < a`, the
shifted series :math:`\\tilde X_n = X_n - a` has negative drift under
normal operation.  The test statistic

.. math::    y_n = (y_{n-1} + \\tilde X_n)^+ , \\qquad y_0 = 0

is the recursive form (Eq. 2) of the maximum continuous increment
:math:`y_n = S_n - \\min_{0\\le k\\le n} S_k` (Eq. 3), where
:math:`S_n = \\sum_{k\\le n} \\tilde X_k`.  The decision rule (Eq. 4) is
:math:`d_N(y_n) = \\mathbb 1(y_n > N)`.

This module implements the test generically — it knows nothing about
SYN packets — because the same machinery is reused by tests that verify
the Eq. 3 identity, by the ablation benches, and potentially by any
other change-detection application.  Brodsky & Darkhovsky [4] show the
false-alarm time grows exponentially in N (Eq. 5), which the
``benchmarks/test_theory_bounds.py`` bench confirms empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

__all__ = ["CusumState", "NonParametricCusum", "cusum_statistic_series"]


@dataclass(frozen=True)
class CusumState:
    """An immutable snapshot of the test after one observation."""

    n: int                #: discrete time index of this observation
    x: float              #: the raw observation X_n
    statistic: float      #: y_n after incorporating X_n
    alarm: bool           #: d_N(y_n): True when y_n > N
    cumulative_sum: float  #: S_n = sum of shifted observations
    minimum_sum: float     #: min_{k <= n} S_k


class NonParametricCusum:
    """The sequential, non-parametric CUSUM test.

    Parameters
    ----------
    drift:
        The offset ``a`` subtracted from every observation; chosen above
        the pre-change mean ``c`` so the statistic resets to zero
        frequently and does not accumulate with time (Section 3.2).
    threshold:
        The flooding threshold ``N``; an alarm is raised while
        ``y_n > N``.

    The detector keeps O(1) state — two floats beyond bookkeeping —
    which is the statelessness property that makes SYN-dog itself immune
    to flooding attacks.
    """

    def __init__(self, drift: float, threshold: float) -> None:
        if drift <= 0:
            raise ValueError(f"drift a must be positive, got {drift}")
        if threshold <= 0:
            raise ValueError(f"threshold N must be positive, got {threshold}")
        self.drift = float(drift)
        self.threshold = float(threshold)
        self._n = -1
        self._statistic = 0.0
        self._cumulative_sum = 0.0
        self._minimum_sum = 0.0
        self._first_alarm_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def update(self, x: float) -> CusumState:
        """Incorporate one observation X_n and return the new state."""
        self._n += 1
        shifted = x - self.drift
        # Eq. 2: y_n = (y_{n-1} + X~_n)^+
        self._statistic = max(0.0, self._statistic + shifted)
        # Maintain S_n and min_k S_k to expose the Eq. 3 identity.
        self._cumulative_sum += shifted
        self._minimum_sum = min(self._minimum_sum, self._cumulative_sum)
        alarm = self._statistic > self.threshold
        if alarm and self._first_alarm_index is None:
            self._first_alarm_index = self._n
        return CusumState(
            n=self._n,
            x=x,
            statistic=self._statistic,
            alarm=alarm,
            cumulative_sum=self._cumulative_sum,
            minimum_sum=self._minimum_sum,
        )

    def update_many(self, xs: Iterable[float]) -> List[CusumState]:
        return [self.update(x) for x in xs]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def statistic(self) -> float:
        """Current y_n."""
        return self._statistic

    @property
    def n(self) -> int:
        """Index of the last observation (-1 before any)."""
        return self._n

    @property
    def alarm(self) -> bool:
        """Current decision d_N(y_n)."""
        return self._statistic > self.threshold

    @property
    def first_alarm_index(self) -> Optional[int]:
        """Index of the first observation at which the alarm fired, or
        None if it never has."""
        return self._first_alarm_index

    def reset(self) -> None:
        """Return to the initial state (used after an operator clears an
        alarm, or between Monte-Carlo trials)."""
        self._n = -1
        self._statistic = 0.0
        self._cumulative_sum = 0.0
        self._minimum_sum = 0.0
        self._first_alarm_index = None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The test's complete mutable state as a JSON-serializable dict.

        Together with :meth:`load_state` this is what lets a SYN-dog
        survive an agent crash without silently resetting the
        change-point test (a reset would grant the next attack a fresh
        warm-up to hide in).
        """
        return {
            "n": self._n,
            "statistic": self._statistic,
            "cumulative_sum": self._cumulative_sum,
            "minimum_sum": self._minimum_sum,
            "first_alarm_index": self._first_alarm_index,
        }

    def load_state(self, state: dict) -> None:
        """Restore the exact state produced by :meth:`state_dict`."""
        self._n = int(state["n"])
        self._statistic = float(state["statistic"])
        self._cumulative_sum = float(state["cumulative_sum"])
        self._minimum_sum = float(state["minimum_sum"])
        first_alarm = state.get("first_alarm_index")
        self._first_alarm_index = None if first_alarm is None else int(first_alarm)

    def __repr__(self) -> str:
        return (
            f"NonParametricCusum(drift={self.drift}, threshold={self.threshold}, "
            f"n={self._n}, y={self._statistic:.4f})"
        )


def cusum_statistic_series(
    observations: Sequence[float], drift: float
) -> List[float]:
    """Compute the whole y_n series for a fixed observation sequence.

    A convenience for figure generation (Figures 5, 7, 8, 9 all plot
    y_n against time).
    """
    statistic = 0.0
    series: List[float] = []
    for x in observations:
        statistic = max(0.0, statistic + (x - drift))
        series.append(statistic)
    return series
