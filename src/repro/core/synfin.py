"""SYN–FIN pair detection — the companion variant.

Pairs outgoing SYNs with outgoing FINs instead of incoming SYN/ACKs
(the design of the same authors' companion flood-detection system).
Every normal connection eventually closes, so in steady state the FIN
rate tracks the SYN rate, lagged by the connection lifetime; spoofed
flood SYNs never close anything.  The pipeline is the familiar one —
normalize the per-period difference by the EWMA of the FIN volume, feed
the non-parametric CUSUM — with two variant-specific accommodations:

* **warm-up**: at cold start the FIN stream lags the SYN stream by one
  connection lifetime, so the first few observations are skipped rather
  than fed to the CUSUM (a deployment detail the steady-state theory
  abstracts away);
* **a larger drift**: the SYN−FIN difference is noisier than
  SYN−SYN/ACK (connection lifetimes smear FINs across periods), so the
  default ``a`` is a little above the classic detector's 0.35.

The operational payoff is robustness to **asymmetric routing**: SYN and
FIN travel the same outbound path, so the variant works at routers that
never see the reverse direction — where the SYN/ACK pairing breaks
down entirely (see ``benchmarks/test_extension_synfin.py``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .parameters import SynDogParameters
from .syndog import DetectionRecord, DetectionResult, SynDog

__all__ = ["SynFinDog", "SYN_FIN_PARAMETERS"]

#: Default parameterization for the SYN–FIN pairing: same machinery,
#: slightly larger drift to absorb lifetime-induced smearing, same
#: three-period design detection time (N = 3 · (h − a) with h = 2a).
SYN_FIN_PARAMETERS = SynDogParameters(
    observation_period=20.0,
    drift=0.45,
    attack_increase=0.90,
    threshold=1.35,
)


class SynFinDog:
    """A SYN–FIN pair detector for one leaf router.

    Consumes per-period ``(syn_count, fin_count)`` reports — both
    counted on the *outbound* interface.
    """

    def __init__(
        self,
        parameters: SynDogParameters = SYN_FIN_PARAMETERS,
        warmup_periods: int = 3,
        initial_f: Optional[float] = None,
    ) -> None:
        if warmup_periods < 0:
            raise ValueError(
                f"warmup periods cannot be negative: {warmup_periods}"
            )
        self.parameters = parameters
        self.warmup_periods = warmup_periods
        self._inner = SynDog(parameters=parameters, initial_k=initial_f)
        self._period_index = 0

    def observe_period(
        self, syn_count: int, fin_count: int
    ) -> Optional[DetectionRecord]:
        """Feed one period; returns None during warm-up.

        Wall-clock bookkeeping stays absolute: warm-up consumes real
        periods, so post-warm-up records carry their true start times
        and detection delays are measured on the same clock as the
        attack window.
        """
        index = self._period_index
        self._period_index += 1
        if index < self.warmup_periods:
            # Warm the F̄ estimator without exposing the CUSUM to the
            # cold-start transient.
            self._inner.normalizer.estimator.update(fin_count)
            return None
        return self._inner.observe_period(
            syn_count,
            fin_count,
            start_time=index * self.parameters.observation_period,
        )

    def observe_counts(
        self, counts: Iterable[Tuple[int, int]]
    ) -> DetectionResult:
        for syn_count, fin_count in counts:
            self.observe_period(syn_count, fin_count)
        return self.result()

    @property
    def alarm(self) -> bool:
        return self._inner.alarm

    @property
    def statistic(self) -> float:
        return self._inner.statistic

    @property
    def f_bar(self) -> float:
        """Current EWMA of the per-period FIN volume."""
        return self._inner.k_bar

    def result(self) -> DetectionResult:
        return self._inner.result()

    def min_detectable_rate(self) -> float:
        """Eq. 8 with F̄ in place of K̄."""
        return self.parameters.min_detectable_rate(self.f_bar)

    def __repr__(self) -> str:
        return f"SynFin{self._inner!r}"
