"""The paper's primary contribution: the SYN-dog detection pipeline.

``SynDog`` wires together the two interface sniffers (Section 2), the
EWMA normalization of the SYN−SYN/ACK difference (Eq. 1), and the
non-parametric CUSUM sequential change-point test (Eq. 2–5).  The
``parameters`` module carries the analytic results (detection-time
bound Eq. 7, sensitivity floor Eq. 8, DDoS-coverage bound of
Section 4.2.3); ``detectors`` and ``sequential`` hold the baselines the
benches compare against.
"""

from .batch import (
    batch_cusum,
    batch_detect,
    batch_first_alarms,
    batch_normalize,
)
from .cusum import CusumState, NonParametricCusum, cusum_statistic_series
from .lastmile import LastMileSynDog
from .synfin import SYN_FIN_PARAMETERS, SynFinDog
from .detectors import (
    AdaptiveEwmaDetector,
    PeriodDetector,
    StaticThresholdDetector,
    SynRateDetector,
    run_detector,
)
from .normalization import EwmaEstimator, NormalizedDifference
from .parameters import (
    DEFAULT_PARAMETERS,
    TUNED_UNC_PARAMETERS,
    SynDogParameters,
)
from .sequential import (
    NonParametricCusumDetector,
    ParametricGaussianCusum,
    PosteriorTestResult,
    SequentialDetector,
    posterior_mean_shift_test,
)
from .sniffer import (
    CountExchange,
    Direction,
    InboundSniffer,
    OutboundSniffer,
    PeriodReport,
)
from .syndog import DetectionRecord, DetectionResult, SynDog

__all__ = [
    "batch_cusum",
    "batch_detect",
    "batch_first_alarms",
    "batch_normalize",
    "LastMileSynDog",
    "SYN_FIN_PARAMETERS",
    "SynFinDog",
    "CusumState",
    "NonParametricCusum",
    "cusum_statistic_series",
    "AdaptiveEwmaDetector",
    "PeriodDetector",
    "StaticThresholdDetector",
    "SynRateDetector",
    "run_detector",
    "EwmaEstimator",
    "NormalizedDifference",
    "DEFAULT_PARAMETERS",
    "TUNED_UNC_PARAMETERS",
    "SynDogParameters",
    "NonParametricCusumDetector",
    "ParametricGaussianCusum",
    "PosteriorTestResult",
    "SequentialDetector",
    "posterior_mean_shift_test",
    "CountExchange",
    "Direction",
    "InboundSniffer",
    "OutboundSniffer",
    "PeriodReport",
    "DetectionRecord",
    "DetectionResult",
    "SynDog",
]
