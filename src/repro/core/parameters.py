"""SYN-dog parameterization and the paper's analytic results (Section 3.2).

The design constants and every closed-form expression the paper derives:

* detection-time bound (Eq. 7): :math:`\\rho_N \\approx N /(h - |c - a|)`
  observation periods after the change;
* detection-sensitivity lower bound (Eq. 8):
  :math:`f_{min} = (a - c)\\,\\bar K / t_0` SYN packets per second;
* false-alarm scaling (Eq. 5): false-alarm probability decays
  exponentially in N, so mean time between false alarms grows
  exponentially;
* DDoS coverage (Section 4.2.3): against an aggregate flood of V SYN/s,
  attackers can hide among at most :math:`A = V / f_{min}` stub
  networks before each individual source drops below the detection
  floor.

Paper defaults: :math:`t_0 = 20` s, :math:`a = 0.35`, :math:`h = 2a`,
:math:`N = 1.05` (three-period design detection time), EWMA memory
:math:`\\alpha = 0.95` (paper gives no value).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["SynDogParameters", "DEFAULT_PARAMETERS", "TUNED_UNC_PARAMETERS"]


@dataclass(frozen=True)
class SynDogParameters:
    """The complete parameter set of one SYN-dog agent.

    Attributes
    ----------
    observation_period:
        :math:`t_0`, seconds per counting window.  The paper uses 20 s
        and shows the algorithm is insensitive to this choice (an
        ablation bench verifies that claim).
    drift:
        :math:`a`, the upper bound of the normalized mean during normal
        operation; 0.35 in the paper so that a universal false-alarm
        rate holds across sites.
    attack_increase:
        :math:`h`, the assumed minimum increase in the mean of X_n during
        an attack; the paper designs with ``h = 2a``.
    threshold:
        :math:`N`, the flooding threshold on the CUSUM statistic; 1.05
        in the paper (``design_detection_periods`` × (h − a) with c = 0).
    ewma_alpha:
        :math:`\\alpha` of Eq. 1.
    normal_mean:
        :math:`c = E[X_n]` under normal operation; the paper assumes
        ``c ≈ 0`` when sizing N and f_min.
    """

    observation_period: float = 20.0
    drift: float = 0.35
    attack_increase: float = 0.70
    threshold: float = 1.05
    ewma_alpha: float = 0.95
    normal_mean: float = 0.0

    def __post_init__(self) -> None:
        if self.observation_period <= 0:
            raise ValueError(
                f"observation period must be positive: {self.observation_period}"
            )
        if self.drift <= self.normal_mean:
            raise ValueError(
                "drift a must exceed the normal mean c "
                f"(a={self.drift}, c={self.normal_mean})"
            )
        if self.attack_increase <= self.normal_mean:
            raise ValueError(
                "attack increase h must exceed c "
                f"(h={self.attack_increase}, c={self.normal_mean})"
            )
        if self.threshold <= 0:
            raise ValueError(f"threshold N must be positive: {self.threshold}")
        if not 0.0 < self.ewma_alpha < 1.0:
            raise ValueError(f"alpha must lie in (0,1): {self.ewma_alpha}")

    # ------------------------------------------------------------------
    # Eq. 7 — detection time
    # ------------------------------------------------------------------
    @property
    def post_change_mean(self) -> float:
        """Mean of the shifted statistic X̃_n after the change:
        h − |c − a| (the per-period growth rate of y_n during an attack)."""
        return self.attack_increase - abs(self.normal_mean - self.drift)

    @property
    def design_detection_periods(self) -> float:
        """ρ_N · N ≈ N / (h − |c − a|): the designed detection delay in
        observation periods (Eq. 7).  With the paper's defaults this is
        1.05 / 0.35 = 3 periods = 60 s."""
        growth = self.post_change_mean
        if growth <= 0:
            return math.inf
        return self.threshold / growth

    @property
    def design_detection_seconds(self) -> float:
        return self.design_detection_periods * self.observation_period

    def detection_periods_for_rate(self, flood_rate: float, k_bar: float) -> float:
        """Expected detection delay (in periods) for an actual per-source
        flooding rate of *flood_rate* SYN/s, given the site's mean
        SYN/ACK volume *k_bar* per period.

        During such an attack the mean of X_n rises by
        ``flood_rate · t0 / k_bar``; substituting that for h in Eq. 7
        gives the expected delay.  Returns ``inf`` when the rate is at or
        below the detection floor.
        """
        if k_bar <= 0:
            raise ValueError(f"k_bar must be positive: {k_bar}")
        if flood_rate < 0:
            raise ValueError(f"flood rate cannot be negative: {flood_rate}")
        increase = flood_rate * self.observation_period / k_bar
        growth = increase - (self.drift - self.normal_mean)
        if growth <= 0:
            return math.inf
        return self.threshold / growth

    # ------------------------------------------------------------------
    # Eq. 8 — detection sensitivity
    # ------------------------------------------------------------------
    def min_detectable_rate(self, k_bar: float) -> float:
        """f_min = (a − c) · K̄ / t0, the smallest per-source SYN
        flooding rate (packets/second) the agent can eventually detect
        (Eq. 8).  UNC-sized sites (K̄ ≈ 2114/period) give ≈ 37 SYN/s;
        Auckland-sized (K̄ = 100/period) give 1.75 SYN/s."""
        if k_bar <= 0:
            raise ValueError(f"k_bar must be positive: {k_bar}")
        return (self.drift - self.normal_mean) * k_bar / self.observation_period

    def k_bar_for_min_rate(self, f_min: float) -> float:
        """Inverse of Eq. 8: the per-period SYN/ACK volume at which the
        detection floor equals *f_min*.  Used to calibrate the synthetic
        site profiles against the paper's reported floors."""
        if f_min <= 0:
            raise ValueError(f"f_min must be positive: {f_min}")
        return f_min * self.observation_period / (self.drift - self.normal_mean)

    # ------------------------------------------------------------------
    # Section 4.2.3 — DDoS coverage
    # ------------------------------------------------------------------
    def max_hidden_sources(self, aggregate_rate: float, k_bar: float) -> int:
        """The largest number A of stub networks an attacker can spread
        an *aggregate_rate* SYN/s flood across while keeping every
        individual source below this agent's detection floor.

        The paper's examples: V = 14,000 SYN/s (the rate needed to
        disable a firewall-protected server [8]) yields A ≈ 378 for
        UNC-like sites and A ≈ 8,000 for Auckland-like sites.
        """
        if aggregate_rate <= 0:
            raise ValueError(f"aggregate rate must be positive: {aggregate_rate}")
        floor = self.min_detectable_rate(k_bar)
        return int(aggregate_rate / floor)

    # ------------------------------------------------------------------
    # Eq. 5 — false-alarm scaling
    # ------------------------------------------------------------------
    def false_alarm_exponent(self, threshold: float = None) -> float:
        """The exponent N in P∞{d_N = 1} ≈ c₁·exp(−c₂·N): false-alarm
        probability decays exponentially with the threshold.  c₁, c₂
        depend on the marginal distribution and mixing coefficients of
        the traffic and 'play a secondary role'; this helper exposes the
        scaling variable used by the empirical bench."""
        return self.threshold if threshold is None else threshold

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    @classmethod
    def design(
        cls,
        drift: float = 0.35,
        target_detection_periods: float = 3.0,
        observation_period: float = 20.0,
        ewma_alpha: float = 0.95,
        normal_mean: float = 0.0,
    ) -> "SynDogParameters":
        """Derive the full parameter set the way the paper does: pick a,
        set h = 2a for a long false-alarm time, assume c = 0, and size N
        from the target detection time via Eq. 7 —
        N = target · (h − a).  The defaults reproduce the paper's
        a = 0.35, h = 0.7, N = 1.05 exactly."""
        attack_increase = 2.0 * drift
        threshold = target_detection_periods * (
            attack_increase - abs(normal_mean - drift)
        )
        return cls(
            observation_period=observation_period,
            drift=drift,
            attack_increase=attack_increase,
            threshold=threshold,
            ewma_alpha=ewma_alpha,
            normal_mean=normal_mean,
        )

    def tuned(self, drift: float, threshold: float) -> "SynDogParameters":
        """Site-specific tuning (Section 4.2.3): the operator lowers a
        and N when the local traffic allows, improving sensitivity.  The
        paper's example drops UNC's floor from 37 to 15 SYN/s with
        a = 0.2, N = 0.6 (Figure 9)."""
        return replace(
            self, drift=drift, attack_increase=2.0 * drift, threshold=threshold
        )


#: The paper's universal deployment parameters.
DEFAULT_PARAMETERS = SynDogParameters()

#: The Section 4.2.3 / Figure 9 site-tuned parameters for UNC.
TUNED_UNC_PARAMETERS = DEFAULT_PARAMETERS.tuned(drift=0.20, threshold=0.60)
