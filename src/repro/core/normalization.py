"""Online normalization of the SYN−SYN/ACK difference (Section 3.2, Eq. 1).

To make the detector independent of site size, access pattern and
time-of-day, the per-period difference
:math:`\\Delta_n = \\mathrm{SYN}(n) - \\mathrm{SYNACK}(n)` is divided by
an estimate :math:`\\bar K` of the average number of SYN/ACKs per
observation period.  :math:`\\bar K` is maintained by the exponentially
weighted moving average

.. math::    \\bar K(n) = \\alpha \\bar K(n-1) + (1-\\alpha)\\,\\mathrm{SYNACK}(n)

with memory constant :math:`\\alpha \\in (0, 1)` (the paper's Eq. 1;
it gives no numeric value, we default to 0.95 ≈ a 20-period memory).

A subtlety the paper leaves implicit: during a flooding attack the
SYN/ACK count is *unchanged* (the spoofed SYNs leave the stub network
and the victim's SYN/ACKs go elsewhere), so updating K̄ during an alarm
is safe; but a defensive *freeze-on-alarm* mode is provided for
deployments where attack traffic could contaminate the estimate.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["EwmaEstimator", "NormalizedDifference"]


class EwmaEstimator:
    """Recursive EWMA estimator of the mean SYN/ACK count K̄ (Eq. 1)."""

    def __init__(
        self,
        alpha: float = 0.95,
        initial: Optional[float] = None,
        floor: float = 1.0,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must lie strictly in (0,1), got {alpha}")
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self.alpha = float(alpha)
        self.floor = float(floor)
        self._estimate: Optional[float] = (
            None if initial is None else float(initial)
        )

    def update(self, observation: float) -> float:
        """Fold one period's SYN/ACK count into K̄ and return it.

        The first observation initializes the estimate directly (a
        standard EWMA warm-start), so the detector needs no offline
        training period.
        """
        if observation < 0:
            raise ValueError(f"negative count: {observation}")
        if self._estimate is None:
            self._estimate = float(observation)
        else:
            self._estimate = (
                self.alpha * self._estimate + (1.0 - self.alpha) * observation
            )
        return self.value

    @property
    def value(self) -> float:
        """Current K̄, clamped below by ``floor``.

        The floor keeps the normalized statistic finite on links that go
        quiet (K̄ → 0 would otherwise blow up X_n = Δ_n/K̄ and fire a
        false alarm on the first stray SYN).
        """
        if self._estimate is None:
            return self.floor
        return max(self._estimate, self.floor)

    @property
    def initialized(self) -> bool:
        return self._estimate is not None

    @property
    def raw_estimate(self) -> Optional[float]:
        """The unclamped estimate (None before the first observation) —
        what a checkpoint must carry so restore is exact even below the
        floor."""
        return self._estimate

    def load(self, estimate: Optional[float]) -> None:
        """Restore the raw estimate captured by :attr:`raw_estimate`."""
        self._estimate = None if estimate is None else float(estimate)

    def reset(self) -> None:
        self._estimate = None


class NormalizedDifference:
    """Produces the normalized observation X_n = Δ_n / K̄.

    One instance sits between the sniffers and the CUSUM test inside the
    SYN-dog agent.  ``freeze_on_alarm`` controls whether K̄ keeps
    updating while an alarm is active.
    """

    def __init__(
        self,
        alpha: float = 0.95,
        initial_k: Optional[float] = None,
        floor: float = 1.0,
        freeze_on_alarm: bool = False,
    ) -> None:
        self.estimator = EwmaEstimator(alpha=alpha, initial=initial_k, floor=floor)
        self.freeze_on_alarm = freeze_on_alarm

    def observe(
        self, syn_count: float, synack_count: float, alarm_active: bool = False
    ) -> float:
        """Fold one observation period and return X_n.

        The normalization uses the *pre-update* K̄ for the current
        period — the difference is compared against the historical
        average, not against a value already contaminated by the current
        (possibly attacked) period.
        """
        if syn_count < 0 or synack_count < 0:
            raise ValueError("packet counts cannot be negative")
        if not self.estimator.initialized:
            # Warm start: the very first period also initializes K̄.
            self.estimator.update(synack_count)
        k_bar = self.estimator.value
        x = (syn_count - synack_count) / k_bar
        if not (self.freeze_on_alarm and alarm_active):
            self.estimator.update(synack_count)
        return x

    @property
    def k_bar(self) -> float:
        return self.estimator.value
