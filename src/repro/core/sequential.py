"""Generic sequential change-detection framework (Section 3.2 background).

The paper positions the non-parametric CUSUM within the broader family
of change-detection procedures [1, 4]: *sequential* tests decide on the
fly as data arrive; *posterior* tests look at a complete data segment
offline.  This module provides the common interface plus two additional
detectors — a parametric CUSUM (for i.i.d. Gaussian data, where CUSUM
is asymptotically optimal) and a posterior mean-shift test — used by
the test suite and the ablation benches to contrast against the
non-parametric sequential test SYN-dog adopts.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .cusum import NonParametricCusum

__all__ = [
    "SequentialDetector",
    "NonParametricCusumDetector",
    "ParametricGaussianCusum",
    "posterior_mean_shift_test",
    "PosteriorTestResult",
]


class SequentialDetector(abc.ABC):
    """Interface every on-line change detector implements."""

    @abc.abstractmethod
    def update(self, x: float) -> bool:
        """Incorporate one observation; return the current alarm decision."""

    @property
    @abc.abstractmethod
    def alarm(self) -> bool:
        """Current decision."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to the initial state."""

    def run(self, observations: Sequence[float]) -> Optional[int]:
        """Feed a whole sequence; return the index of the first alarm or
        None."""
        for index, x in enumerate(observations):
            if self.update(x):
                return index
        return None


class NonParametricCusumDetector(SequentialDetector):
    """Adapter presenting :class:`NonParametricCusum` through the generic
    interface."""

    def __init__(self, drift: float, threshold: float) -> None:
        self._cusum = NonParametricCusum(drift=drift, threshold=threshold)

    def update(self, x: float) -> bool:
        return self._cusum.update(x).alarm

    @property
    def alarm(self) -> bool:
        return self._cusum.alarm

    @property
    def statistic(self) -> float:
        return self._cusum.statistic

    def reset(self) -> None:
        self._cusum.reset()


class ParametricGaussianCusum(SequentialDetector):
    """Classical parametric CUSUM for a Gaussian mean shift.

    Tests H0: X ~ N(mu0, sigma²) against H1: X ~ N(mu1, sigma²) with the
    log-likelihood-ratio recursion
    ``g_n = max(0, g_{n-1} + (mu1-mu0)/sigma² · (x - (mu0+mu1)/2))``.
    Asymptotically optimal when its model holds — but the model *must*
    be known, which is exactly what Internet connection-arrival traffic
    denies us (Section 3.2's argument for the non-parametric variant).
    """

    def __init__(
        self, mu0: float, mu1: float, sigma: float, threshold: float
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive: {sigma}")
        if mu1 <= mu0:
            raise ValueError("mu1 must exceed mu0 for an upward-shift test")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        self.mu0 = mu0
        self.mu1 = mu1
        self.sigma = sigma
        self.threshold = threshold
        self._statistic = 0.0

    def update(self, x: float) -> bool:
        slope = (self.mu1 - self.mu0) / (self.sigma ** 2)
        increment = slope * (x - (self.mu0 + self.mu1) / 2.0)
        self._statistic = max(0.0, self._statistic + increment)
        return self.alarm

    @property
    def statistic(self) -> float:
        return self._statistic

    @property
    def alarm(self) -> bool:
        return self._statistic > self.threshold

    def reset(self) -> None:
        self._statistic = 0.0


@dataclass(frozen=True)
class PosteriorTestResult:
    """Outcome of an offline change-point analysis."""

    change_detected: bool
    change_index: Optional[int]
    test_statistic: float
    threshold: float


def posterior_mean_shift_test(
    observations: Sequence[float],
    threshold: float,
    min_segment: int = 2,
) -> PosteriorTestResult:
    """Offline (posterior) mean-shift change-point test.

    Scans every admissible split point k, computing the normalized
    between-segment mean difference

    ``T(k) = |mean(X[k:]) − mean(X[:k])| · sqrt(k·(n−k)/n) / s``

    where s is the pooled standard deviation, and reports the maximizing
    split if ``max_k T(k) > threshold``.  Quadratic-ish cost and a need
    for the full segment — the properties that rule posterior tests out
    for on-line flood sniffing (Section 3.2) but make them a useful
    forensic cross-check after the fact.
    """
    n = len(observations)
    if n < 2 * min_segment:
        return PosteriorTestResult(False, None, 0.0, threshold)
    overall_mean = sum(observations) / n
    variance = sum((x - overall_mean) ** 2 for x in observations) / max(n - 1, 1)
    pooled_std = math.sqrt(variance) if variance > 0 else 1e-12

    # Prefix sums make each split O(1).
    prefix: List[float] = [0.0]
    for x in observations:
        prefix.append(prefix[-1] + x)

    best_statistic = 0.0
    best_index: Optional[int] = None
    for k in range(min_segment, n - min_segment + 1):
        left_mean = prefix[k] / k
        right_mean = (prefix[n] - prefix[k]) / (n - k)
        weight = math.sqrt(k * (n - k) / n)
        statistic = abs(right_mean - left_mean) * weight / pooled_std
        if statistic > best_statistic:
            best_statistic = statistic
            best_index = k
    detected = best_statistic > threshold
    return PosteriorTestResult(
        change_detected=detected,
        change_index=best_index if detected else None,
        test_statistic=best_statistic,
        threshold=threshold,
    )
