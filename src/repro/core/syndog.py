"""The SYN-dog agent: sniffers → normalization → CUSUM → decision.

This is the paper's contribution assembled end-to-end.  A
:class:`SynDog` ingests the packet streams at a leaf router's two
interfaces, aggregates per-period SYN / SYN-ACK counts, normalizes the
difference by the EWMA estimate of the mean SYN/ACK volume (Eq. 1),
feeds the normalized series into the non-parametric CUSUM test
(Eq. 2–4), and raises an alarm when the statistic crosses the flooding
threshold N.  Total state: two packet counters, one EWMA float, one
CUSUM float — O(1) regardless of traffic volume, which is why the agent
itself cannot be flooded.

Two ingestion styles are offered:

* packet level — :meth:`observe_outbound` / :meth:`observe_inbound`, for
  router integration and pcap replay;
* count level — :meth:`observe_period`, for trace-driven experiments
  that pre-aggregate counts (how the paper's simulations work).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.packet import Packet
from .cusum import NonParametricCusum
from .normalization import NormalizedDifference
from .parameters import DEFAULT_PARAMETERS, SynDogParameters
from .sniffer import CountExchange, PeriodReport

__all__ = ["SynDog", "DetectionRecord", "DetectionResult", "CHECKPOINT_VERSION"]

#: Version tag written into every checkpoint so a future format change
#: can refuse (or migrate) stale state instead of silently misreading it.
CHECKPOINT_VERSION = 1

#: Fallback agent names (``syndog-0``, ``syndog-1``, ...) so several
#: anonymous detectors sharing one flight recorder / event log stay
#: distinguishable.
_AGENT_SEQ = itertools.count()


@dataclass(frozen=True)
class DetectionRecord:
    """The agent's full view of one observation period."""

    period_index: int
    start_time: float
    end_time: float
    syn_count: int
    synack_count: int
    k_bar: float       #: K̄ used to normalize this period
    x: float           #: normalized difference X_n = Δ_n / K̄
    statistic: float   #: CUSUM statistic y_n
    alarm: bool        #: decision d_N(y_n)
    degraded: bool = False  #: counts were carried forward / held, not observed


@dataclass(frozen=True)
class DetectionResult:
    """Summary of a complete run over a trace."""

    records: Tuple[DetectionRecord, ...]
    first_alarm_period: Optional[int]
    first_alarm_time: Optional[float]

    @property
    def alarmed(self) -> bool:
        return self.first_alarm_period is not None

    @property
    def statistics(self) -> List[float]:
        """The y_n series — what Figures 5, 7, 8 and 9 plot."""
        return [record.statistic for record in self.records]

    @property
    def max_statistic(self) -> float:
        return max((record.statistic for record in self.records), default=0.0)

    def detection_delay_periods(self, attack_start_time: float) -> Optional[float]:
        """Detection delay in observation periods after *attack_start_time*
        (the paper's Tables 2 and 3 metric), or None if no alarm fired.

        Delay is measured from attack start to the *end* of the period
        whose report triggered the alarm, in units of t0.
        """
        if self.first_alarm_period is None or self.first_alarm_time is None:
            return None
        return max(0.0, self.first_alarm_time - attack_start_time) / (
            self.records[0].end_time - self.records[0].start_time
        )


class SynDog:
    """A SYN-dog software agent for one leaf router.

    Parameters
    ----------
    parameters:
        The detector parameterization; defaults to the paper's universal
        constants (t0 = 20 s, a = 0.35, h = 0.7, N = 1.05).
    start_time:
        Timestamp at which the first observation period opens.
    initial_k:
        Optional warm-start value for K̄; when omitted the first
        period's SYN/ACK count initializes the estimate.
    freeze_k_on_alarm:
        When True, K̄ stops updating while the alarm is active.
    staleness_cap:
        Degraded-mode bound: how many *consecutive* missing observation
        periods may be bridged by carrying the last observed counts
        forward (each such period is surfaced with ``degraded=True``).
        Beyond the cap the detector *holds* — the statistic freezes and
        K̄ stops updating — rather than keep re-feeding stale counts.
    name:
        The agent's identity in events, flight-recorder tapes and
        ``/healthz`` (a deployed agent uses its router's name);
        defaults to a process-unique ``syndog-<n>``.
    """

    def __init__(
        self,
        parameters: SynDogParameters = DEFAULT_PARAMETERS,
        start_time: float = 0.0,
        initial_k: Optional[float] = None,
        freeze_k_on_alarm: bool = False,
        staleness_cap: int = 3,
        obs: Optional[Instrumentation] = None,
        name: Optional[str] = None,
    ) -> None:
        if staleness_cap < 0:
            raise ValueError(f"staleness_cap cannot be negative: {staleness_cap}")
        self.parameters = parameters
        self.staleness_cap = int(staleness_cap)
        self.name = name if name is not None else f"syndog-{next(_AGENT_SEQ)}"
        obs = resolve_instrumentation(obs)
        self.exchange = CountExchange(
            observation_period=parameters.observation_period,
            start_time=start_time,
            obs=obs,
        )
        self.normalizer = NormalizedDifference(
            alpha=parameters.ewma_alpha,
            initial_k=initial_k,
            freeze_on_alarm=freeze_k_on_alarm,
        )
        self.cusum = NonParametricCusum(
            drift=parameters.drift, threshold=parameters.threshold
        )
        self._records: List[DetectionRecord] = []
        self._prev_alarm = False
        self._freeze_k_on_alarm = freeze_k_on_alarm
        # Degradation / restart bookkeeping: periods observed before a
        # restore, the last real counts (carry-forward source), and how
        # many periods in a row went missing.
        self._period_offset = 0
        self._last_counts: Optional[Tuple[int, int]] = None
        self._consecutive_missing = 0
        # Per-period instruments; bound once (see repro.obs hot-path
        # contract).  Period cadence is t0 = 20 s, so the enabled cost
        # is negligible even on heavy traffic.
        if obs.registry.enabled:
            registry = obs.registry
            self._m_periods = registry.counter(
                "syndog_periods_total", "Observation periods processed"
            )
            self._m_syn = registry.counter(
                "syndog_syn_total", "Outbound SYNs aggregated over all periods"
            )
            self._m_synack = registry.counter(
                "syndog_synack_total",
                "Inbound SYN/ACKs aggregated over all periods",
            )
            self._m_transitions = registry.counter(
                "syndog_alarm_transitions_total",
                "Alarm state transitions",
                ("state",),
            )
            self._g_statistic = registry.gauge(
                "syndog_statistic", "Current CUSUM statistic y_n"
            )
            self._g_x = registry.gauge(
                "syndog_x", "Latest normalized difference X_n"
            )
            self._g_k_bar = registry.gauge(
                "syndog_k_bar", "Current EWMA estimate of SYN/ACKs per period"
            )
            self._g_alarm = registry.gauge(
                "syndog_alarm", "Current decision d_N (1 = flooding source)"
            )
            self._m_degraded = registry.counter(
                "degraded_periods_total",
                "Observation periods handled in degraded mode "
                "(carried forward or held), by agent",
                ("agent",),
            ).labels(self.name)
        else:
            self._m_periods = None
            self._m_syn = None
            self._m_synack = None
            self._m_transitions = None
            self._g_statistic = None
            self._g_x = None
            self._g_k_bar = None
            self._g_alarm = None
            self._m_degraded = None
        self._events = obs.events if obs.events.enabled else None
        self._recorder = obs.recorder if obs.recorder.enabled else None
        self._tsdb = obs.tsdb if obs.tsdb.enabled else None
        self._alerts = obs.alerts if obs.alerts.enabled else None
        # Per-period stage: always timed in timers mode (sample_every=1)
        # — period cadence is t0 = 20 s, clocks here are cheap.
        self._prof_cusum = (
            obs.profiler.stage("cusum.step", sample_every=1)
            if obs.profiler.enabled
            else None
        )

    # ------------------------------------------------------------------
    # Count-level ingestion (trace-driven experiments)
    # ------------------------------------------------------------------
    def observe_period(
        self,
        syn_count: int,
        synack_count: int,
        start_time: Optional[float] = None,
    ) -> DetectionRecord:
        """Feed one observation period's aggregated counts.

        ``start_time`` defaults to contiguous periods from t = 0; when
        the caller supplies it (packet-level ingestion, warm-up-skipping
        wrappers) the period index is derived from it so record indices
        and times always agree on one absolute clock.
        """
        record = self._ingest(syn_count, synack_count, start_time, degraded=False)
        self._last_counts = (syn_count, synack_count)
        self._consecutive_missing = 0
        return record

    def observe_missing_period(
        self, start_time: Optional[float] = None
    ) -> DetectionRecord:
        """Handle one observation period whose report never arrived.

        A stalled sniffer, a lost IPC message or a restart gap must not
        silently reset (or silently skew) the change-point test, so
        missed periods are processed *explicitly*:

        * up to ``staleness_cap`` consecutive misses, the last observed
          counts are carried forward through the normal pipeline — the
          statistic keeps evolving on the best available estimate;
        * beyond the cap (or before any period was ever observed) the
          detector holds: the statistic and K̄ freeze and an empty
          record is emitted.

        Either way the record is flagged ``degraded=True`` and counted
        in ``degraded_periods_total``, so a chaos run (or a production
        incident) is visible in every export.
        """
        self._consecutive_missing += 1
        if (
            self._last_counts is None
            or self._consecutive_missing > self.staleness_cap
        ):
            return self._hold_period(start_time)
        syn_count, synack_count = self._last_counts
        return self._ingest(syn_count, synack_count, start_time, degraded=True)

    def _period_coordinates(
        self, start_time: Optional[float]
    ) -> Tuple[int, float]:
        t0 = self.parameters.observation_period
        if start_time is None:
            period_index = self._period_offset + len(self._records)
            return period_index, period_index * t0
        return int(round(start_time / t0)), start_time

    def _ingest(
        self,
        syn_count: int,
        synack_count: int,
        start_time: Optional[float],
        degraded: bool,
    ) -> DetectionRecord:
        period_index, start_time = self._period_coordinates(start_time)
        prof = self._prof_cusum
        if prof is None:
            x = self.normalizer.observe(
                syn_count, synack_count, alarm_active=self.cusum.alarm
            )
            state = self.cusum.update(x)
        else:
            # One "cusum.step" = normalization (Δ_n → X_n) + CUSUM
            # update, attributed per period.
            token = prof.begin()
            x = self.normalizer.observe(
                syn_count, synack_count, alarm_active=self.cusum.alarm
            )
            state = self.cusum.update(x)
            prof.end(token, packets=1)
        record = DetectionRecord(
            period_index=period_index,
            start_time=start_time,
            end_time=start_time + self.parameters.observation_period,
            syn_count=syn_count,
            synack_count=synack_count,
            k_bar=self.normalizer.k_bar,
            x=x,
            statistic=state.statistic,
            alarm=state.alarm,
            degraded=degraded,
        )
        self._emit_record(record)
        return record

    def _hold_period(self, start_time: Optional[float]) -> DetectionRecord:
        """Freeze-in-place handling of a stale gap: period index and
        clock advance, statistic and K̄ do not."""
        period_index, start_time = self._period_coordinates(start_time)
        record = DetectionRecord(
            period_index=period_index,
            start_time=start_time,
            end_time=start_time + self.parameters.observation_period,
            syn_count=0,
            synack_count=0,
            k_bar=self.normalizer.k_bar,
            x=0.0,
            statistic=self.cusum.statistic,
            alarm=self.cusum.alarm,
            degraded=True,
        )
        self._emit_record(record)
        return record

    def _emit_record(self, record: DetectionRecord) -> None:
        self._records.append(record)
        if self._tsdb is not None:
            # Snapshot the pipeline *before* this period's emissions
            # (the parallel merge re-creates exactly this watermark by
            # ticking before re-emitting each period event), then
            # retain the full per-period trajectory point.
            t = record.end_time
            self._tsdb.tick(t)
            labels = {"agent": self.name}
            self._tsdb.append(
                "syndog_delta", labels, t,
                float(record.syn_count - record.synack_count),
            )
            self._tsdb.append("syndog_x_n", labels, t, record.x)
            self._tsdb.append("syndog_cusum", labels, t, record.statistic)
            self._tsdb.append(
                "syndog_alarm_active", labels, t, 1.0 if record.alarm else 0.0
            )
            self._tsdb.append(
                "syndog_degraded", labels, t, 1.0 if record.degraded else 0.0
            )
        if self._m_periods is not None:
            self._m_periods.inc()
            self._m_syn.inc(record.syn_count)
            self._m_synack.inc(record.synack_count)
            self._g_statistic.set(record.statistic)
            self._g_x.set(record.x)
            self._g_k_bar.set(record.k_bar)
            self._g_alarm.set(1.0 if record.alarm else 0.0)
            if record.degraded:
                self._m_degraded.inc()
            if record.alarm != self._prev_alarm:
                self._m_transitions.labels(
                    "raised" if record.alarm else "cleared"
                ).inc()
        if self._events is not None:
            self._events.emit(
                "period",
                agent=self.name,
                period_index=record.period_index,
                start_time=record.start_time,
                end_time=record.end_time,
                syn=record.syn_count,
                synack=record.synack_count,
                k_bar=record.k_bar,
                x=record.x,
                statistic=record.statistic,
                threshold=self.parameters.threshold,
                alarm=record.alarm,
                degraded=record.degraded,
            )
            if record.alarm != self._prev_alarm:
                self._events.emit(
                    "alarm_raised" if record.alarm else "alarm_cleared",
                    agent=self.name,
                    period_index=record.period_index,
                    time=record.end_time,
                    statistic=record.statistic,
                    k_bar=record.k_bar,
                )
        if self._recorder is not None:
            # The flight-recorder snapshot: the full trajectory point,
            # threshold included, so an alarm_context replays on its own.
            self._recorder.record(
                self.name,
                {
                    "period_index": record.period_index,
                    "start_time": record.start_time,
                    "end_time": record.end_time,
                    "syn": record.syn_count,
                    "synack": record.synack_count,
                    "k_bar": record.k_bar,
                    "x": record.x,
                    "statistic": record.statistic,
                    "threshold": self.parameters.threshold,
                    "alarm": record.alarm,
                    "degraded": record.degraded,
                },
            )
        self._prev_alarm = record.alarm
        if self._alerts is not None:
            # Rules see this period's samples: evaluate after the feed.
            self._alerts.evaluate(record.end_time)

    def observe_counts(
        self, counts: Iterable[Tuple[int, int]]
    ) -> DetectionResult:
        """Run over a whole pre-aggregated (SYN, SYN/ACK) count series."""
        for syn_count, synack_count in counts:
            self.observe_period(syn_count, synack_count)
        return self.result()

    # ------------------------------------------------------------------
    # Packet-level ingestion (router integration / pcap replay)
    # ------------------------------------------------------------------
    def _consume_reports(
        self, reports: Sequence[PeriodReport]
    ) -> List[DetectionRecord]:
        return [
            self.observe_period(
                report.syn_count, report.synack_count, start_time=report.start_time
            )
            for report in reports
        ]

    def observe_outbound(self, packet: Packet) -> List[DetectionRecord]:
        """Feed one packet crossing the outbound interface.  Returns the
        detection records for any periods that closed."""
        return self._consume_reports(self.exchange.observe_outbound(packet))

    def observe_inbound(self, packet: Packet) -> List[DetectionRecord]:
        """Feed one packet crossing the inbound interface."""
        return self._consume_reports(self.exchange.observe_inbound(packet))

    def observe_streams(
        self,
        outbound: Iterable[Packet],
        inbound: Iterable[Packet],
        end_time: Optional[float] = None,
    ) -> DetectionResult:
        """Replay two already-captured packet streams through the agent.

        The streams must each be time-ordered; they are merged on
        timestamps, as the router would interleave them in real time.
        """
        merged = sorted(
            [(packet, True) for packet in outbound]
            + [(packet, False) for packet in inbound],
            key=lambda item: item[0].timestamp,
        )
        for packet, is_outbound in merged:
            if is_outbound:
                self.observe_outbound(packet)
            else:
                self.observe_inbound(packet)
        self.flush(end_time=end_time)
        return self.result()

    def flush(self, end_time: Optional[float] = None) -> List[DetectionRecord]:
        """Close the trailing observation period at end of stream."""
        return self._consume_reports(self.exchange.flush(end_time=end_time))

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def alarm(self) -> bool:
        """Current decision: is a SYN flooding source active in the stub
        network?"""
        return self.cusum.alarm

    @property
    def statistic(self) -> float:
        """Current CUSUM statistic y_n."""
        return self.cusum.statistic

    @property
    def k_bar(self) -> float:
        """Current estimate of the mean SYN/ACK volume per period."""
        return self.normalizer.k_bar

    @property
    def records(self) -> Tuple[DetectionRecord, ...]:
        return tuple(self._records)

    def result(self) -> DetectionResult:
        first_alarm = next(
            (record for record in self._records if record.alarm), None
        )
        return DetectionResult(
            records=tuple(self._records),
            first_alarm_period=None if first_alarm is None else first_alarm.period_index,
            first_alarm_time=None if first_alarm is None else first_alarm.end_time,
        )

    @property
    def degraded_periods(self) -> int:
        """How many of this agent's records were produced in degraded
        mode (carried forward or held)."""
        return sum(1 for record in self._records if record.degraded)

    def min_detectable_rate(self) -> float:
        """The agent's *current* detection floor (Eq. 8) given its live
        K̄ estimate — 37 SYN/s at a UNC-sized site, 1.75 at Auckland."""
        return self.parameters.min_detectable_rate(self.k_bar)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """The agent's complete O(1) detection state as a
        JSON-serializable dict.

        Everything a restarted process needs to continue the run as if
        never interrupted: the EWMA K̄ estimate, the CUSUM state, the
        period clock, and the degraded-mode bookkeeping.  The per-period
        record history is *not* included — it is O(n) evidence, already
        exported through events/metrics, and a restart must not need it.
        """
        return {
            "version": CHECKPOINT_VERSION,
            "name": self.name,
            "next_period_index": self._period_offset + len(self._records),
            "prev_alarm": self._prev_alarm,
            "k_estimate": self.normalizer.estimator.raw_estimate,
            "cusum": self.cusum.state_dict(),
            "exchange": self.exchange.state_dict(),
            "last_counts": (
                None if self._last_counts is None else list(self._last_counts)
            ),
            "consecutive_missing": self._consecutive_missing,
            "parameters": {
                "observation_period": self.parameters.observation_period,
                "drift": self.parameters.drift,
                "attack_increase": self.parameters.attack_increase,
                "threshold": self.parameters.threshold,
                "ewma_alpha": self.parameters.ewma_alpha,
                "normal_mean": self.parameters.normal_mean,
            },
            "staleness_cap": self.staleness_cap,
            "freeze_k_on_alarm": self._freeze_k_on_alarm,
        }

    @classmethod
    def restore(
        cls,
        state: dict,
        parameters: Optional[SynDogParameters] = None,
        obs: Optional[Instrumentation] = None,
        name: Optional[str] = None,
        counted: bool = True,
    ) -> "SynDog":
        """Rebuild an agent from a :meth:`checkpoint` dict.

        The restored agent produces records from ``next_period_index``
        onward that are bit-identical to what the uninterrupted agent
        would have produced — the guarantee the checkpoint round-trip
        tests pin down.  ``parameters``/``obs``/``name`` default to the
        checkpointed values (parameters are always reconstructed from
        the checkpoint unless overridden, so a restart cannot silently
        change the test's configuration).

        ``counted=False`` suppresses the
        ``syndog_checkpoints_restored_total`` tick: the sharded
        federation feed rebuilds healthy members from shipped
        checkpoints as a transfer mechanism, and counting those would
        make the continuity metric depend on ``--workers``.
        """
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build writes {CHECKPOINT_VERSION})"
            )
        if parameters is None:
            parameters = SynDogParameters(**state["parameters"])
        obs = resolve_instrumentation(obs)
        dog = cls(
            parameters=parameters,
            staleness_cap=int(state.get("staleness_cap", 3)),
            freeze_k_on_alarm=bool(state.get("freeze_k_on_alarm", False)),
            obs=obs,
            name=name if name is not None else state.get("name"),
        )
        dog._period_offset = int(state["next_period_index"])
        dog._prev_alarm = bool(state["prev_alarm"])
        dog.normalizer.estimator.load(state["k_estimate"])
        dog.cusum.load_state(state["cusum"])
        dog.exchange.load_state(state["exchange"])
        last_counts = state.get("last_counts")
        dog._last_counts = (
            None if last_counts is None else (int(last_counts[0]), int(last_counts[1]))
        )
        dog._consecutive_missing = int(state.get("consecutive_missing", 0))
        if counted and obs.registry.enabled:
            # Continuity accounting for /healthz: every restart that
            # resumed from a checkpoint instead of starting cold.
            obs.registry.counter(
                "syndog_checkpoints_restored_total",
                "Detector agents rebuilt from checkpoint state",
            ).inc()
        return dog

    def clear_alarm(self) -> None:
        """Operator acknowledgement: reset the CUSUM statistic to zero
        and re-arm the detector.

        The K̄ estimate and the observation clock are *kept* — clearing
        an alarm must not make the agent forget what normal traffic
        looks like, or the next attack would get a fresh warm-up to hide
        in.  If the flood is still running, the statistic re-accumulates
        and the alarm re-fires within the usual detection delay.
        """
        self.cusum.reset()

    def __repr__(self) -> str:
        return (
            f"SynDog(periods={len(self._records)}, y={self.statistic:.4f}, "
            f"K={self.k_bar:.1f}, alarm={self.alarm})"
        )
