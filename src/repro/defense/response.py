"""Closed-loop response: from firing alert to applied mitigation — and
back out again.

SYN-dog's contribution is *detection at the source*; the paper's
Section 4.2.3 sketches what a deployment does next: activate ingress
filtering, localize the flooding host, notify the victim.  This module
builds that missing half as a small, auditable control loop:

* a **playbook** — a declarative document (JSON or a YAML-lite subset)
  binding alert names to mitigation actions with per-action TTLs,
  retry budgets, and collateral-damage caps;
* a **response engine** — subscribes to
  :meth:`repro.obs.alerts.AlertManager.subscribe` transitions, applies
  the bound actions through an *actuator*, retries failures with
  backoff, rolls actions back when their alert resolves or their TTL
  expires, damps flapping with a cooldown, and aborts any action whose
  measured collateral (fraction of legitimate flows it drops) exceeds
  the playbook's cap;
* **actuators** — the only components that touch the simulated network:
  :class:`VictimActuator` installs blocklists / rate limiters /
  SYN-cookie or SYN-proxy server swaps inside a
  :class:`~repro.tcpsim.network.VictimNetwork`;
  :class:`RouterActuator` flips a leaf router's ingress filter to
  enforce mode; :class:`FlakyActuator` wraps either to inject
  deterministic apply failures for the fault benches.

Every state transition is appended to an in-memory **timeline** *and*
emitted as a ``response_action`` / ``response_aborted`` event with the
identical field set, so the mitigation timeline can be rebuilt offline
from an events JSONL alone (:func:`timeline_from_events`) and
byte-compared against the live run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Address, IPv4Network
from ..packet.packet import Packet
from .ratelimit import TokenBucket

__all__ = [
    "ActionFailure",
    "ActionSpec",
    "PlaybookRule",
    "Playbook",
    "ResponseEngine",
    "VictimActuator",
    "RouterActuator",
    "FlakyActuator",
    "parse_yaml_lite",
    "timeline_from_events",
]

#: The canonical field set of one timeline entry.  Shared by the live
#: engine and the offline replay so both produce byte-identical
#: documents.
TIMELINE_FIELDS = (
    "t",
    "alert",
    "kind",
    "outcome",
    "attempt",
    "collateral",
    "detail",
)

#: Timeline outcomes, for reference: ``applied``, ``retry`` (failed,
#: backoff scheduled), ``failed`` (retry budget exhausted),
#: ``suppressed`` (cooldown), ``rolled_back`` (alert resolved or engine
#: shutdown), ``expired`` (TTL), ``aborted`` (collateral cap),
#: ``cancelled`` (pending retry abandoned on resolution).
TIMELINE_EVENT_KINDS = ("response_action", "response_aborted")


class ActionFailure(RuntimeError):
    """An actuator could not apply (or revert) an action.

    The engine treats apply-failures as retryable up to the action's
    ``max_retries`` budget; revert-failures are recorded in the
    timeline's ``detail`` field but never retried (the action is
    considered off either way — a stuck revert must not wedge the
    engine)."""


# ----------------------------------------------------------------------
# Playbook documents
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ActionSpec:
    """One mitigation action bound to an alert.

    Parameters
    ----------
    kind:
        Actuator verb, e.g. ``block_prefixes``, ``rate_limit``,
        ``syn_cookies``, ``syn_proxy``, ``synkill``, ``ingress_filter``.
        Unknown kinds are not rejected here — the actuator raises
        :class:`ActionFailure`, which surfaces as ``failed`` in the
        timeline after retries.
    params:
        Kind-specific parameters (frozen as a sorted tuple internally so
        the spec stays hashable and picklable).
    ttl_periods:
        Automatic rollback after this many engine steps (observation
        periods); ``None`` = hold until the alert resolves.
    max_retries:
        Apply attempts beyond the first before giving up.
    backoff_periods:
        Base retry delay, in engine steps; attempt *n* waits
        ``backoff_periods * n`` steps (linear backoff).
    max_collateral_fraction:
        Safety valve: when the actuator reports a larger fraction of
        legitimate flows dropped by this action, the engine backs it
        out and emits ``response_aborted``.  ``None`` disables the
        valve.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    ttl_periods: Optional[int] = None
    max_retries: int = 0
    backoff_periods: int = 1
    max_collateral_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("action kind cannot be empty")
        if isinstance(self.params, dict):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        if self.ttl_periods is not None and self.ttl_periods < 1:
            raise ValueError(f"ttl_periods must be >= 1: {self.ttl_periods}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative: {self.max_retries}")
        if self.backoff_periods < 0:
            raise ValueError(
                f"backoff_periods cannot be negative: {self.backoff_periods}"
            )
        if self.max_collateral_fraction is not None and not (
            0.0 <= self.max_collateral_fraction <= 1.0
        ):
            raise ValueError(
                "max_collateral_fraction must lie in [0,1]: "
                f"{self.max_collateral_fraction}"
            )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ActionSpec":
        if not isinstance(doc, dict):
            raise ValueError(f"action must be a mapping: {doc!r}")
        unknown = set(doc) - {
            "kind",
            "params",
            "ttl_periods",
            "max_retries",
            "backoff_periods",
            "max_collateral_fraction",
        }
        if unknown:
            raise ValueError(f"unknown action fields: {sorted(unknown)}")
        if "kind" not in doc:
            raise ValueError(f"action missing 'kind': {doc!r}")
        params = doc.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError(f"action params must be a mapping: {params!r}")
        fraction = doc.get("max_collateral_fraction")
        return cls(
            kind=str(doc["kind"]),
            params=tuple(sorted(params.items())),
            ttl_periods=(
                None
                if doc.get("ttl_periods") is None
                else int(doc["ttl_periods"])
            ),
            max_retries=int(doc.get("max_retries", 0)),
            backoff_periods=int(doc.get("backoff_periods", 1)),
            max_collateral_fraction=(
                None if fraction is None else float(fraction)
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "ttl_periods": self.ttl_periods,
            "max_retries": self.max_retries,
            "backoff_periods": self.backoff_periods,
            "max_collateral_fraction": self.max_collateral_fraction,
        }


@dataclass(frozen=True)
class PlaybookRule:
    """Binds one alert name to the actions fired on its transitions."""

    alert: str
    actions: Tuple[ActionSpec, ...]

    def __post_init__(self) -> None:
        if not self.alert:
            raise ValueError("rule alert name cannot be empty")
        if not self.actions:
            raise ValueError(f"rule {self.alert!r} has no actions")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "PlaybookRule":
        if not isinstance(doc, dict):
            raise ValueError(f"rule must be a mapping: {doc!r}")
        actions = doc.get("actions")
        if not isinstance(actions, list):
            raise ValueError(f"rule actions must be a list: {doc!r}")
        return cls(
            alert=str(doc.get("alert", "")),
            actions=tuple(ActionSpec.from_dict(a) for a in actions),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alert": self.alert,
            "actions": [a.to_dict() for a in self.actions],
        }


@dataclass(frozen=True)
class Playbook:
    """The full response policy: rules plus global flap damping."""

    name: str
    rules: Tuple[PlaybookRule, ...]
    cooldown_periods: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("playbook name cannot be empty")
        if self.cooldown_periods < 0:
            raise ValueError(
                f"cooldown_periods cannot be negative: {self.cooldown_periods}"
            )
        seen = set()
        for rule in self.rules:
            if rule.alert in seen:
                raise ValueError(f"duplicate rule for alert {rule.alert!r}")
            seen.add(rule.alert)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Playbook":
        if not isinstance(doc, dict):
            raise ValueError(f"playbook must be a mapping: {doc!r}")
        unknown = set(doc) - {"name", "cooldown_periods", "rules"}
        if unknown:
            raise ValueError(f"unknown playbook fields: {sorted(unknown)}")
        rules = doc.get("rules")
        if not isinstance(rules, list) or not rules:
            raise ValueError("playbook needs a non-empty 'rules' list")
        return cls(
            name=str(doc.get("name", "")),
            cooldown_periods=int(doc.get("cooldown_periods", 2)),
            rules=tuple(PlaybookRule.from_dict(r) for r in rules),
        )

    @classmethod
    def from_text(cls, text: str) -> "Playbook":
        """Parse a playbook document.  Sniffs the format: documents whose
        first non-space character is ``{`` are JSON; anything else goes
        through the YAML-lite subset parser."""
        stripped = text.lstrip()
        if stripped.startswith("{"):
            return cls.from_dict(json.loads(text))
        return cls.from_dict(parse_yaml_lite(text))

    @classmethod
    def from_file(cls, path: str) -> "Playbook":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_text(handle.read())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cooldown_periods": self.cooldown_periods,
            "rules": [r.to_dict() for r in self.rules],
        }


# ----------------------------------------------------------------------
# YAML-lite
# ----------------------------------------------------------------------
def parse_yaml_lite(text: str) -> Any:
    """Parse the YAML subset playbooks are written in — no external
    dependency, no surprises.

    Supported: mappings (``key: value`` / ``key:`` + indented block),
    lists (``- scalar`` / ``- key: value`` starting an inline mapping
    whose remaining keys sit two columns deeper), scalars (``null``,
    booleans, ints, floats, quoted strings, bare strings, inline JSON
    ``[...]``/``{...}``), and ``#`` comments.  Indentation is spaces
    only; tabs are rejected.
    """
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        if " #" in raw and '"' not in raw and "'" not in raw:
            raw = raw.split(" #", 1)[0]
            if not raw.strip():
                continue
        indent = len(raw) - len(raw.lstrip(" \t"))
        if "\t" in raw[:indent]:
            raise ValueError("YAML-lite: tabs not allowed in indentation")
        lines.append((indent, raw.strip()))
    if not lines:
        raise ValueError("YAML-lite: empty document")
    value, pos = _parse_block(lines, 0, lines[0][0])
    if pos != len(lines):
        raise ValueError(
            f"YAML-lite: unparsed trailing content: {lines[pos][1]!r}"
        )
    return value


def _parse_block(
    lines: List[Tuple[int, str]], pos: int, indent: int
) -> Tuple[Any, int]:
    if lines[pos][1].startswith("- ") or lines[pos][1] == "-":
        return _parse_list(lines, pos, indent)
    return _parse_mapping(lines, pos, indent)


def _parse_child_block(
    lines: List[Tuple[int, str]], pos: int, parent_indent: int
) -> Tuple[Any, int]:
    """Parse the block indented deeper than *parent_indent* (the value of
    a ``key:`` line); an absent block means ``None``."""
    if pos >= len(lines) or lines[pos][0] <= parent_indent:
        return None, pos
    return _parse_block(lines, pos, lines[pos][0])


def _parse_mapping(
    lines: List[Tuple[int, str]], pos: int, indent: int
) -> Tuple[Dict[str, Any], int]:
    result: Dict[str, Any] = {}
    while pos < len(lines) and lines[pos][0] == indent:
        content = lines[pos][1]
        if content.startswith("- ") or content == "-":
            break
        key, sep, rest = content.partition(":")
        if not sep:
            raise ValueError(f"YAML-lite: expected 'key: value': {content!r}")
        key = key.strip()
        if key in result:
            raise ValueError(f"YAML-lite: duplicate key {key!r}")
        rest = rest.strip()
        pos += 1
        if rest:
            result[key] = _parse_scalar(rest)
        else:
            result[key], pos = _parse_child_block(lines, pos, indent)
    if pos < len(lines) and lines[pos][0] > indent:
        raise ValueError(
            f"YAML-lite: unexpected indent at {lines[pos][1]!r}"
        )
    return result, pos


def _parse_list(
    lines: List[Tuple[int, str]], pos: int, indent: int
) -> Tuple[List[Any], int]:
    result: List[Any] = []
    while pos < len(lines) and lines[pos][0] == indent:
        content = lines[pos][1]
        if not (content.startswith("- ") or content == "-"):
            break
        inline = content[1:].strip()
        item_indent = indent + 2
        if not inline:
            value, pos = _parse_child_block(lines, pos + 1, indent)
            result.append(value)
            continue
        if inline[0] not in "\"'" and ":" in inline:
            # "- key: value" opens a mapping item; its remaining keys
            # continue at the column where "key" started.
            key, _, rest = inline.partition(":")
            mapping: Dict[str, Any] = {}
            rest = rest.strip()
            pos += 1
            if rest:
                mapping[key.strip()] = _parse_scalar(rest)
            else:
                mapping[key.strip()], pos = _parse_child_block(
                    lines, pos, item_indent
                )
            if pos < len(lines) and lines[pos][0] == item_indent:
                more, pos = _parse_mapping(lines, pos, item_indent)
                overlap = set(mapping) & set(more)
                if overlap:
                    raise ValueError(
                        f"YAML-lite: duplicate key {sorted(overlap)!r}"
                    )
                mapping.update(more)
            result.append(mapping)
        else:
            result.append(_parse_scalar(inline))
            pos += 1
    return result, pos


def _parse_scalar(text: str) -> Any:
    if text[0] in "\"'" and len(text) >= 2 and text[-1] == text[0]:
        if text[0] == '"':
            return json.loads(text)
        return text[1:-1]
    if text[0] in "[{":
        return json.loads(text)
    lowered = text.lower()
    if lowered in ("null", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class _ActiveAction:
    spec: ActionSpec
    alert: str
    applied_step: int


@dataclass
class _PendingRetry:
    spec: ActionSpec
    alert: str
    attempt: int  # the attempt number the retry will make (>= 2)
    due_step: int


ActionKey = Tuple[str, str]  # (alert, kind)


class ResponseEngine:
    """Turns alert transitions into bounded, reversible mitigations.

    Wire-up::

        engine = ResponseEngine(playbook, actuator, obs=obs)
        engine.attach(obs.alerts)          # subscribe to transitions
        ...
        engine.step(t)                     # once per observation period
        ...
        engine.finish(t)                   # drain + roll everything back

    ``step`` is the only place side effects happen: transitions arriving
    via the subscription are queued and processed on the next step, so
    the engine's behaviour is a deterministic function of the transition
    sequence and the step clock — which is what makes the mitigation
    timeline replayable and worker-count independent.
    """

    def __init__(
        self,
        playbook: Playbook,
        actuator: "Actuator",
        obs: Optional[Instrumentation] = None,
        name: str = "response",
    ) -> None:
        self.playbook = playbook
        self.actuator = actuator
        self.name = name
        self._rules: Dict[str, PlaybookRule] = {
            rule.alert: rule for rule in playbook.rules
        }
        self._queue: List[Dict[str, Any]] = []
        self._active: Dict[ActionKey, _ActiveAction] = {}
        self._retries: Dict[ActionKey, _PendingRetry] = {}
        self._deferred: Dict[ActionKey, Tuple[ActionSpec, str]] = {}
        self._cooldown_until: Dict[ActionKey, int] = {}
        self._alert_state: Dict[str, str] = {}
        self._step_index = 0
        self.timeline: List[Dict[str, Any]] = []
        self.aborted = 0
        self.peak_collateral = 0.0
        obs = resolve_instrumentation(obs)
        self._events = obs.events
        self._tsdb = obs.tsdb
        self._m_actions = (
            obs.registry.counter(
                "response_actions_total",
                "Response-engine action transitions by kind and outcome",
                ("kind", "outcome"),
            )
            if obs.registry.enabled
            else None
        )

    # -- subscription --------------------------------------------------
    def attach(self, manager: Any) -> "ResponseEngine":
        """Subscribe to an :class:`~repro.obs.alerts.AlertManager`."""
        manager.subscribe(self.on_transition)
        return self

    def on_transition(self, record: Dict[str, Any]) -> None:
        """Alert-transition callback (also callable directly in tests
        and in offline replay drivers)."""
        rule = record.get("rule")
        to = record.get("to")
        if rule is None or to is None:
            return
        self._alert_state[rule] = to
        if rule in self._rules and to in ("firing", "resolved", "cancelled"):
            self._queue.append({"rule": rule, "to": to})

    # -- the step clock ------------------------------------------------
    def step(self, t: float) -> None:
        """Process one observation period ending at time *t*."""
        self._step_index += 1
        step = self._step_index

        # 1. Cooldowns that ran out while the alert kept firing: the
        #    deferred action finally applies (no new transition will
        #    arrive for an alert that never stopped firing).
        for key in sorted(self._deferred):
            spec, alert = self._deferred[key]
            if self._alert_state.get(alert) != "firing":
                del self._deferred[key]
            elif self._cooldown_until.get(key, 0) <= step:
                del self._deferred[key]
                self._attempt(key, spec, alert, t, attempt=1)

        # 2. Due retries.
        for key in sorted(self._retries):
            retry = self._retries[key]
            if retry.due_step <= step:
                del self._retries[key]
                self._attempt(key, retry.spec, retry.alert, t, retry.attempt)

        # 3. Queued alert transitions, in arrival order.
        queue, self._queue = self._queue, []
        for transition in queue:
            if transition["to"] == "firing":
                self._handle_firing(transition["rule"], t)
            else:
                self._handle_resolution(transition["rule"], t)

        # 4. TTL expiry.
        for key in sorted(self._active):
            active = self._active[key]
            ttl = active.spec.ttl_periods
            if ttl is not None and step - active.applied_step >= ttl:
                self._rollback(key, t, "expired", "ttl expired")

        # 5. Safety valve: measured collateral above the cap backs the
        #    action out — protecting the service from its own defense.
        for key in sorted(self._active):
            active = self._active[key]
            cap = active.spec.max_collateral_fraction
            if cap is None:
                continue
            fraction = self.actuator.collateral(active.spec)
            if fraction > cap:
                # The abort removes the action before the stage-6 sweep,
                # so fold its measurement into the peak here.
                self.peak_collateral = max(self.peak_collateral, fraction)
                self._rollback(
                    key,
                    t,
                    "aborted",
                    f"collateral {fraction:.6f} > cap {cap:.6f}",
                    collateral=fraction,
                )

        # 6. Health series for dashboards and the respond-smoke CI job.
        worst = 0.0
        for active in self._active.values():
            worst = max(worst, self.actuator.collateral(active.spec))
        self.peak_collateral = max(self.peak_collateral, worst)
        self._tsdb.append(
            "response_active_actions", None, t, float(len(self._active))
        )
        self._tsdb.append("response_collateral_fraction", None, t, worst)

    def finish(self, t: float) -> None:
        """End of campaign: drain queued transitions, abandon pending
        retries, and roll back whatever is still active."""
        self.step(t)
        for key in sorted(self._retries):
            retry = self._retries.pop(key)
            self._record(
                t, retry.alert, key[1], "cancelled", retry.attempt, None,
                "engine shutdown",
            )
        self._deferred.clear()
        for key in sorted(self._active):
            self._rollback(key, t, "rolled_back", "engine shutdown")

    # -- transition handling -------------------------------------------
    def _handle_firing(self, alert: str, t: float) -> None:
        rule = self._rules[alert]
        for spec in rule.actions:
            key = (alert, spec.kind)
            if key in self._active or key in self._retries:
                continue
            if self._cooldown_until.get(key, 0) > self._step_index:
                self._record(
                    t, alert, spec.kind, "suppressed", 0, None, "cooldown"
                )
                self._deferred[key] = (spec, alert)
                continue
            self._attempt(key, spec, alert, t, attempt=1)

    def _handle_resolution(self, alert: str, t: float) -> None:
        for key in sorted(k for k in self._active if k[0] == alert):
            self._rollback(key, t, "rolled_back", "alert resolved")
        for key in sorted(k for k in self._retries if k[0] == alert):
            retry = self._retries.pop(key)
            self._record(
                t, alert, key[1], "cancelled", retry.attempt, None,
                "alert resolved",
            )
        for key in sorted(k for k in self._deferred if k[0] == alert):
            del self._deferred[key]

    def _attempt(
        self, key: ActionKey, spec: ActionSpec, alert: str, t: float, attempt: int
    ) -> None:
        try:
            self.actuator.apply(spec)
        except ActionFailure as exc:
            if attempt > spec.max_retries:
                self._record(
                    t, alert, spec.kind, "failed", attempt, None, str(exc)
                )
                self._cooldown_until[key] = (
                    self._step_index + self.playbook.cooldown_periods
                )
            else:
                due = self._step_index + max(
                    1, spec.backoff_periods * attempt
                )
                self._retries[key] = _PendingRetry(
                    spec=spec, alert=alert, attempt=attempt + 1, due_step=due
                )
                self._record(
                    t, alert, spec.kind, "retry", attempt, None, str(exc)
                )
        else:
            self._active[key] = _ActiveAction(
                spec=spec, alert=alert, applied_step=self._step_index
            )
            self._record(t, alert, spec.kind, "applied", attempt, None, "")

    def _rollback(
        self,
        key: ActionKey,
        t: float,
        outcome: str,
        detail: str,
        collateral: Optional[float] = None,
    ) -> None:
        active = self._active.pop(key)
        try:
            self.actuator.revert(active.spec)
        except ActionFailure as exc:
            detail = f"{detail}; revert failed: {exc}"
        self._cooldown_until[key] = (
            self._step_index + self.playbook.cooldown_periods
        )
        if outcome == "aborted":
            self.aborted += 1
        self._record(t, active.alert, key[1], outcome, 0, collateral, detail)

    # -- recording -----------------------------------------------------
    def _record(
        self,
        t: float,
        alert: str,
        kind: str,
        outcome: str,
        attempt: int,
        collateral: Optional[float],
        detail: str,
    ) -> None:
        entry = {
            "t": round(float(t), 9),
            "alert": alert,
            "kind": kind,
            "outcome": outcome,
            "attempt": int(attempt),
            "collateral": (
                None if collateral is None else round(float(collateral), 9)
            ),
            "detail": detail,
        }
        self.timeline.append(entry)
        if self._m_actions is not None:
            self._m_actions.labels(kind, outcome).inc()
        event_kind = (
            "response_aborted" if outcome == "aborted" else "response_action"
        )
        # The event payload carries the timeline entry verbatim, except
        # "kind" travels as "action" ("kind" is the event-log's own
        # positional field); timeline_from_events maps it back.
        payload = dict(entry)
        payload["action"] = payload.pop("kind")
        self._events.emit(event_kind, **payload)

    # -- summaries -----------------------------------------------------
    @property
    def active_actions(self) -> List[str]:
        return sorted(f"{alert}/{kind}" for alert, kind in self._active)

    def to_dict(self) -> Dict[str, Any]:
        outcomes: Dict[str, int] = {}
        for entry in self.timeline:
            outcomes[entry["outcome"]] = outcomes.get(entry["outcome"], 0) + 1
        return {
            "playbook": self.playbook.to_dict(),
            "steps": self._step_index,
            "active_actions": self.active_actions,
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "aborted": self.aborted,
            "peak_collateral": round(self.peak_collateral, 9),
            "timeline": [dict(entry) for entry in self.timeline],
        }


def timeline_from_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild the mitigation timeline from recorded events alone.

    Feed it the parsed JSONL a run wrote (see
    :func:`repro.obs.events.read_jsonl`); the result is entry-for-entry
    identical to the live engine's ``timeline`` — the property the
    ``repro respond --replay`` path and its byte-diff test rely on."""
    timeline: List[Dict[str, Any]] = []
    for event in events:
        if event.get("event") not in TIMELINE_EVENT_KINDS:
            continue
        timeline.append(
            {
                name: event.get("action" if name == "kind" else name)
                for name in TIMELINE_FIELDS
            }
        )
    return timeline


# ----------------------------------------------------------------------
# Actuators
# ----------------------------------------------------------------------
class Actuator:
    """Interface the engine drives.  ``apply``/``revert`` raise
    :class:`ActionFailure` on error; ``collateral`` reports the fraction
    of legitimate flows the action has dropped since it applied."""

    def apply(self, spec: ActionSpec) -> None:
        raise NotImplementedError

    def revert(self, spec: ActionSpec) -> None:
        raise NotImplementedError

    def collateral(self, spec: ActionSpec) -> float:
        return 0.0


class VictimActuator(Actuator):
    """Applies mitigations inside a live
    :class:`~repro.tcpsim.network.VictimNetwork`.

    The actuator doubles as the victim-side traffic observer: wire
    :meth:`observe` into the network's ``tap_inbound`` so it can build
    the suspect-prefix ranking that ``block_prefixes`` consumes.
    Ranking is a Space-Saving top-K sketch over per-prefix SYN arrivals
    (the PR-7 rollup machinery), discounted by completed handshakes per
    prefix — prefixes whose SYNs complete are almost certainly
    legitimate, prefixes whose SYNs never complete are the flood.

    Supported action kinds:

    ``block_prefixes``
        Install an inbound blocklist of the top suspect prefixes
        (params: ``top_k`` = 4, ``min_score`` = 1.0).
    ``rate_limit``
        Token-bucket inbound SYNs (params: ``rate`` required,
        ``burst`` = rate).  Indiscriminate by design — the action the
        safety valve exists for.
    ``syn_cookies``
        Swap the victim server for a stateless
        :class:`~repro.defense.syncookies.SynCookieServer`; revert swaps
        the original back.
    ``syn_proxy``
        Interpose a :class:`~repro.defense.proxy.SynProxy` in front of
        the server (params: ``pending_capacity`` = 4096,
        ``pending_timeout`` = 10.0).
    ``synkill``
        Arm a :class:`~repro.defense.synkill.SynkillMonitor` that RST-
        flushes half-open entries of never-completing sources (params:
        ``staleness`` = 6.0, ``expiry`` = 300.0).
    """

    def __init__(
        self,
        network: Any,
        prefix_bits: int = 16,
        suspect_capacity: int = 64,
        ack_forgiveness: float = 4.0,
        seed: int = 0x5D06,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        from ..obs.rollup import SpaceSavingTopK

        if not 1 <= prefix_bits <= 32:
            raise ValueError(f"prefix_bits out of range: {prefix_bits}")
        if ack_forgiveness < 0:
            raise ValueError(
                f"ack_forgiveness cannot be negative: {ack_forgiveness}"
            )
        self.network = network
        self.prefix_bits = prefix_bits
        self.ack_forgiveness = ack_forgiveness
        self.seed = seed
        #: Passed into the defense primitives this actuator instantiates
        #: (cookie server, proxy) so their counters land in the same
        #: registry as the engine's response_* series.
        self.obs = obs
        self.suspects = SpaceSavingTopK(suspect_capacity, mode="sum")
        self._prefix_acks: Dict[str, int] = {}
        self._blocked: Dict[str, IPv4Network] = {}
        #: Every prefix ever blocked (survives rollback — the incident
        #: record the campaign report lists).
        self.blocked_history: List[str] = []
        self._bucket: Optional[TokenBucket] = None
        self._saved_server: Any = None
        self._proxy: Any = None
        self._saved_receiver: Any = None
        self._synkill: Any = None
        self.legit_syns_seen = 0
        self._legit_seen_at_apply: Dict[str, int] = {}
        self._legit_drops: Dict[str, int] = {}
        self._flood_drops: Dict[str, int] = {}
        network.inbound_filter = self._filter_inbound

    # -- observation ---------------------------------------------------
    def _prefix_of(self, address: IPv4Address) -> str:
        mask = (0xFFFFFFFF << (32 - self.prefix_bits)) & 0xFFFFFFFF
        return f"{IPv4Address(int(address) & mask)}/{self.prefix_bits}"

    def observe(self, packet: Packet) -> None:
        """Passive tap on the victim's inbound interface (pre-filter)."""
        segment = packet.tcp
        if segment is None or packet.dst_ip != self.network.victim_address:
            return
        if segment.is_syn and not segment.is_syn_ack:
            prefix = self._prefix_of(packet.src_ip)
            self.suspects.offer(prefix, 1.0)
            if int(packet.src_ip) in self.network.clients:
                self.legit_syns_seen += 1
        elif segment.flags and not segment.is_rst:
            # A non-SYN toward the service: handshake-completion (or
            # data) evidence that this prefix holds real hosts.
            prefix = self._prefix_of(packet.src_ip)
            self._prefix_acks[prefix] = self._prefix_acks.get(prefix, 0) + 1
        if self._synkill is not None:
            self._synkill.observe(packet)

    def suspect_ranking(self) -> List[Tuple[str, float]]:
        """Prefixes by unanswered-SYN score, descending (name-ascending
        ties): SYN count from the sketch, discounted by completions.

        Each completion forgives ``ack_forgiveness`` SYNs, not one — a
        client whose handshake eventually succeeds typically sent
        several retransmitted SYNs first (TCP retries while the victim's
        backlog is full), and those must not read as flood evidence.  A
        prefix with real hosts completing handshakes therefore scores at
        or below zero even mid-attack, while a spoofed-source flood
        (zero completions) keeps its full SYN volume."""
        scored = [
            (
                entry["agent"],
                entry["weight"]
                - self.ack_forgiveness
                * self._prefix_acks.get(entry["agent"], 0),
            )
            for entry in self.suspects.top()
        ]
        return sorted(scored, key=lambda item: (-item[1], item[0]))

    # -- the inbound filter (installed at construction) ----------------
    def _filter_inbound(self, packet: Packet) -> bool:
        segment = packet.tcp
        if segment is None or not segment.is_syn or segment.is_syn_ack:
            return True
        legitimate = int(packet.src_ip) in self.network.clients
        if self._blocked:
            value = int(packet.src_ip)
            for network in self._blocked.values():
                if (value & network.netmask_int) == int(network.network):
                    bucket = (
                        self._legit_drops if legitimate else self._flood_drops
                    )
                    bucket["block_prefixes"] = (
                        bucket.get("block_prefixes", 0) + 1
                    )
                    return False
        if self._bucket is not None and not self._bucket.consume(
            packet.timestamp
        ):
            bucket = self._legit_drops if legitimate else self._flood_drops
            bucket["rate_limit"] = bucket.get("rate_limit", 0) + 1
            return False
        return True

    # -- engine interface ----------------------------------------------
    def apply(self, spec: ActionSpec) -> None:
        params = spec.params_dict
        handler = getattr(self, f"_apply_{spec.kind}", None)
        if handler is None:
            raise ActionFailure(f"unsupported action kind: {spec.kind!r}")
        handler(params)
        self._legit_seen_at_apply[spec.kind] = self.legit_syns_seen
        self._legit_drops[spec.kind] = 0
        self._flood_drops[spec.kind] = 0

    def revert(self, spec: ActionSpec) -> None:
        handler = getattr(self, f"_revert_{spec.kind}", None)
        if handler is None:
            raise ActionFailure(f"unsupported action kind: {spec.kind!r}")
        handler()

    def collateral(self, spec: ActionSpec) -> float:
        dropped = self._legit_drops.get(spec.kind, 0)
        if not dropped:
            return 0.0
        seen = self.legit_syns_seen - self._legit_seen_at_apply.get(
            spec.kind, 0
        )
        return dropped / max(1, seen)

    def drops(self, kind: str) -> Dict[str, int]:
        return {
            "legitimate": self._legit_drops.get(kind, 0),
            "flood": self._flood_drops.get(kind, 0),
        }

    def blocked_prefixes(self) -> List[str]:
        return sorted(self._blocked)

    # -- action kinds --------------------------------------------------
    def _apply_block_prefixes(self, params: Dict[str, Any]) -> None:
        top_k = int(params.get("top_k", 4))
        min_score = float(params.get("min_score", 1.0))
        selected = [
            name
            for name, score in self.suspect_ranking()[:top_k]
            if score >= min_score
        ]
        if not selected:
            raise ActionFailure("no suspect prefixes above min_score")
        self._blocked = {
            name: IPv4Network.parse(name) for name in selected
        }
        for name in selected:
            if name not in self.blocked_history:
                self.blocked_history.append(name)

    def _revert_block_prefixes(self) -> None:
        self._blocked = {}

    def _apply_rate_limit(self, params: Dict[str, Any]) -> None:
        rate = float(params.get("rate", 0.0))
        if rate <= 0:
            raise ActionFailure(f"rate_limit needs a positive rate: {rate}")
        burst = float(params.get("burst", rate))
        self._bucket = TokenBucket(rate=rate, burst=burst)

    def _revert_rate_limit(self) -> None:
        self._bucket = None

    def _apply_syn_cookies(self, params: Dict[str, Any]) -> None:
        import random

        from .syncookies import SynCookieServer

        if self._saved_server is not None:
            raise ActionFailure("syn_cookies already active")
        cookie_server = SynCookieServer(
            self.network.scheduler,
            address=self.network.victim_address,
            output=self.network.from_victim.send,
            rng=random.Random(int(params.get("seed", self.seed))),
            obs=self.obs,
        )
        self._saved_server = self.network.swap_server(cookie_server)

    def _revert_syn_cookies(self) -> None:
        if self._saved_server is None:
            raise ActionFailure("syn_cookies not active")
        self.network.swap_server(self._saved_server)
        self._saved_server = None

    def _apply_syn_proxy(self, params: Dict[str, Any]) -> None:
        import random

        from .proxy import SynProxy

        if self._proxy is not None:
            raise ActionFailure("syn_proxy already active")
        proxy = SynProxy(
            self.network.scheduler,
            to_client=self.network.from_victim.send,
            to_server=self.network.server.receive,
            server_address=self.network.victim_address,
            pending_capacity=int(params.get("pending_capacity", 4096)),
            pending_timeout=float(params.get("pending_timeout", 10.0)),
            rng=random.Random(int(params.get("seed", self.seed))),
            obs=self.obs,
        )
        self._proxy = proxy
        self._saved_receiver = self.network.server_receiver
        self.network.server_receiver = proxy.receive_from_client
        self.network.outbound_interceptor = proxy.receive_from_server

    def _revert_syn_proxy(self) -> None:
        if self._proxy is None:
            raise ActionFailure("syn_proxy not active")
        self.network.server_receiver = self._saved_receiver
        self.network.outbound_interceptor = None
        self._proxy = None
        self._saved_receiver = None

    def _apply_synkill(self, params: Dict[str, Any]) -> None:
        from .synkill import SynkillMonitor

        if self._synkill is not None:
            raise ActionFailure("synkill already active")

        def inject(packet: Packet) -> None:
            # Mute injections scheduled before a revert: the monitor's
            # staleness timers may fire after the action is rolled back.
            if self._synkill is monitor:
                self.network.server.receive(packet)

        monitor = SynkillMonitor(
            self.network.scheduler,
            inject=inject,
            server_address=self.network.victim_address,
            staleness=float(params.get("staleness", 6.0)),
            expiry=float(params.get("expiry", 300.0)),
        )
        self._synkill = monitor

    def _revert_synkill(self) -> None:
        if self._synkill is None:
            raise ActionFailure("synkill not active")
        self._synkill = None


class RouterActuator(Actuator):
    """Drives a leaf router's RFC 2267 ingress filter — the source-side
    response of the paper's Section 4.2.3.  Supports one kind,
    ``ingress_filter``: apply switches the filter to enforce mode,
    revert returns it to monitor mode."""

    def __init__(self, ingress_filter: Any) -> None:
        self.filter = ingress_filter

    def apply(self, spec: ActionSpec) -> None:
        if spec.kind != "ingress_filter":
            raise ActionFailure(f"unsupported action kind: {spec.kind!r}")
        self.filter.enforce = True

    def revert(self, spec: ActionSpec) -> None:
        if spec.kind != "ingress_filter":
            raise ActionFailure(f"unsupported action kind: {spec.kind!r}")
        self.filter.enforce = False

    def collateral(self, spec: ActionSpec) -> float:
        # Ingress filtering drops only spoofed-source frames: zero
        # collateral by construction (the paper's selling point).
        return 0.0


class FlakyActuator(Actuator):
    """Deterministic fault injector for the retry/backoff benches: the
    first *failures* ``apply`` calls (optionally only for *kinds*)
    raise :class:`ActionFailure`, then the wrapped actuator takes over.
    Reverts always pass through."""

    def __init__(
        self,
        inner: Actuator,
        failures: int = 1,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if failures < 0:
            raise ValueError(f"failures cannot be negative: {failures}")
        self.inner = inner
        self.failures_remaining = failures
        self.kinds = kinds
        self.faults_injected = 0

    def apply(self, spec: ActionSpec) -> None:
        if self.failures_remaining > 0 and (
            self.kinds is None or spec.kind in self.kinds
        ):
            self.failures_remaining -= 1
            self.faults_injected += 1
            raise ActionFailure(
                f"injected actuator fault ({self.faults_injected})"
            )
        self.inner.apply(spec)

    def revert(self, spec: ActionSpec) -> None:
        self.inner.revert(spec)

    def collateral(self, spec: ActionSpec) -> float:
        return self.inner.collateral(spec)
