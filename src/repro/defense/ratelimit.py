"""Egress SYN rate limiting — the blunt-response baseline.

When an operator suspects outbound flooding but has no detector, the
reflex response is a token-bucket police on outbound SYNs at the leaf
router.  It "works" — the flood is clipped to the bucket rate — but it
is indiscriminate: during a legitimate flash crowd the same police
clips real users' connection attempts.  SYN-dog's response chain
(detect → ingress-filter only *spoofed-source* frames → localize the
host) removes the flood with zero collateral, which the
``test_extension_response.py`` bench quantifies side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.classify import PacketClass, classify_packet
from ..packet.packet import Packet

__all__ = ["TokenBucket", "EgressSynLimiter"]


@dataclass
class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, capacity
    ``burst``.  ``consume`` returns False when the bucket is empty."""

    rate: float
    burst: float
    _tokens: float = None  # type: ignore[assignment]
    _last_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive: {self.burst}")
        if self._tokens is None:
            self._tokens = self.burst

    def consume(self, now: float, tokens: float = 1.0) -> bool:
        if now < self._last_time:
            # Non-monotonic clocks are a fact of life the fault model
            # reproduces (FaultKind.CLOCK_SKEW can move packet
            # timestamps backwards).  Refilling from a negative elapsed
            # would destroy tokens, and raising would take the whole
            # forwarding path down with it — so clamp: a skewed
            # timestamp counts as "no time has passed" and the
            # monotone high-water mark is kept.
            now = self._last_time
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_time) * self.rate
        )
        self._last_time = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class EgressSynLimiter:
    """Polices outbound SYNs at a leaf router.

    ``check(packet)`` returns True when the packet may be forwarded.
    Non-SYN packets always pass; SYNs consume a token each.  The
    counters expose exactly what the response-comparison bench needs:
    how many SYNs were clipped, and the caller decides (from ground
    truth) how many of those were legitimate.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.bucket = TokenBucket(
            rate=rate, burst=burst if burst is not None else max(rate, 1.0)
        )
        self.syns_seen = 0
        self.syns_dropped = 0
        obs = resolve_instrumentation(obs)
        self._m_drops = (
            obs.registry.counter(
                "defense_limiter_drops_total",
                "Outbound SYNs clipped by the egress token bucket",
            )
            if obs.registry.enabled
            else None
        )

    def check(self, packet: Packet) -> bool:
        if classify_packet(packet) is not PacketClass.SYN:
            return True
        self.syns_seen += 1
        if self.bucket.consume(packet.timestamp):
            return True
        self.syns_dropped += 1
        if self._m_drops is not None:
            self._m_drops.inc()
        return False

    @property
    def drop_fraction(self) -> float:
        if self.syns_seen == 0:
            return 0.0
        return self.syns_dropped / self.syns_seen
