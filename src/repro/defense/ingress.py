"""Network ingress filtering (Ferguson & Senie, RFC 2267 [11]).

The source-side filter SYN-dog triggers after an alarm (Section 4.2.3):
a leaf router drops outbound packets whose source address does not
belong to the stub network it serves, defeating source-address
spoofing at its origin.  The filter also *logs* the offending frames'
MAC addresses, which feeds the localization step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Network, MACAddress
from ..packet.packet import Packet

__all__ = ["IngressFilter", "SpoofObservation"]


@dataclass(frozen=True)
class SpoofObservation:
    """One outbound packet caught with a source outside the stub prefix."""

    timestamp: float
    spoofed_source: str
    mac: MACAddress
    destination: str


class IngressFilter:
    """RFC 2267 ingress filtering for one leaf router.

    ``check(packet)`` returns True when the packet may be forwarded.
    The filter can run in *monitor* mode (log but forward) — the state
    SYN-dog keeps it in before an alarm — or *enforce* mode (drop),
    which the agent switches on when a flooding source is detected.
    """

    def __init__(
        self,
        stub_network: IPv4Network,
        enforce: bool = False,
        max_log: int = 100_000,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if max_log <= 0:
            raise ValueError(f"max_log must be positive: {max_log}")
        self.stub_network = stub_network
        self.enforce = enforce
        self.max_log = max_log
        self.observations: List[SpoofObservation] = []
        self.packets_checked = 0
        self.packets_dropped = 0
        obs = resolve_instrumentation(obs)
        self._m_blocked = (
            obs.registry.counter(
                "defense_ingress_blocked_total",
                "Spoofed-source packets dropped by ingress filtering "
                "(enforce mode only)",
            )
            if obs.registry.enabled
            else None
        )

    def check(self, packet: Packet) -> bool:
        """Validate one outbound packet; True = forward, False = drop."""
        self.packets_checked += 1
        if packet.src_ip in self.stub_network:
            return True
        if len(self.observations) < self.max_log:
            self.observations.append(
                SpoofObservation(
                    timestamp=packet.timestamp,
                    spoofed_source=str(packet.src_ip),
                    mac=packet.src_mac,
                    destination=str(packet.dst_ip),
                )
            )
        if self.enforce:
            self.packets_dropped += 1
            if self._m_blocked is not None:
                self._m_blocked.inc()
            return False
        return True

    def activate(self) -> None:
        """Switch to enforce mode (what a SYN-dog alarm triggers)."""
        self.enforce = True

    def macs_by_spoof_volume(self) -> List[Tuple[MACAddress, int]]:
        """MAC addresses of spoofing hosts, most prolific first — the
        raw material for source localization."""
        counts: Dict[MACAddress, int] = {}
        for observation in self.observations:
            counts[observation.mac] = counts.get(observation.mac, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], item[0].value))
