"""SYN cookies (Bernstein & Schenk [3]) — the stateless victim-side
defense.

Instead of storing a half-open entry, the server encodes the connection
state inside its initial sequence number: a keyed hash of the 4-tuple
plus a coarse time counter.  The final handshake ACK echoes cookie+1,
so the server can validate it *without any per-connection memory* and
only then instantiate the connection.

The paper contrasts this family of defenses with SYN-dog: they protect
the victim (and SYN cookies specifically trades CPU for memory), but
they run at the *victim* side and "can not give any hint about the SYN
flooding sources".  The benches use this class to show the victim
staying available under flood while learning nothing about where the
flood comes from.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Callable, Dict, Optional

from ..obs.runtime import Instrumentation, resolve_instrumentation
from ..packet.addresses import IPv4Address
from ..packet.packet import Packet, make_syn_ack
from ..tcpsim.backlog import ConnectionKey
from ..tcpsim.engine import EventScheduler

__all__ = ["SynCookieServer", "encode_cookie", "validate_cookie"]

PacketSink = Callable[[Packet], None]

#: Cookie time-counter granularity (seconds).  Real implementations use
#: 64 s; anything much larger than the handshake RTT works.
COOKIE_TIME_SLOT = 64.0

#: How many time slots back a cookie is still accepted.
COOKIE_MAX_AGE_SLOTS = 2


def _cookie_hash(secret: bytes, key: ConnectionKey, counter: int) -> int:
    material = secret + struct.pack("!IHHI", key[0], key[1], key[2], counter)
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:4], "big")


def encode_cookie(
    secret: bytes, key: ConnectionKey, client_seq: int, now: float
) -> int:
    """Compute the cookie ISN for a SYN with sequence *client_seq*.

    Layout: the top 8 bits carry the time-slot counter (mod 256), the
    low 24 bits the keyed hash folded with the client ISN — enough to
    make blind forgery a 2^24 guess per slot, which is the real
    scheme's security level for these fields.
    """
    counter = int(now // COOKIE_TIME_SLOT) & 0xFF
    mixed = (_cookie_hash(secret, key, counter) ^ client_seq) & 0x00FFFFFF
    return (counter << 24) | mixed


def validate_cookie(
    secret: bytes, key: ConnectionKey, client_seq: int, cookie: int, now: float
) -> bool:
    """Check an echoed cookie (the ACK field minus one)."""
    counter = (cookie >> 24) & 0xFF
    current = int(now // COOKIE_TIME_SLOT)
    # Accept the current slot and up to COOKIE_MAX_AGE_SLOTS older ones
    # (mod-256 wraparound handled by testing each candidate).
    if not any(
        (current - age) & 0xFF == counter
        for age in range(COOKIE_MAX_AGE_SLOTS + 1)
    ):
        return False
    expected = (_cookie_hash(secret, key, counter) ^ client_seq) & 0x00FFFFFF
    return (cookie & 0x00FFFFFF) == expected


class SynCookieServer:
    """A victim server running with SYN cookies enabled.

    Drop-in alternative to :class:`~repro.tcpsim.endpoint.ServerEndpoint`:
    same ``receive``/``output`` interface, but **no backlog** — memory
    use is O(established connections) regardless of flood rate.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        address: IPv4Address,
        output: PacketSink,
        port: int = 80,
        rng: Optional[random.Random] = None,
        secret: Optional[bytes] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.scheduler = scheduler
        self.address = address
        self.output = output
        self.port = port
        rng = rng or random.Random(0)
        self.secret = secret or rng.getrandbits(128).to_bytes(16, "big")
        self.established: Dict[ConnectionKey, float] = {}
        self.syns_received = 0
        self.synacks_sent = 0
        self.acks_validated = 0
        self.acks_rejected = 0
        self.frames_rejected = 0
        obs = resolve_instrumentation(obs)
        if obs.registry.enabled:
            validations = obs.registry.counter(
                "defense_cookie_validations_total",
                "Handshake-ACK cookie checks by outcome",
                ("result",),
            )
            self._m_validated = validations.labels("validated")
            self._m_rejected = validations.labels("rejected")
        else:
            self._m_validated = None
            self._m_rejected = None

    def _key_for(self, packet: Packet) -> Optional[ConnectionKey]:
        segment = packet.tcp
        if segment is None:
            return None
        return (int(packet.src_ip), segment.src_port, segment.dst_port)

    def receive_wire(self, raw: bytes, timestamp: float = 0.0) -> None:
        """Wire-level ingestion with the same degrade-don't-raise
        contract as :meth:`SynProxy.receive_wire`: undecodable frames
        (truncation, header corruption) are counted in
        ``frames_rejected`` and dropped; garbled-but-decodable packets
        fall through :meth:`receive`'s normal rejection paths."""
        try:
            packet = Packet.decode_frame(raw, timestamp=timestamp)
        except ValueError:
            self.frames_rejected += 1
            return
        self.receive(packet)

    def receive(self, packet: Packet) -> None:
        segment = packet.tcp
        if segment is None or segment.dst_port != self.port:
            return
        if segment.is_syn:
            self._handle_syn(packet)
        elif segment.flags and not segment.is_syn_ack and not segment.is_rst:
            self._handle_ack(packet)

    def _handle_syn(self, packet: Packet) -> None:
        self.syns_received += 1
        key = self._key_for(packet)
        if key is None:
            return
        segment = packet.tcp
        cookie = encode_cookie(self.secret, key, segment.seq, self.scheduler.now)
        self.synacks_sent += 1
        self.output(
            make_syn_ack(
                timestamp=self.scheduler.now,
                src=self.address,
                dst=packet.src_ip,
                src_port=key[2],
                dst_port=key[1],
                seq=cookie,
                ack=(segment.seq + 1) & 0xFFFFFFFF,
            )
        )
        # NOTE: nothing is stored.  That single fact is the defense.

    def _handle_ack(self, packet: Packet) -> None:
        key = self._key_for(packet)
        segment = packet.tcp
        if key is None or segment is None:
            return
        if key in self.established:
            return
        cookie = (segment.ack - 1) & 0xFFFFFFFF
        client_seq = (segment.seq - 1) & 0xFFFFFFFF
        if validate_cookie(
            self.secret, key, client_seq, cookie, self.scheduler.now
        ):
            self.acks_validated += 1
            self.established[key] = self.scheduler.now
            if self._m_validated is not None:
                self._m_validated.inc()
        else:
            self.acks_rejected += 1
            if self._m_rejected is not None:
                self._m_rejected.inc()

    @property
    def half_open_count(self) -> int:
        """Always zero — cookies hold no half-open state."""
        return 0

    def housekeeping(self) -> None:
        """Interface parity with ServerEndpoint (nothing to expire)."""
