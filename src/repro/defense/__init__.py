"""Victim-side and source-side defense baselines the paper contrasts
with SYN-dog: SYN cookies [3], Synkill [24], SYN proxying [6, 19], and
RFC 2267 ingress filtering [11] — plus the closed-loop response engine
that drives them from firing alerts (:mod:`repro.defense.response`)."""

from .ingress import IngressFilter, SpoofObservation
from .ratelimit import EgressSynLimiter, TokenBucket
from .proxy import SynProxy
from .response import (
    ActionFailure,
    ActionSpec,
    FlakyActuator,
    Playbook,
    PlaybookRule,
    ResponseEngine,
    RouterActuator,
    VictimActuator,
    parse_yaml_lite,
    timeline_from_events,
)
from .syncookies import SynCookieServer, encode_cookie, validate_cookie
from .synkill import AddressClass, SynkillMonitor

__all__ = [
    "EgressSynLimiter",
    "TokenBucket",
    "IngressFilter",
    "SpoofObservation",
    "SynProxy",
    "SynCookieServer",
    "encode_cookie",
    "validate_cookie",
    "AddressClass",
    "SynkillMonitor",
    "ActionFailure",
    "ActionSpec",
    "Playbook",
    "PlaybookRule",
    "ResponseEngine",
    "VictimActuator",
    "RouterActuator",
    "FlakyActuator",
    "parse_yaml_lite",
    "timeline_from_events",
]
